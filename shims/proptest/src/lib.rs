//! Vendored shim of `proptest`: randomized property testing without
//! shrinking.
//!
//! Supports the subset the workspace's model tests use: [`strategy::Strategy`]
//! with `prop_map`, `any::<T>()`, tuple strategies, regex-lite string
//! strategies (`"[a-z]{0,24}"`), `collection::vec`, weighted [`prop_oneof!`],
//! [`proptest!`] with `#![proptest_config(..)]`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! On failure the runner reports the case number and the RNG seed; re-running
//! with `PROPTEST_SEED=<seed>` reproduces the exact case stream. Shrinking is
//! deliberately not implemented — failures print the full generated input via
//! the panic payload instead.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The RNG handed to strategies by the runner.
    pub type TestRng = SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Regenerates until `f` accepts (up to an attempt cap).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// Type-erased strategy handle.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategies behind shared references generate like the referent,
    /// letting `prop_oneof!` arms borrow a common sub-strategy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.gen()
                    }
                }
            )*
        };
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, bool, f64);

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as i64
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u32>() as i32
        }
    }

    /// See [`super::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any::new()
        }
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Integer ranges are strategies (`0..10u64`).
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// String strategies from a regex-lite pattern:
    /// `"shared-prefix-[a-z0-9]{0,24}"`.
    ///
    /// Supported shapes: literal characters, `[..]` char classes with ranges,
    /// and an optional `{min,max}` / `{n}` quantifier after a class — the
    /// only regex forms the workspace's tests use. Anything else panics
    /// loudly so a silently-wrong generator can't slip in.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let mut out = String::new();
            for atom in &atoms {
                let n = if atom.min == atom.max {
                    atom.min
                } else {
                    rng.gen_range(atom.min..atom.max + 1)
                };
                for _ in 0..n {
                    out.push(atom.alphabet[rng.gen_range(0..atom.alphabet.len())]);
                }
            }
            out
        }
    }

    /// One generation unit of a string pattern: pick `min..=max` chars from
    /// `alphabet`.
    struct PatternAtom {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses a pattern into atoms; `None` on any unsupported construct.
    fn parse_pattern(pat: &str) -> Option<Vec<PatternAtom>> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = if chars[i] == '[' {
                let close = (i + 1..chars.len()).find(|&j| chars[j] == ']')?;
                let class = &chars[i + 1..close];
                i = close + 1;
                let mut alphabet = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (lo, hi) = (class[j], class[j + 2]);
                        if lo > hi {
                            return None;
                        }
                        alphabet.extend(lo..=hi);
                        j += 3;
                    } else {
                        alphabet.push(class[j]);
                        j += 1;
                    }
                }
                if alphabet.is_empty() {
                    return None;
                }
                alphabet
            } else {
                // Regex metacharacters other than the handled ones are not
                // supported; reject rather than emit them literally.
                if "\\.*+?|(){}^$".contains(chars[i]) {
                    return None;
                }
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = (i + 1..chars.len()).find(|&j| chars[j] == '}')?;
                let counts: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match counts.split_once(',') {
                    Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                    None => {
                        let n = counts.parse().ok()?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return None;
            }
            atoms.push(PatternAtom { alphabet, min, max });
        }
        Some(atoms)
    }

    /// Boxes a strategy for [`crate::prop_oneof!`] arms. Internal plumbing.
    pub fn box_arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// One weighted arm of a [`crate::prop_oneof!`]. Internal plumbing.
    pub struct WeightedUnion<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> WeightedUnion<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
            WeightedUnion { arms, total }
        }
    }

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` entry point.

    use super::strategy::{Any, Arbitrary};

    /// Strategy yielding unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a `min..max` length range.
    #[derive(Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// `Vec` strategy: `len` drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case loop: seeds, case counts, failure reporting.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Explicit test-case failure, for `Result`-style property bodies
    /// (`return Err(TestCaseError::fail("...")`)).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed with a message.
        Fail(String),
        /// The input was rejected (treated as failure by this shim).
        Reject(String),
    }

    impl TestCaseError {
        /// Failure with a reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Rejection with a reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Runner configuration (`cases` is the only knob the workspace sets).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Unused compatibility knob (real proptest shrinks; this shim
        /// doesn't).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Seed for the run: `PROPTEST_SEED` env var, else a fixed default so CI
    /// runs are reproducible without extra flags.
    pub fn run_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => 0x1CDE_2019_0B00_u64 ^ 0xA5A5_5A5A,
        }
    }

    /// Runs `body` once per case with a per-case RNG derived from the run
    /// seed; on panic, re-raises with the case index and seed attached.
    pub fn run_cases(config: &Config, body: impl Fn(&mut TestRng)) {
        let seed = run_seed();
        for case in 0..config.cases {
            let case_seed = seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = TestRng::seed_from_u64(case_seed);
                body(&mut rng);
            }));
            if let Err(payload) = result {
                eprintln!(
                    "proptest case {case}/{} failed; reproduce with PROPTEST_SEED={seed} \
                     (case seed {case_seed})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::arbitrary::any;
    pub use super::prop_assert;
    pub use super::prop_assert_eq;
    pub use super::prop_assert_ne;
    pub use super::prop_oneof;
    pub use super::proptest;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;

    /// Namespace mirror of real proptest's `prop::`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property; panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight, $crate::strategy::box_arm($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1, $crate::strategy::box_arm($strat)),)+
        ])
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(xs in collection::vec(any::<u8>(), 1..10)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)+);
                $crate::test_runner::run_cases(&config, |__rng| {
                    #[allow(non_snake_case)]
                    let ($(ref $arg,)+) = strategies;
                    $(
                        let $arg = $crate::strategy::Strategy::generate($arg, __rng);
                    )+
                    // The immediately-called closure gives `$body` its own
                    // `?`-compatible scope, like upstream proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("{}", e);
                    }
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn string_pattern_alphabet_and_length() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut rng = TestRng::seed_from_u64(2);
        let trues = (0..1_000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        assert!((800..1_000).contains(&trues), "trues {trues}");
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let strat = crate::collection::vec(any::<u8>(), 1..8);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(
            xs in crate::collection::vec(any::<u16>(), 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            let _ = flag;
            prop_assert_eq!(xs.len(), xs.iter().map(|_| 1usize).sum::<usize>());
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u8>()) {
            let wide = u16::from(x);
            prop_assert!(wide < 256);
        }
    }
}
