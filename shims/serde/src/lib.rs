//! Vendored shim of `serde`: marker traits plus no-op derives.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of config
//! structs for forward compatibility, but never actually serializes them (no
//! `serde_json`/`bincode` in the dependency tree). The shim therefore only
//! needs the trait names to exist and the derives to produce impls; the
//! `#[serde(...)]` helper attributes are accepted and ignored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

macro_rules! impl_for_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl Deserialize for $t {}
        )*
    };
}

impl_for_primitives!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl Serialize for &str {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
