//! Vendored shim of `criterion`: enough API for the workspace's benches to
//! compile and produce useful numbers, without the statistical machinery.
//!
//! Each benchmark warms up briefly, then runs timed batches and reports the
//! median per-iteration time on stdout. Set `DCS_BENCH_QUICK=1` to run each
//! benchmark once (smoke mode, used by CI to keep benches compiling and
//! executable without burning minutes).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var("DCS_BENCH_QUICK").is_ok(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            quick: self.quick,
            result: None,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Compatibility no-op (real criterion parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op (sample count hint), builder-style.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Compatibility no-op (measurement time hint), builder-style.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some(per_iter) => println!("bench {name:<50} {:>12.1} ns/iter", per_iter),
        None => println!("bench {name:<50}          (no b.iter call)"),
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            quick: self.criterion.quick,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            quick: self.criterion.quick,
            result: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b);
        self
    }

    /// Compatibility no-op (throughput annotation).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Compatibility no-op (sample count hint).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    quick: bool,
    result: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing median ns/iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.result = Some(start.elapsed().as_nanos() as f64);
            return;
        }
        // Warm up ~20ms, then pick an iteration count targeting ~50ms per
        // batch and take the median of 5 batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch_iters = ((50_000_000.0 / per_iter_est) as u64).clamp(1, 10_000_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(samples[samples.len() / 2]);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        std::env::set_var("DCS_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut count = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 1);
        std::env::remove_var("DCS_BENCH_QUICK");
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.label, "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
