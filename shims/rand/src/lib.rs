//! Vendored shim of `rand` 0.8: the subset this workspace uses.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`,
//! and [`seq::SliceRandom`] with `shuffle`/`choose`. Deterministic given a
//! seed, like the real crate — but the exact streams differ from upstream
//! rand, which is fine: nothing in the repo depends on upstream's bit
//! sequences, only on determinism and rough uniformity.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    // Modulo bias is < 2^-64 for every span used in-repo.
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as u128 + r) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    let r = (rng.next_u64() as u128) % span;
                    (start as u128 + r) as $t
                }
            }
        )*
    };
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample(self, rng: &mut dyn RngCore) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*
    };
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// Fills a mutable slice with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the RNG from OS entropy. This shim derives entropy from the
    /// system clock + a counter: good enough for tests and benches, which is
    /// all the workspace uses it for.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x6C62_272E_07BB_0142, Ordering::Relaxed))
    }
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is degenerate; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related extensions: the thread-RNG-free API surface the
/// repo touches.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..1usize);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice sorted (astronomically unlikely)"
        );
    }
}
