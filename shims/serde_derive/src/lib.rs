//! No-op `Serialize`/`Deserialize` derives for the vendored serde shim.
//!
//! Parses just enough of the item (`struct`/`enum` keyword followed by the
//! type name) to emit `impl serde::Serialize for Name {}`. Generic derived
//! types are not supported — the workspace derives only on plain structs and
//! enums. `#[serde(...)]` helper attributes are declared so field/variant
//! annotations like `#[serde(skip, default)]` parse, then ignored.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type identifier: the token following `struct` or `enum`.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

fn emit(input: TokenStream, trait_path: &str) -> TokenStream {
    let name = type_name(&input).expect("derive target must be a struct or enum");
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Serialize")
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Deserialize")
}
