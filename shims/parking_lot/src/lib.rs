//! Vendored shim of `parking_lot`: [`Mutex`], [`RwLock`], and [`Condvar`]
//! with the non-poisoning API, implemented over `std::sync`.
//!
//! The real parking_lot wins on speed and size; this shim only needs to win
//! on API compatibility. Poisoning is translated into propagating the inner
//! value anyway (`into_inner()` on the poison error), matching parking_lot's
//! semantics of ignoring panics in critical sections.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Tracks whether a notification raced a `wait` (std's API is proof
    /// against this; flag kept for `notify_one` parity on empty waiters).
    _pending: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            _pending: AtomicBool::new(false),
        }
    }

    /// Blocks until notified. Spurious wakeups possible, as with std.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._pending.store(false, Ordering::Relaxed);
        // Replace the inner std guard by waiting on it; std's wait takes the
        // guard by value, so temporarily swap it out through a raw dance is
        // not possible safely — instead wait via the public API below.
        take_mut_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self._pending.store(true, Ordering::Relaxed);
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self._pending.store(true, Ordering::Relaxed);
        self.inner.notify_all();
    }
}

/// Applies `f` to the std guard inside `guard` by value.
///
/// Uses `Option`-free ManuallyDrop plumbing: read the guard out, feed it to
/// `f`, write the result back. A panic in `f` (only possible from a poisoned
/// mutex, which we unwrap anyway) would abort via double-panic, which is
/// acceptable for a test-support shim.
fn take_mut_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `inner` is read out and immediately replaced before any unwind
    // can observe the hole; `f` cannot panic in practice (poison unwrapped).
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let new = f(inner);
        std::ptr::write(&mut guard.inner, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
