//! Vendored shim of the `bytes` crate: the [`Bytes`] type only, implemented
//! as a reference-counted slice with an offset window.
//!
//! The workspace uses `Bytes` as an immutable, cheaply-cloneable key/value
//! buffer; none of the `Buf`/`BufMut` machinery is needed. Clones share the
//! underlying allocation, and [`Bytes::slice`] produces zero-copy subviews,
//! matching the real crate's behaviour for everything this repo does.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Creates a `Bytes` from a static slice without copying semantics
    /// mattering (this shim copies; fine for correctness).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy subview of this buffer.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_ref_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref_slice() == other.as_bytes()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref_slice().cmp(other.as_ref_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn slice_is_a_window() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn borrow_allows_map_lookup_by_slice() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(Bytes::from("hello"), 1);
        assert_eq!(m.get(b"hello".as_slice()), Some(&1));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let (a, ab, b) = (Bytes::from("a"), Bytes::from("ab"), Bytes::from("b"));
        assert!(a < b);
        assert!(ab > a);
    }
}
