//! The updated five-minute rule, interactively.
//!
//! Recomputes the paper's §4.2 breakeven analysis for the paper's 2018
//! hardware catalog and for a few what-if catalogs (today's cheaper IOPS,
//! an OS-path I/O stack, record-level caching), printing the cost curves
//! of Figure 2.
//!
//! Run with: `cargo run --example five_minute_rule --release`

use dcs_core::costmodel::{breakeven, curves, figures, render, HardwareCatalog};

fn report(label: &str, hw: &HardwareCatalog) {
    let ti = breakeven::ti_seconds(hw);
    let (io_term, cpu_term) = breakeven::ti_components(hw);
    println!("{label:<38} Ti = {ti:7.2} s  (I/O term {io_term:6.2} s + CPU term {cpu_term:6.2} s)");
}

fn main() {
    println!("== Breakeven access interval Ti (Equation 6) ==\n");
    let paper = HardwareCatalog::paper();
    report("paper catalog (2018, SPDK, R=5.8)", &paper);
    report("conventional OS I/O path (R=9)", &paper.with_r(9.0));
    report(
        "faster SSD (500K IOPS, same price)",
        &HardwareCatalog {
            iops: 5e5,
            ..paper.clone()
        },
    );
    report(
        "record cache, 270-byte records (§6.3)",
        &paper.with_page_bytes(270.0),
    );
    report("hypothetical free I/O path (R=1)", &paper.with_r(1.0));

    println!("\n== Figure 2: operation cost vs access rate ==\n");
    let series = figures::fig2_curves(&paper, 1e-3, 1.0, 13);
    print!("{}", render::series_table("ops/sec", &series));
    let crossover = curves::mm_ss_crossover_rate(&paper);
    println!(
        "\ncurves cross at N = {:.5} ops/sec  =>  Ti = {:.1} s (the 'updated 5-minute rule')",
        crossover,
        1.0 / crossover
    );
    println!(
        "at that point both cost {} per page-second (lifetime factor dropped)",
        render::format_sig(curves::mm_cost(&paper, crossover))
    );

    println!("\nInterpretation: keep a page in DRAM if it is accessed more often");
    println!(
        "than once every {:.0} seconds; otherwise flash + SS operations are",
        1.0 / crossover
    );
    println!("cheaper. Compare Gray's original 5 minutes (1987) and 30-year");
    println!("retrospectives: cheap SSD IOPS pulled the breakeven down, while the");
    println!("CPU cost of the I/O path (the paper's new term) pushes it back up.");
}
