//! Bw-tree vs MassTree, measured on this workspace's own implementations —
//! the §5 comparison that yields Px (performance gain) and Mx (memory
//! expansion), then the Figure 3 cost crossover computed from *your*
//! measured values instead of the paper's.
//!
//! Run with: `cargo run --example mm_vs_caching --release`

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::costmodel::{mm_vs_caching, render, HardwareCatalog};
use dcs_core::masstree::MassTree;
use dcs_core::workload::keys;
use std::sync::Arc;
use std::time::Instant;

const RECORDS: u64 = 100_000;
const READS: u64 = 400_000;
const VALUE_LEN: usize = 16;
const THREADS: u64 = 4;

fn measure_reads(read: impl Fn(u64) -> usize + Sync) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let read = &read;
            scope.spawn(move || {
                let mut x = 0x9E37_79B9u64 ^ t;
                let mut sink = 0usize;
                for _ in 0..READS / THREADS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    sink += read(x % RECORDS);
                }
                std::hint::black_box(sink);
            });
        }
    });
    READS as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("loading {RECORDS} records into both stores ...");
    let bw = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
    let mt = Arc::new(MassTree::new());
    for id in 0..RECORDS {
        let k = Bytes::copy_from_slice(&keys::encode(id));
        let v = Bytes::from(keys::value_for(id, 0, VALUE_LEN));
        bw.put(k.clone(), v.clone());
        mt.insert(k, v);
    }

    println!("measuring {READS} random reads on {THREADS} threads ...\n");
    let bw_ops = measure_reads(|id| bw.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));
    let mt_ops = measure_reads(|id| mt.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));

    let bw_bytes = bw.footprint_bytes();
    let mt_bytes = mt.footprint_bytes();
    let px = mt_ops / bw_ops;
    let mx = mt_bytes as f64 / bw_bytes as f64;

    println!("== measured (this machine, this implementation) ==");
    println!(
        "Bw-tree:  {:>12.0} reads/sec   footprint {:>8} KiB",
        bw_ops,
        bw_bytes / 1024
    );
    println!(
        "MassTree: {:>12.0} reads/sec   footprint {:>8} KiB",
        mt_ops,
        mt_bytes / 1024
    );
    println!("Px (perf gain)    = {px:.2}   (paper measured ≈ 2.6)");
    println!("Mx (memory cost)  = {mx:.2}   (paper measured ≈ 2.1)");

    if px <= 1.0 || mx <= 1.0 {
        println!("\n(measured Px/Mx outside the paper's regime on this machine;");
        println!(" falling back to the paper's values for the cost analysis)");
    }
    let cmp = if px > 1.0 && mx > 1.0 {
        mm_vs_caching::Comparison { px, mx }
    } else {
        mm_vs_caching::Comparison::paper()
    };

    println!("\n== Figure 3: cost breakeven (Equation 7) ==");
    let hw = HardwareCatalog::paper();
    let c = mm_vs_caching::ti_size_product(&hw, &cmp);
    println!("Ti · Size = {}  (paper: 8.3e3)", render::format_sig(c));
    for gb in [6.1, 20.0, 100.0] {
        let rate = mm_vs_caching::breakeven_rate(&hw, gb * 1e9, &cmp);
        println!(
            "  {gb:>6.1} GB database: MassTree cheaper only above {:>10} ops/sec",
            render::format_sig(rate)
        );
    }
    println!("\nBelow those rates — i.e. for all but the very hottest data — the");
    println!("caching store costs less, and it can ALSO evict cold pages to flash");
    println!("(at Ti ≈ 45 s), an option the main-memory store does not have.");
}
