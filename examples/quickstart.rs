//! Quickstart: open a data caching store, write, read, scan, evict,
//! checkpoint, crash and recover.
//!
//! Run with: `cargo run --example quickstart --release`

use dcs_core::{Policy, StoreBuilder};

fn main() {
    // A store with the paper's hardware catalog, small pages so the tree
    // grows visibly, and cost-model-driven cache management.
    let mut builder = StoreBuilder::small_test();
    builder.policy = Policy::CostModel;
    builder.memory_budget = 256 << 10;
    let store = builder.clone().build();

    println!("== load ==");
    for i in 0..5_000u32 {
        store.put(
            format!("user:{i:08}").into_bytes(),
            format!("profile-{i}").into_bytes(),
        );
    }
    println!("records: {}", store.count_entries());

    println!("\n== point reads ==");
    let v = store.get(b"user:00000042").expect("key exists");
    println!("user:00000042 -> {}", String::from_utf8_lossy(&v));

    println!("\n== range scan ==");
    for (k, v) in store.scan(b"user:00000100", Some(b"user:00000105")) {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(&k),
            String::from_utf8_lossy(&v)
        );
    }

    println!("\n== cache management ==");
    // Make everything cold (advance past the breakeven interval), then let
    // the cache manager act.
    let ti = dcs_core::costmodel::breakeven::ti_seconds(store.hardware());
    store.advance_time((2.0 * ti * 1e9) as u64);
    let evicted = store.sweep().expect("sweep");
    let stats = store.stats();
    println!(
        "breakeven Ti = {ti:.1}s; evicted {evicted} cold pages; footprint now {} KiB",
        stats.footprint_bytes / 1024
    );

    // Reads fault pages back from flash (these are SS operations).
    let _ = store.get(b"user:00000042");
    let stats = store.stats();
    println!(
        "tree ops: mm={} ss={} (F = {:.4})",
        stats.tree.mm_ops,
        stats.tree.ss_ops,
        stats.ss_fraction()
    );

    println!("\n== durability ==");
    store.checkpoint().expect("checkpoint");
    println!(
        "checkpointed; device writes so far: {} ({} KiB)",
        stats.device.writes,
        stats.device.bytes_written / 1024
    );

    let recovered = store.crash_and_recover(builder).expect("recovery");
    println!(
        "after crash+recover: {} records, user:00000042 -> {}",
        recovered.count_entries(),
        String::from_utf8_lossy(&recovered.get(b"user:00000042").expect("recovered")),
    );
}
