//! A skewed workload against the caching store: hot data stays in DRAM,
//! cold data migrates to flash, and the store keeps serving everything.
//!
//! This is §3's claim in action: "a data caching system can adapt for
//! lowest cost depending upon load … moving data between main memory and
//! secondary storage, changing its mix of MM vs SS operations."
//!
//! Run with: `cargo run --example hot_cold_workload --release`

use dcs_core::workload::{KeyDist, OpKind, OpMix, WorkloadSpec};
use dcs_core::{Policy, StoreBuilder};

fn main() {
    const RECORDS: u64 = 20_000;
    let spec = WorkloadSpec {
        record_count: RECORDS,
        key_dist: KeyDist::HotSpot {
            hot_keys_fraction: 0.05, // 5% of keys get...
            hot_ops_fraction: 0.95,  // ...95% of the traffic
        },
        mix: OpMix::ycsb_b(), // 95% reads / 5% updates
        value_len: 100,
        seed: 42,
    };

    let mut builder = StoreBuilder::small_test();
    builder.policy = Policy::CostModel;
    builder.memory_budget = 1 << 20; // far smaller than the dataset
    builder.keep_record_cache = true;
    builder.sweep_every_ops = 2_000;
    let store = builder.build();

    println!("loading {RECORDS} records ...");
    for (k, v) in spec.load_set() {
        store.put(k, v);
    }
    store.checkpoint().expect("checkpoint");

    println!("running skewed workload (hotspot 5%/95%, YCSB-B mix) ...\n");
    let mut gen = spec.generator();
    let before = store.stats();
    const OPS: u64 = 100_000;
    for i in 0..OPS {
        let op = gen.next_op();
        let key = dcs_core::workload::keys::encode(op.key_id);
        match op.kind {
            OpKind::Read => {
                let _ = store.get(&key);
            }
            OpKind::Update => store.blind_update(key.to_vec(), op.value),
            _ => unreachable!("ycsb_b mix"),
        }
        // Model time passing between operations (1000 virtual ops/sec) so
        // the cost-model eviction sees realistic access intervals.
        store.advance_time(1_000_000);
        if (i + 1) % 20_000 == 0 {
            let s = store.stats();
            println!(
                "  {:>6} ops: F={:.4}  footprint={:>6} KiB  evictions={}  record-cache-hits={}",
                i + 1,
                s.ss_fraction(),
                s.footprint_bytes / 1024,
                s.cache.pages_evicted,
                s.tree.record_cache_hits,
            );
        }
    }

    let after = store.stats();
    let tree = after.tree.delta(&before.tree);
    println!("\n== workload summary ==");
    println!("operations:          {}", tree.mm_ops + tree.ss_ops);
    println!("MM operations:       {}", tree.mm_ops);
    println!(
        "SS operations:       {} (F = {:.4})",
        tree.ss_ops,
        tree.ss_ops as f64 / (tree.mm_ops + tree.ss_ops) as f64
    );
    println!("record cache hits:   {}", tree.record_cache_hits);
    println!("page fetches:        {}", tree.fetches);
    println!(
        "footprint:           {} KiB (dataset ≈ {} KiB)",
        after.footprint_bytes / 1024,
        RECORDS as usize * 112 / 1024
    );
    println!(
        "device reads/writes: {} / {}",
        after.device.reads, after.device.writes
    );
    println!();
    println!("The hot 5% stays resident, so F remains far below the 95% of the");
    println!("data that lives on flash — the cache adapts to the access skew.");
}
