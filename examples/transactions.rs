//! Transactions over the caching store: Deuteronomy's TC in action.
//!
//! Demonstrates snapshot reads, conflict handling, the TC's record caches
//! (§6.3: a hit avoids even visiting the data component), blind update
//! posting (§6.2), and redo recovery from the log.
//!
//! Run with: `cargo run --example transactions --release`

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::tc::{CommitError, TransactionalStore};
use dcs_core::StoreBuilder;
use std::sync::Arc;

fn main() {
    let store = StoreBuilder::small_test().build();
    let tc = store.transactional();

    println!("== accounts ==");
    let mut setup = tc.begin();
    for i in 0..10u32 {
        setup.write(
            format!("acct:{i}").into_bytes(),
            100u64.to_le_bytes().to_vec(),
        );
    }
    tc.commit(setup).expect("setup commit");

    let balance = |tc: &TransactionalStore, i: u32| -> u64 {
        let t = tc.begin();
        let v = tc
            .read(&t, format!("acct:{i}").as_bytes())
            .unwrap()
            .unwrap();
        u64::from_le_bytes(v[..8].try_into().unwrap())
    };
    println!("acct:0 = {}, acct:1 = {}", balance(&tc, 0), balance(&tc, 1));

    println!("\n== a transfer ==");
    let mut xfer = tc.begin();
    let from = u64::from_le_bytes(
        tc.read(&xfer, b"acct:0").unwrap().unwrap()[..8]
            .try_into()
            .unwrap(),
    );
    let to = u64::from_le_bytes(
        tc.read(&xfer, b"acct:1").unwrap().unwrap()[..8]
            .try_into()
            .unwrap(),
    );
    xfer.write(b"acct:0".to_vec(), (from - 30).to_le_bytes().to_vec());
    xfer.write(b"acct:1".to_vec(), (to + 30).to_le_bytes().to_vec());
    let ts = tc.commit(xfer).expect("transfer commits");
    println!(
        "committed at ts={ts}; acct:0 = {}, acct:1 = {}",
        balance(&tc, 0),
        balance(&tc, 1)
    );

    println!("\n== write conflict (first committer wins) ==");
    let mut a = tc.begin();
    let mut b = tc.begin();
    a.write(b"acct:5".to_vec(), 1u64.to_le_bytes().to_vec());
    b.write(b"acct:5".to_vec(), 2u64.to_le_bytes().to_vec());
    tc.commit(a).expect("first commit wins");
    match tc.commit(b) {
        Err(CommitError::WriteConflict { key }) => {
            println!(
                "second commit aborted: conflict on {}",
                String::from_utf8_lossy(&key)
            )
        }
        other => panic!("expected conflict, got {other:?}"),
    }

    println!("\n== snapshot isolation ==");
    let old_snapshot = tc.begin();
    let mut w = tc.begin();
    w.write(b"acct:9".to_vec(), 777u64.to_le_bytes().to_vec());
    tc.commit(w).unwrap();
    let old_view = u64::from_le_bytes(
        tc.read(&old_snapshot, b"acct:9").unwrap().unwrap()[..8]
            .try_into()
            .unwrap(),
    );
    println!(
        "old snapshot still sees acct:9 = {old_view}; fresh sees {}",
        balance(&tc, 9)
    );

    println!("\n== the TC cache hierarchy ==");
    for _ in 0..1000 {
        let t = tc.begin();
        let _ = tc.read(&t, b"acct:0").unwrap();
    }
    let s = tc.stats();
    println!(
        "version hits {} / log-cache hits {} / read-cache hits {} / DC visits {}",
        s.version_hits, s.log_cache_hits, s.read_cache_hits, s.dc_reads
    );
    println!("blind updates posted to the DC: {}", s.blind_posts);
    println!("(every transactional update reached the Bw-tree blind — no page reads)");

    println!("\n== redo recovery ==");
    let fresh = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
    let replayed = TransactionalStore::replay_onto(tc.log(), &fresh);
    println!("replayed {replayed} log records onto a fresh data component");
    let v = fresh.get(b"acct:1").expect("recovered");
    println!(
        "recovered acct:1 = {} (matches live: {})",
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        balance(&tc, 1)
    );

    // Show the DC agrees everywhere.
    let mut diverged = 0;
    for i in 0..10u32 {
        let k = format!("acct:{i}");
        if fresh.get(k.as_bytes()) != tc.dc().get(k.as_bytes()) {
            diverged += 1;
        }
    }
    assert_eq!(diverged, 0);
    println!("recovery state identical on all accounts ✓");

    let _ = Bytes::new(); // keep the bytes crate import exercised
}
