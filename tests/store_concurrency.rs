//! Concurrency tests for the assembled caching store: readers, writers,
//! an eviction-pressure thread, checkpoints, and GC all at once.

use bytes::Bytes;
use dcs_core::StoreBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn key(t: u32, i: u32) -> Bytes {
    Bytes::from(format!("t{t:02}k{i:06}"))
}

#[test]
fn concurrent_workers_with_maintenance() {
    let mut b = StoreBuilder::small_test();
    b.memory_budget = 256 << 10;
    b.sweep_every_ops = 0; // maintenance runs on its own thread below
    let store = Arc::new(b.build());

    const WRITERS: u32 = 4;
    const PER: u32 = 2_000;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Writers own disjoint key ranges: their final values are checkable.
    for t in 0..WRITERS {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                store.put(key(t, i), Bytes::from(format!("v{t}-{i}")));
                if i % 3 == 0 {
                    // Read-your-writes under concurrent eviction.
                    assert_eq!(
                        store.get(&key(t, i)),
                        Some(Bytes::from(format!("v{t}-{i}"))),
                        "own write lost t{t} i{i}"
                    );
                }
            }
        }));
    }
    // Readers roam everywhere (missing keys are fine; wrong values are not).
    for r in 0..2u32 {
        let store = store.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut x = 77u64 + r as u64;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let (t, i) = ((x % WRITERS as u64) as u32, (x >> 32) as u32 % PER);
                if let Some(v) = store.get(&key(t, i)) {
                    assert_eq!(v, Bytes::from(format!("v{t}-{i}")), "corrupt read");
                }
            }
        }));
    }
    // Maintenance: sweeps, checkpoints, GC.
    {
        let store = store.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                store.advance_time(1_000_000);
                let _ = store.sweep();
                if n.is_multiple_of(7) {
                    let _ = store.checkpoint();
                }
                if n.is_multiple_of(13) {
                    let _ = store.gc();
                }
                n += 1;
                std::thread::yield_now();
            }
        }));
    }

    // Join the writers first, then stop the background threads.
    let (writers, background) = handles.split_at_mut(WRITERS as usize);
    for h in writers {
        if let Some(h) = std::mem::replace(h, std::thread::spawn(|| {})).join().err() {
            std::panic::resume_unwind(h);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in background {
        if let Some(p) = std::mem::replace(h, std::thread::spawn(|| {})).join().err() {
            std::panic::resume_unwind(p);
        }
    }

    // Every write visible afterwards.
    for t in 0..WRITERS {
        for i in (0..PER).step_by(37) {
            assert_eq!(
                store.get(&key(t, i)),
                Some(Bytes::from(format!("v{t}-{i}"))),
                "final t{t} i{i}"
            );
        }
    }
    assert_eq!(store.count_entries(), (WRITERS * PER) as usize);
    // The store did real cache management during the run.
    assert!(
        store.stats().cache.pages_evicted > 0,
        "no eviction pressure"
    );
}

#[test]
fn checkpoint_under_concurrent_writes_recovers_consistently() {
    // Writers keep mutating while a checkpoint runs; after crash+recover,
    // every recovered key must hold a value some writer actually wrote
    // (possibly stale, never torn).
    let builder = StoreBuilder::small_test();
    let store = Arc::new(builder.clone().build());
    for i in 0..1_000u32 {
        store.put(key(0, i), Bytes::from(format!("v0-{i}")));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 1..4u32 {
        let store = store.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut round = 0u32;
            while !stop.load(Ordering::Relaxed) {
                for i in (0..1_000u32).step_by(w as usize) {
                    store.put(key(0, i), Bytes::from(format!("v{w}-{i}r{round}")));
                }
                round += 1;
            }
        }));
    }
    for _ in 0..5 {
        store.checkpoint().expect("checkpoint under load");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    store.checkpoint().expect("final checkpoint");

    let store = Arc::try_unwrap(store).expect("sole owner");
    let recovered = store.crash_and_recover(builder).expect("recover");
    assert_eq!(recovered.count_entries(), 1_000);
    for i in 0..1_000u32 {
        let v = recovered.get(&key(0, i)).expect("key present");
        let s = String::from_utf8(v.to_vec()).expect("utf8");
        assert!(
            s.starts_with('v') && s.contains(&format!("-{i}")),
            "torn value for {i}: {s}"
        );
    }
}
