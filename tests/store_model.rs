//! Property tests of the assembled caching store: the full stack
//! (Bw-tree → LLAMA → flash sim) under random operations must behave like
//! a `BTreeMap`, no matter how often pages are evicted, checkpointed, or
//! the store crashes and recovers.

use bytes::Bytes;
use dcs_core::{Policy, StoreBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, String),
    BlindUpdate(u16, String),
    Del(u16),
    Get(u16),
    Sweep,
    Checkpoint,
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), "[a-z]{0,24}").prop_map(|(k, v)| Op::Put(k % 512, v)),
        2 => (any::<u16>(), "[a-z]{0,24}").prop_map(|(k, v)| Op::BlindUpdate(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Del(k % 512)),
        4 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => Just(Op::Sweep),
        1 => Just(Op::Checkpoint),
        1 => Just(Op::Gc),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:05}"))
}

fn builder() -> StoreBuilder {
    let mut b = StoreBuilder::small_test();
    b.memory_budget = 16 << 10; // tiny: evictions happen constantly
    b.sweep_every_ops = 64;
    b.policy = Policy::Lru;
    b
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48, ..ProptestConfig::default()
    })]

    #[test]
    fn store_matches_model_under_eviction(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let store = builder().build();
        let mut model: BTreeMap<u16, String> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(key(*k), Bytes::from(v.clone()));
                    model.insert(*k, v.clone());
                }
                Op::BlindUpdate(k, v) => {
                    store.blind_update(key(*k), Bytes::from(v.clone()));
                    model.insert(*k, v.clone());
                }
                Op::Del(k) => {
                    store.delete(key(*k));
                    model.remove(k);
                }
                Op::Get(k) => {
                    let expect = model.get(k).map(|v| Bytes::from(v.clone()));
                    prop_assert_eq!(store.get(&key(*k)), expect, "get {}", k);
                }
                Op::Sweep => {
                    store.sweep().unwrap();
                }
                Op::Checkpoint => {
                    store.checkpoint().unwrap();
                }
                Op::Gc => {
                    store.gc().unwrap();
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(
                store.get(&key(*k)),
                Some(Bytes::from(v.clone())),
                "final state {}",
                k
            );
        }
        prop_assert_eq!(store.count_entries(), model.len());
    }

    #[test]
    fn checkpointed_state_survives_crash(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        post in proptest::collection::vec((any::<u16>(), "[a-z]{0,12}"), 0..20),
    ) {
        let b = builder();
        let store = b.clone().build();
        let mut model: BTreeMap<u16, String> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) | Op::BlindUpdate(k, v) => {
                    store.put(key(*k), Bytes::from(v.clone()));
                    model.insert(*k, v.clone());
                }
                Op::Del(k) => {
                    store.delete(key(*k));
                    model.remove(k);
                }
                _ => {}
            }
        }
        store.checkpoint().unwrap();
        // Writes after the checkpoint must vanish in the crash.
        for (k, v) in &post {
            store.put(key(k % 512 + 600), Bytes::from(v.clone()));
        }
        let recovered = store.crash_and_recover(b).unwrap();
        for (k, v) in &model {
            prop_assert_eq!(
                recovered.get(&key(*k)),
                Some(Bytes::from(v.clone())),
                "recovered {}",
                k
            );
        }
        prop_assert_eq!(recovered.count_entries(), model.len());
    }
}
