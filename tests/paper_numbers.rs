//! End-to-end checks of the paper's quantitative claims: the analytic
//! numbers exactly, and the system-level behaviours directionally.

use dcs_core::costmodel::{breakeven, curves, figures, mixed, mm_vs_caching, HardwareCatalog};
use dcs_core::{Policy, StoreBuilder};

const GB: f64 = 1e9;

#[test]
fn updated_five_minute_rule_is_45_seconds() {
    // §4.2: "We determine Ti is approximately 45 seconds at breakeven."
    let ti = breakeven::ti_seconds(&HardwareCatalog::paper());
    assert!((ti - 45.0).abs() < 1.0, "Ti = {ti}");
}

#[test]
fn storage_cost_gap_is_11x_execution_gap_puts_ss_ahead_when_hot() {
    // §4.2's "here's why" in numbers.
    let hw = HardwareCatalog::paper();
    assert!((hw.mm_storage_cost() / hw.ss_storage_cost() - 11.0).abs() < 0.1);
    assert!(hw.ss_exec_cost() > hw.mm_exec_cost() * 9.0);
}

#[test]
fn equation8_constant() {
    // §5.1: Ti = (1/Size) · 8.3e3.
    let c = mm_vs_caching::ti_size_product(
        &HardwareCatalog::paper(),
        &mm_vs_caching::Comparison::paper(),
    );
    assert!((c - 8.3e3).abs() / 8.3e3 < 0.02, "Ti·S = {c}");
}

#[test]
fn section_5_2_breakevens() {
    let hw = HardwareCatalog::paper();
    let cmp = mm_vs_caching::Comparison::paper();
    let r61 = mm_vs_caching::breakeven_rate(&hw, 6.1 * GB, &cmp);
    assert!((r61 - 0.73e6).abs() / 0.73e6 < 0.02, "6.1GB rate {r61}");
    let r100 = mm_vs_caching::breakeven_rate(&hw, 100.0 * GB, &cmp);
    assert!((r100 - 12e6).abs() / 12e6 < 0.05, "100GB rate {r100}");
    let page_ti = mm_vs_caching::ti_seconds(&hw, hw.page_bytes, &cmp);
    assert!((page_ti - 3.1).abs() < 0.05, "page Ti {page_ti}");
}

#[test]
fn figure1_extremes() {
    // §2.2: at miss ratio 1 the tree runs at 1/R of in-memory performance.
    assert_eq!(mixed::relative_performance(0.0, 5.8), 1.0);
    assert!((mixed::relative_performance(1.0, 5.8) - 1.0 / 5.8).abs() < 1e-12);
}

#[test]
fn figure7_direction_io_path_cost() {
    // §7.1.1: shortening the path shrinks R and the breakeven interval.
    let hw = HardwareCatalog::paper();
    let ti_os = breakeven::ti_seconds(&hw.with_r(9.0));
    let ti_user = breakeven::ti_seconds(&hw.with_r(5.8));
    assert!(ti_user < ti_os);
    // §7.1.2: a 40 % IOPS price drop also shrinks the interval.
    let cheaper = HardwareCatalog {
        iops: hw.iops / 0.6,
        ..hw.clone()
    };
    assert!(breakeven::ti_seconds(&cheaper) < breakeven::ti_seconds(&hw));
}

#[test]
fn figure8_regimes_are_ordered() {
    let hw = HardwareCatalog::paper();
    let c = curves::CompressionModel::default();
    let css_to_ss = curves::css_ss_crossover_rate(&hw, &c);
    let ss_to_mm = curves::mm_ss_crossover_rate(&hw);
    assert!(
        css_to_ss < ss_to_mm,
        "compression regime must sit below the caching regime"
    );
}

#[test]
fn figure2_series_cross_exactly_once() {
    let hw = HardwareCatalog::paper();
    let series = figures::fig2_curves(&hw, 1e-4, 10.0, 800);
    let mut sign_changes = 0;
    let mut prev: Option<f64> = None;
    for ((_, mm), (_, ss)) in series[0].points.iter().zip(series[1].points.iter()) {
        let d = mm - ss;
        if let Some(p) = prev {
            if p.signum() != d.signum() {
                sign_changes += 1;
            }
        }
        prev = Some(d);
    }
    assert_eq!(sign_changes, 1, "MM and SS cost curves cross exactly once");
}

#[test]
fn cost_model_policy_derives_ti_from_catalog() {
    // System wiring: a store built with the cost-model policy evicts pages
    // colder than the catalog's breakeven, and not hotter ones.
    let mut b = StoreBuilder::small_test();
    b.policy = Policy::CostModel;
    b.memory_budget = usize::MAX;
    b.sweep_every_ops = 0;
    let store = b.build();
    for i in 0..300u32 {
        store.put(
            format!("k{i:05}").into_bytes(),
            format!("v{i}").into_bytes(),
        );
    }
    let ti = breakeven::ti_seconds(store.hardware());
    // Just under Ti: nothing is cold yet.
    store.advance_time((ti * 0.9 * 1e9) as u64);
    assert_eq!(store.sweep().unwrap(), 0, "no page is past breakeven yet");
    // Past Ti: everything is cold.
    store.advance_time((ti * 0.2 * 1e9) as u64);
    assert!(store.sweep().unwrap() > 0, "cold pages must be evicted");
}

#[test]
fn record_granularity_multiplies_breakeven() {
    // §6.3: 10 records per page → record breakeven is 10× the page's.
    let hw = HardwareCatalog::paper();
    let page = breakeven::ti_seconds(&hw);
    let record = breakeven::ti_seconds_for_record(&hw, hw.page_bytes / 10.0);
    assert!((record / page - 10.0).abs() < 1e-9);
}

#[test]
fn eq3_recovers_r_from_eq2_throughputs() {
    for r in [1.5, 5.8, 9.0] {
        for f in [0.05, 0.5, 1.0] {
            let pf = mixed::pf(4e6, f, r);
            let derived = mixed::derive_r(4e6, pf, f).unwrap();
            assert!((derived - r).abs() < 1e-6);
        }
    }
}
