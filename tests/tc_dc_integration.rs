//! TC-over-DC integration: transactions running over a data component
//! whose pages live on (simulated) flash, exercising the full Deuteronomy
//! stack — MVCC at the TC, blind updates at the DC, record caches at both
//! layers, and redo recovery.

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::flashsim::{DeviceConfig, FlashDevice, VirtualClock};
use dcs_core::llama::{LogStructuredStore, LssConfig};
use dcs_core::tc::{CommitError, RecoveryLog, TcConfig, TransactionalStore};
use std::sync::Arc;

fn stack() -> (TransactionalStore, Arc<FlashDevice>) {
    let device = Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_count: 1024,
            advance_clock_on_io: false,
            ..DeviceConfig::small_test()
        },
        VirtualClock::new(),
    ));
    let lss = Arc::new(LogStructuredStore::new(
        device.clone(),
        LssConfig::default(),
    ));
    // Healing (faulting a page in after many blind deltas) is disabled-ish
    // here so the test can assert that commits themselves never fetch.
    let config = BwTreeConfig {
        max_partial_deltas: 10_000,
        ..BwTreeConfig::small_pages()
    };
    let tree = Arc::new(BwTree::with_store(config, lss));
    let log = RecoveryLog::on_device(device.clone());
    (
        TransactionalStore::with_log(tree, log, TcConfig::default()),
        device,
    )
}

fn key(i: u32) -> Bytes {
    Bytes::from(format!("row{i:05}"))
}

#[test]
fn transactions_over_evicted_pages() {
    let (tc, _device) = stack();
    // Seed data, evict everything.
    let mut setup = tc.begin();
    for i in 0..400u32 {
        setup.write(key(i), Bytes::from(format!("v{i}")));
    }
    tc.commit(setup).unwrap();
    for p in tc.dc().pages() {
        if p.is_leaf {
            let _ = tc.dc().evict_page(p.pid);
        }
    }
    // Flush the log and shrink the TC record caches so reads of the
    // seeded rows genuinely reach the DC.
    tc.flush_log().unwrap();
    let horizon = tc.begin().read_ts();
    tc.shrink_cache(horizon);

    // Transactional updates post blind; commits must not fetch pages.
    let fetches_before = tc.dc().stats().fetches;
    for i in 0..100u32 {
        let mut t = tc.begin();
        t.write(key(i), Bytes::from(format!("updated-{i}")));
        tc.commit(t).unwrap();
    }
    assert_eq!(
        tc.dc().stats().fetches,
        fetches_before,
        "commits must be blind at the DC"
    );

    // Reads see the updates (from the TC version store, no DC visit).
    let t = tc.begin();
    for i in 0..100u32 {
        assert_eq!(
            tc.read(&t, &key(i)).unwrap(),
            Some(Bytes::from(format!("updated-{i}")))
        );
    }
    // Un-updated rows require a DC read (page fetch).
    assert_eq!(tc.read(&t, &key(200)).unwrap(), Some(Bytes::from("v200")));
    assert!(tc.dc().stats().fetches > fetches_before);
}

#[test]
fn snapshot_reads_stable_across_eviction() {
    let (tc, _device) = stack();
    let mut setup = tc.begin();
    setup.write(key(1), Bytes::from("original"));
    tc.commit(setup).unwrap();

    let snapshot = tc.begin();
    assert_eq!(
        tc.read(&snapshot, &key(1)).unwrap(),
        Some(Bytes::from("original"))
    );

    let mut w = tc.begin();
    w.write(key(1), Bytes::from("newer"));
    tc.commit(w).unwrap();
    // Evict the page under the snapshot.
    for p in tc.dc().pages() {
        if p.is_leaf {
            let _ = tc.dc().evict_page(p.pid);
        }
    }
    assert_eq!(
        tc.read(&snapshot, &key(1)).unwrap(),
        Some(Bytes::from("original")),
        "snapshot must not observe the newer committed version"
    );
    let fresh = tc.begin();
    assert_eq!(
        tc.read(&fresh, &key(1)).unwrap(),
        Some(Bytes::from("newer"))
    );
}

#[test]
fn log_is_durable_and_replayable_after_crash() {
    let (tc, device) = stack();
    for i in 0..200u32 {
        let mut t = tc.begin();
        t.write(key(i), Bytes::from(format!("v{i}")));
        if i % 5 == 0 {
            t.delete(key(i / 2));
        }
        tc.commit(t).unwrap();
    }
    tc.flush_log().unwrap();
    // Capture expected state, then "crash": drop the whole stack. (The
    // recovery log was flushed+synced; the DC pages may not have been.)
    let expect: Vec<(u32, Option<Bytes>)> = {
        let t = tc.begin();
        (0..200u32)
            .map(|i| (i, tc.read(&t, &key(i)).unwrap()))
            .collect()
    };
    let log = tc.log().records_from(0);
    drop(tc);
    device.crash();

    // Redo onto a fresh DC.
    let fresh = BwTree::in_memory(BwTreeConfig::small_pages());
    let replay_log = RecoveryLog::in_memory();
    replay_log.append_group(&log);
    let n = TransactionalStore::replay_onto(&replay_log, &fresh);
    assert!(n >= 200);
    for (i, v) in expect {
        assert_eq!(fresh.get(&key(i)), v, "replayed key {i}");
    }
}

#[test]
fn concurrent_transactions_with_eviction_pressure() {
    let (tc, _device) = stack();
    let tc = Arc::new(tc);
    let mut setup = tc.begin();
    for i in 0..64u32 {
        setup.write(key(i), Bytes::from(0u64.to_le_bytes().to_vec()));
    }
    tc.commit(setup).unwrap();

    let mut handles = Vec::new();
    // Incrementers.
    for tid in 0..4u32 {
        let tc = tc.clone();
        handles.push(std::thread::spawn(move || {
            let mut commits = 0u32;
            let mut rng = 77u64.wrapping_add(tid as u64);
            while commits < 150 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let k = key((rng >> 33) as u32 % 64);
                let mut t = tc.begin();
                let cur =
                    u64::from_le_bytes(tc.read(&t, &k).unwrap().unwrap()[..8].try_into().unwrap());
                t.write(k, Bytes::from((cur + 1).to_le_bytes().to_vec()));
                match tc.commit(t) {
                    Ok(_) => commits += 1,
                    Err(CommitError::WriteConflict { .. }) => {}
                    Err(e) => panic!("{e}"),
                }
            }
        }));
    }
    // An evictor thread applying cache pressure throughout.
    {
        let tc = tc.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                for p in tc.dc().pages() {
                    if p.is_leaf {
                        let _ = tc.dc().evict_page(p.pid);
                    }
                }
                std::thread::yield_now();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Total increments must equal total commits (4 × 150).
    let t = tc.begin();
    let total: u64 = (0..64u32)
        .map(|i| {
            u64::from_le_bytes(
                tc.read(&t, &key(i)).unwrap().unwrap()[..8]
                    .try_into()
                    .unwrap(),
            )
        })
        .sum();
    assert_eq!(total, 600, "increments lost or duplicated under eviction");
}
