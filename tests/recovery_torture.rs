//! Recovery torture: repeated crash/recover cycles, torn log tails, and
//! injected read failures.

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig, StoreError, TreeError};
use dcs_core::flashsim::{DeviceConfig, FailureInjector, FlashDevice, VirtualClock};
use dcs_core::llama::{recover, CacheManager, CacheManagerConfig, LogStructuredStore, LssConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

fn device() -> Arc<FlashDevice> {
    Arc::new(FlashDevice::new(DeviceConfig {
        segment_count: 2048,
        ..DeviceConfig::small_test()
    }))
}

fn key(i: u32) -> Bytes {
    Bytes::from(format!("key{i:06}"))
}

#[test]
fn repeated_crash_recover_cycles_preserve_checkpoints() {
    let dev = device();
    let mut model: BTreeMap<u32, String> = BTreeMap::new();
    let mut rng = 0xBADC0FFEu64;

    for cycle in 0..5u32 {
        // Reopen from the device (first cycle: empty device).
        let recovered = recover(
            dev.clone(),
            LssConfig::default(),
            BwTreeConfig::small_pages(),
        )
        .expect("recovery");
        let tree = recovered.tree;
        let store = recovered.store;

        // Recovered state must equal the model (last checkpoint).
        for (k, v) in &model {
            assert_eq!(
                tree.get(&key(*k)),
                Some(Bytes::from(v.clone())),
                "cycle {cycle}: key {k} lost"
            );
        }
        assert_eq!(tree.count_entries(), model.len(), "cycle {cycle} count");

        // Mutate, checkpoint, mutate again (the tail is lost in the crash).
        let mgr = CacheManager::new(CacheManagerConfig::default(), VirtualClock::new());
        for _ in 0..300 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (rng >> 33) as u32 % 500;
            let v = format!("c{cycle}-{}", rng % 1000);
            if rng.is_multiple_of(10) {
                tree.delete(key(k));
                model.remove(&k);
            } else {
                tree.put(key(k), Bytes::from(v.clone()));
                model.insert(k, v);
            }
        }
        mgr.checkpoint(&tree).unwrap();
        store.sync().unwrap();
        // Uncheckpointed tail.
        for i in 0..50u32 {
            tree.put(key(9000 + i), Bytes::from("doomed"));
        }
        drop(tree);
        dev.crash();
    }
}

#[test]
fn torn_log_tail_is_ignored() {
    let dev = device();
    {
        let store = Arc::new(LogStructuredStore::new(dev.clone(), LssConfig::default()));
        let tree = BwTree::with_store(BwTreeConfig::small_pages(), store.clone());
        for i in 0..500u32 {
            tree.put(key(i), Bytes::from(format!("v{i}")));
        }
        let mgr = CacheManager::new(CacheManagerConfig::default(), VirtualClock::new());
        mgr.checkpoint(&tree).unwrap();
        store.sync().unwrap();
        // More writes flushed to the device but never synced: the crash
        // tears them off mid-frame.
        for i in 500..900u32 {
            tree.put(key(i), Bytes::from(format!("v{i}")));
        }
        mgr.checkpoint(&tree).unwrap(); // flushed, NOT synced
    }
    dev.crash();
    let recovered = recover(dev, LssConfig::default(), BwTreeConfig::small_pages())
        .expect("recovery of torn log");
    for i in 0..500u32 {
        assert_eq!(
            recovered.tree.get(&key(i)),
            Some(Bytes::from(format!("v{i}"))),
            "synced key {i}"
        );
    }
    for i in 500..900u32 {
        assert_eq!(recovered.tree.get(&key(i)), None, "torn key {i} survived");
    }
}

#[test]
fn injected_read_failures_surface_as_errors_not_corruption() {
    let dev = device();
    let store = Arc::new(LogStructuredStore::new(dev.clone(), LssConfig::default()));
    let tree = BwTree::with_store(BwTreeConfig::small_pages(), store.clone());
    for i in 0..300u32 {
        tree.put(key(i), Bytes::from(format!("v{i}")));
    }
    for p in tree.pages() {
        if p.is_leaf {
            let _ = tree.evict_page(p.pid);
        }
    }
    store.flush().unwrap();
    // All reads now fail at the device.
    dev.set_injector(FailureInjector::failing_reads(1.0, 42));
    let mut errors = 0;
    for i in (0..300u32).step_by(37) {
        match tree.try_get(&key(i)) {
            Err(TreeError::Store(StoreError::Io(_))) => errors += 1,
            Ok(None) => panic!("read loss disguised as missing key"),
            Ok(Some(_)) => panic!("read should have failed"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(errors > 0);
    // Heal the device: all data is still there.
    dev.set_injector(FailureInjector::disabled());
    for i in 0..300u32 {
        assert_eq!(tree.get(&key(i)), Some(Bytes::from(format!("v{i}"))));
    }
}

#[test]
fn gc_then_crash_then_recover() {
    let dev = device();
    {
        let store = Arc::new(LogStructuredStore::new(
            dev.clone(),
            LssConfig {
                gc_live_fraction: 0.8,
                ..LssConfig::default()
            },
        ));
        let tree = BwTree::with_store(BwTreeConfig::small_pages(), store.clone());
        let mgr = CacheManager::new(CacheManagerConfig::default(), VirtualClock::new());
        // Churn so GC has work, checkpointing as we go.
        for round in 0..8u32 {
            for i in 0..200u32 {
                tree.put(key(i), Bytes::from(format!("r{round}-{i}")));
            }
            mgr.checkpoint(&tree).unwrap();
            store.sync().unwrap();
        }
        store.gc_all().unwrap();
        store.sync().unwrap();
    }
    dev.crash();
    let recovered =
        recover(dev, LssConfig::default(), BwTreeConfig::small_pages()).expect("recovery after GC");
    for i in 0..200u32 {
        assert_eq!(
            recovered.tree.get(&key(i)),
            Some(Bytes::from(format!("r7-{i}"))),
            "key {i} after GC+crash"
        );
    }
}
