//! Property tests: every store in the workspace implements the same
//! key-value semantics. Random operation sequences are applied to the
//! Bw-tree, MassTree, the LSM tree, and a `BTreeMap` model; all four must
//! agree on every lookup and on the final state.

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::lsm::{LsmConfig, LsmTree};
use dcs_core::masstree::MassTree;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(String, String),
    Del(String),
    Get(String),
}

fn key_strategy() -> impl Strategy<Value = String> {
    // A mix of short keys, 8-byte-boundary keys, and long shared-prefix
    // keys (exercises MassTree layers and Bw-tree splits).
    prop_oneof![
        "[a-c]{1,3}",
        "k[0-9]{1,3}",
        "exactly8char[0-9]".prop_map(|s| s),
        "shared-prefix-0123456789-[a-d]{1,6}",
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), "[a-z0-9]{0,20}").prop_map(|(k, v)| Op::Put(k, v)),
        1 => key_strategy().prop_map(Op::Del),
        2 => key_strategy().prop_map(Op::Get),
    ]
}

fn lsm() -> LsmTree {
    let device = Arc::new(dcs_core::flashsim::FlashDevice::new(
        dcs_core::flashsim::DeviceConfig {
            segment_count: 512,
            ..dcs_core::flashsim::DeviceConfig::small_test()
        },
    ));
    LsmTree::new(
        device,
        LsmConfig {
            memtable_bytes: 1 << 10, // tiny: forces flushes/compactions
            level_base_bytes: 4 << 10,
            table_target_bytes: 2 << 10,
            ..LsmConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    #[test]
    fn all_stores_agree(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let bw = BwTree::in_memory(BwTreeConfig::small_pages());
        let mt = MassTree::new();
        let ls = lsm();
        let mut model: BTreeMap<String, String> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    bw.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                    mt.insert(Bytes::from(k.clone()), Bytes::from(v.clone()));
                    ls.put(Bytes::from(k.clone()), Bytes::from(v.clone())).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    bw.delete(Bytes::from(k.clone()));
                    mt.remove(k.as_bytes());
                    ls.delete(Bytes::from(k.clone())).unwrap();
                    model.remove(k);
                }
                Op::Get(k) => {
                    let expect = model.get(k).map(|v| Bytes::from(v.clone()));
                    prop_assert_eq!(bw.get(k.as_bytes()), expect.clone(), "bwtree get {}", k);
                    prop_assert_eq!(mt.get(k.as_bytes()), expect.clone(), "masstree get {}", k);
                    prop_assert_eq!(ls.get(k.as_bytes()).unwrap(), expect, "lsm get {}", k);
                }
            }
        }
        // Final state: every model key present everywhere, every model-absent
        // probe absent everywhere.
        for (k, v) in &model {
            let expect = Some(Bytes::from(v.clone()));
            prop_assert_eq!(bw.get(k.as_bytes()), expect.clone());
            prop_assert_eq!(mt.get(k.as_bytes()), expect.clone());
            prop_assert_eq!(ls.get(k.as_bytes()).unwrap(), expect);
        }
        prop_assert_eq!(bw.count_entries(), model.len());
        prop_assert_eq!(mt.len(), model.len());
    }

    #[test]
    fn bwtree_scans_match_model(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        bounds in (key_strategy(), key_strategy()),
    ) {
        let bw = BwTree::in_memory(BwTreeConfig::small_pages());
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    bw.put(Bytes::from(k.clone()), Bytes::from(v.clone()));
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    bw.delete(Bytes::from(k.clone()));
                    model.remove(k);
                }
                Op::Get(_) => {}
            }
        }
        let (lo, hi) = if bounds.0 <= bounds.1 { bounds } else { (bounds.1, bounds.0) };
        let got: Vec<(Bytes, Bytes)> = bw
            .range(lo.as_bytes(), Some(hi.as_bytes()))
            .map(|r| r.unwrap())
            .collect();
        let expect: Vec<(Bytes, Bytes)> = model
            .range(lo.clone()..hi.clone())
            .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
            .collect();
        prop_assert_eq!(got, expect, "range [{}, {})", lo, hi);
    }

    #[test]
    fn lsm_scan_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let ls = lsm();
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    ls.put(Bytes::from(k.clone()), Bytes::from(v.clone())).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    ls.delete(Bytes::from(k.clone())).unwrap();
                    model.remove(k);
                }
                Op::Get(_) => {}
            }
        }
        let got = ls.scan(b"", None).unwrap();
        let expect: Vec<(Bytes, Bytes)> = model
            .iter()
            .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
            .collect();
        prop_assert_eq!(got, expect);
    }
}
