//! Crash consistency under *torn* power cuts.
//!
//! `FlashDevice::crash_torn(k)` models a power failure that leaves up to
//! `k` bytes of the in-flight write persisted — unlike `crash()`, which
//! drops the whole unsynced tail. Both log-structured writers must cope:
//!
//! * the LSS must recover every checkpointed-and-synced page, pass its
//!   offset-table audit, and recover *identically* when run twice;
//! * the TC's recovery log must return every barrier-acknowledged record,
//!   and at most a clean batch prefix of the unacknowledged tail — never
//!   a corrupt or reordered record.

use bytes::Bytes;
use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::flashsim::{DeviceConfig, FlashDevice, VirtualClock};
use dcs_core::llama::{recover, CacheManager, CacheManagerConfig, LogStructuredStore, LssConfig};
use dcs_core::tc::{LogRecord, RecoveryLog};
use std::sync::Arc;

fn device() -> Arc<FlashDevice> {
    Arc::new(FlashDevice::new(DeviceConfig {
        segment_count: 2048,
        ..DeviceConfig::small_test()
    }))
}

fn key(i: u32) -> Bytes {
    Bytes::from(format!("key{i:06}"))
}

/// Tear sizes: shorter than a frame header, mid-header, mid-payload, a few
/// whole frames, and (much) more than the tail.
const TEARS: &[usize] = &[1, 17, 39, 200, 1 << 20];

#[test]
fn lss_survives_power_cut_mid_flush() {
    for &tear in TEARS {
        let dev = device();
        {
            let store = Arc::new(LogStructuredStore::new(dev.clone(), LssConfig::default()));
            let tree = BwTree::with_store(BwTreeConfig::small_pages(), store.clone());
            for i in 0..200u32 {
                tree.put(key(i), Bytes::from(format!("v{i}")));
            }
            let mgr = CacheManager::new(CacheManagerConfig::default(), VirtualClock::new());
            mgr.checkpoint(&tree).unwrap();
            store.sync().unwrap(); // acknowledged: must survive any crash
            for i in 1000..1200u32 {
                tree.put(key(i), Bytes::from("doomed"));
            }
            mgr.checkpoint(&tree).unwrap(); // flushed, NOT synced
        }
        dev.crash_torn(tear);

        let recovered = recover(
            dev.clone(),
            LssConfig::default(),
            BwTreeConfig::small_pages(),
        )
        .unwrap_or_else(|e| panic!("recovery after tear {tear}: {e}"));
        for i in 0..200u32 {
            assert_eq!(
                recovered.tree.get(&key(i)),
                Some(Bytes::from(format!("v{i}"))),
                "tear {tear}: acked key {i} lost"
            );
        }
        // Unacknowledged keys may have survived (the torn tail kept whole
        // frames) or not, but they must never corrupt what they left:
        for i in 1000..1200u32 {
            let got = recovered.tree.get(&key(i));
            assert!(
                got.is_none() || got.as_deref() == Some(b"doomed".as_slice()),
                "tear {tear}: unacked key {i} recovered a value never written"
            );
        }
        recovered
            .store
            .audit()
            .unwrap_or_else(|e| panic!("tear {tear}: audit after recovery: {e}"));

        // Recovery idempotence: a second recovery from the same bytes
        // reaches the same logical state.
        let again =
            LogStructuredStore::recover_from_device(dev.clone(), LssConfig::default()).unwrap();
        assert_eq!(
            recovered.store.fingerprint(),
            again.fingerprint(),
            "tear {tear}: recovery not idempotent"
        );
        assert_eq!(recovered.store.newest_parts(), again.newest_parts());
    }
}

#[test]
fn wal_survives_power_cut_mid_write() {
    fn rec(ts: u64, key: &str, value: Option<&str>) -> LogRecord {
        LogRecord {
            ts,
            key: Bytes::from(key.to_owned()),
            value: value.map(|v| Bytes::from(v.to_owned())),
        }
    }

    for &tear in TEARS {
        let dev = device();
        let log = RecoveryLog::on_device(dev.clone());
        let acked: Vec<LogRecord> = (0..10)
            .map(|i| rec(i, &format!("a{i}"), Some("committed")))
            .collect();
        log.append_group(&acked);
        log.flush().unwrap(); // barrier: acknowledged durable
        let inflight: Vec<LogRecord> = (10..20)
            .map(|i| {
                rec(
                    i,
                    &format!("b{i}"),
                    if i % 3 == 0 { None } else { Some("maybe") },
                )
            })
            .collect();
        log.append_group(&inflight);
        log.flush_nobarrier().unwrap(); // queued, power cut races it
        assert_eq!(log.undurable(), inflight.len());

        dev.crash_torn(tear);
        let recovered = RecoveryLog::recover_from_device(&dev);
        assert!(
            recovered.len() >= acked.len(),
            "tear {tear}: acknowledged records lost ({} < {})",
            recovered.len(),
            acked.len()
        );
        assert_eq!(
            &recovered[..acked.len()],
            acked.as_slice(),
            "tear {tear}: acknowledged prefix damaged"
        );
        // Whatever survived of the unacknowledged tail must be a clean
        // prefix of it — frames are checksummed, so a torn frame vanishes
        // entirely rather than yielding garbage.
        let tail = &recovered[acked.len()..];
        assert!(
            tail.len() <= inflight.len() && tail == &inflight[..tail.len()],
            "tear {tear}: unacknowledged tail is not a clean prefix"
        );
    }
}
