//! The one power-of-two histogram.
//!
//! Two copies of this structure used to exist — a latency histogram in
//! `dcs-server::metrics` and an I/O-depth histogram in
//! `dcs-flashsim::stats` — with diverging percentile behaviour (the
//! flashsim copy had none at all, and reporting the bucket upper bound
//! biases every percentile high by up to 2×). This is the single shared
//! implementation: 64 power-of-two buckets cover `1 ..= ~1.8e19`, so a
//! sample is one `leading_zeros` and four relaxed atomic ops, and the
//! structure is safe to share across threads with zero allocation.
//!
//! Percentile extraction interpolates **linearly within the winning
//! bucket** at the mid-rank convention (`(rank − 0.5) / count` of the
//! bucket span), and clamps the bucket's upper edge to the largest
//! sample actually observed — without that clamp the top bucket, which
//! is usually only part-filled, drags p95/p99 toward its far edge. The
//! unit tests pin p50/p95/p99 against an exact sorted reference.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: power-of-two buckets over `u64` values.
pub const HIST_BUCKETS: usize = 64;

/// A concurrent, fixed-footprint power-of-two histogram. Values are
/// whatever unit the call site records — nanoseconds for latency,
/// commands for queue depth, pages for batch sizes.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// A fresh histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (zero is clamped into the lowest bucket).
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Largest sample recorded so far.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]` (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Extract the percentile summary.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }

    /// Point-in-time copy, mergeable across threads and shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.total.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: merge snapshots from many shards
/// or devices, then extract percentiles once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` holds `[2^i, 2^(i+1))`).
    pub counts: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest single sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (exact: bucket-wise sum, max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sample value; 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 1 } else { 1u64 << i }, *c))
            .collect()
    }

    /// Value at quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the winning power-of-two bucket at the mid-rank convention. The
    /// bucket's upper edge is clamped to the observed max so a
    /// part-filled top bucket cannot bias percentiles high. 0 with no
    /// samples.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 1u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                // Samples beyond the observed max cannot exist; interpolate
                // against the clamped span.
                let hi = hi.min(self.max).max(lo);
                let frac = (((rank - seen) as f64) - 0.5) / c as f64;
                let est = lo as f64 + frac.max(0.0) * (hi - lo) as f64;
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Extract the percentile summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_nanos: self.mean(),
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max,
        }
    }
}

/// Percentile summary extracted from a histogram. Field names say
/// "nanos" because latency is the dominant use; for other units the
/// values are simply in the recorded unit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean value.
    pub mean_nanos: f64,
    /// Median.
    pub p50_nanos: f64,
    /// 95th percentile.
    pub p95_nanos: f64,
    /// 99th percentile.
    pub p99_nanos: f64,
    /// Largest single sample.
    pub max_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact percentile (nearest-rank) over a sorted copy.
    fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        sorted[rank - 1] as f64
    }

    /// The satellite's pin: interpolated p50/p95/p99 must track an
    /// exact sorted reference closely on a dense uniform spread —
    /// including p95/p99, which land in the part-filled top bucket the
    /// old upper-bound convention biased by up to ~30%.
    #[test]
    fn percentiles_pin_against_exact_sorted_reference() {
        let h = Histogram::new();
        let data: Vec<u64> = (1..=100_000u64).collect();
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();
        for &(q, name) in &[(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let exact = exact_quantile(&data, q);
            let est = snap.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel < 0.02,
                "{name}: est {est} vs exact {exact} (rel err {rel:.4})"
            );
        }
    }

    /// A heavily skewed distribution: most mass in one bucket, a thin
    /// tail. Interpolation must stay within the winning bucket and
    /// never exceed the observed max.
    #[test]
    fn percentiles_bounded_on_skewed_data() {
        let h = Histogram::new();
        let mut data = vec![1_000u64; 990];
        for i in 0..10u64 {
            data.push(1_000_000 + i * 7_919);
        }
        for &v in &data {
            h.record(v);
        }
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50);
        // p50 falls in bucket [512, 1023]; exact is 1000.
        assert!((512.0..=1023.0).contains(&p50), "p50 {p50}");
        let p99 = snap.quantile(0.99);
        assert!(p99 <= snap.max as f64);
        assert!(p99 >= exact_quantile(&sorted, 0.50));
    }

    #[test]
    fn top_bucket_clamps_to_observed_max() {
        let h = Histogram::new();
        // All mass in [65536, 131071] but max observed is 70000: the
        // old convention reported ≈131071 for p99.
        for v in 65_536..=70_000u64 {
            h.record(v);
        }
        let p99 = h.quantile(0.99);
        assert!(p99 <= 70_000.0, "p99 {p99}");
        assert!(p99 >= 65_536.0);
        let exact = 65_536.0 + 0.99 * (70_000.0 - 65_536.0);
        assert!((p99 - exact).abs() / exact < 0.02, "p99 {p99} vs {exact}");
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v * 3)
            } else {
                b.record(v * 3)
            }
            all.record(v * 3);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn empty_is_zero_and_extremes_do_not_panic() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0.0);
        assert!(h.quantile(1.0) <= u64::MAX as f64);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let s = h.summary();
        assert!(s.p50_nanos <= s.p95_nanos && s.p95_nanos <= s.p99_nanos);
        assert!(s.p99_nanos <= s.max_nanos as f64);
    }

    #[test]
    fn depth_style_small_values() {
        // The flashsim use: small integer queue depths.
        let h = Histogram::new();
        for d in [1u64, 1, 2, 2, 2, 3, 4, 8] {
            h.record(d);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, 8);
        assert!((s.mean() - 23.0 / 8.0).abs() < 1e-9);
        let nz = s.nonzero_buckets();
        assert_eq!(nz[0], (1, 2)); // depth 1
        assert!(nz.iter().any(|&(lo, _)| lo == 2)); // depths 2..3
    }
}
