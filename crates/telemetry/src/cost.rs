//! Cost attribution in the paper's terms.
//!
//! The paper prices a run as execution cost plus storage rent (§3,
//! Equations 4–5): MM operations cost CPU cycles, SS operations
//! additionally cost I/O capability (`R` times dearer, §2.1), and every
//! resident byte pays rent for the run's duration. [`CostClass`] tags
//! each traced span with the term it accrues to, and [`CostLedger`]
//! keeps the *exact* counts — attribution is never sampled, only the
//! timeline view is — so `dcs_costmodel::accounting::price_run` can be
//! fed measured inputs:
//!
//! * `mm_op` / `ss_read` / `ss_write` — the execution terms. Call sites
//!   sit next to the per-crate `mm_ops`/`ss_ops` stat bumps so the two
//!   derivations cannot drift.
//! * `set_dram_bytes` / `set_flash_bytes` — occupancy gauges the rent
//!   terms integrate over (steady-state average; the stores update them
//!   at sweep/flush boundaries).
//!
//! The ledger's counters live in the [`global`]
//! registry under `cost.*` names, so a `STATS` scrape carries the
//! attribution and merged snapshots sum it exactly.

use crate::registry::{global, Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// Which paper cost term a span accrues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Main-memory execution: latch-free ops on cached state.
    Mm,
    /// Secondary-storage read: a device fetch on the critical path.
    SsRead,
    /// Secondary-storage write: flush/checkpoint/compaction I/O.
    SsWrite,
    /// WAL durability barrier (group commit's device sync).
    Wal,
    /// Background maintenance: GC, eviction sweeps, consolidation,
    /// epoch reclamation — CPU that is real but off the request path.
    Maintenance,
}

impl CostClass {
    /// Stable lowercase label (trace category, JSON key).
    pub fn label(&self) -> &'static str {
        match self {
            CostClass::Mm => "mm",
            CostClass::SsRead => "ss_read",
            CostClass::SsWrite => "ss_write",
            CostClass::Wal => "wal",
            CostClass::Maintenance => "maintenance",
        }
    }
}

/// Exact per-term tallies, pre-resolved to registry handles so
/// recording is one striped atomic add.
pub struct CostLedger {
    mm_ops: Arc<Counter>,
    ss_reads: Arc<Counter>,
    ss_writes: Arc<Counter>,
    wal_barriers: Arc<Counter>,
    maintenance: Arc<Counter>,
    dram_bytes: Arc<Gauge>,
    flash_bytes: Arc<Gauge>,
}

/// The process-wide ledger, backed by `cost.*` metrics in the global
/// registry.
pub fn ledger() -> &'static CostLedger {
    static LEDGER: OnceLock<CostLedger> = OnceLock::new();
    LEDGER.get_or_init(|| {
        let r = global();
        CostLedger {
            mm_ops: r.counter("cost.mm_ops"),
            ss_reads: r.counter("cost.ss_reads"),
            ss_writes: r.counter("cost.ss_writes"),
            wal_barriers: r.counter("cost.wal_barriers"),
            maintenance: r.counter("cost.maintenance_ops"),
            dram_bytes: r.gauge("cost.dram_bytes"),
            flash_bytes: r.gauge("cost.flash_bytes"),
        }
    })
}

macro_rules! record {
    ($this:ident . $field:ident += $n:expr) => {{
        #[cfg(not(feature = "disabled"))]
        $this.$field.add($n);
        #[cfg(feature = "disabled")]
        let _ = $n;
    }};
}

impl CostLedger {
    /// One main-memory operation executed.
    #[inline]
    pub fn mm_op(&self) {
        record!(self.mm_ops += 1);
    }

    /// `n` main-memory operations executed.
    #[inline]
    pub fn mm_ops(&self, n: u64) {
        record!(self.mm_ops += n);
    }

    /// One secondary-storage read performed.
    #[inline]
    pub fn ss_read(&self) {
        record!(self.ss_reads += 1);
    }

    /// `n` secondary-storage reads performed.
    #[inline]
    pub fn ss_reads(&self, n: u64) {
        record!(self.ss_reads += n);
    }

    /// One secondary-storage write performed.
    #[inline]
    pub fn ss_write(&self) {
        record!(self.ss_writes += 1);
    }

    /// One WAL durability barrier issued.
    #[inline]
    pub fn wal_barrier(&self) {
        record!(self.wal_barriers += 1);
    }

    /// One background maintenance action (sweep, consolidation,
    /// reclamation batch, compaction).
    #[inline]
    pub fn maintenance_op(&self) {
        record!(self.maintenance += 1);
    }

    /// Report current DRAM occupancy in bytes.
    pub fn set_dram_bytes(&self, bytes: u64) {
        #[cfg(not(feature = "disabled"))]
        self.dram_bytes.set(bytes as i64);
        #[cfg(feature = "disabled")]
        let _ = bytes;
    }

    /// Report current flash occupancy in bytes.
    pub fn set_flash_bytes(&self, bytes: u64) {
        #[cfg(not(feature = "disabled"))]
        self.flash_bytes.set(bytes as i64);
        #[cfg(feature = "disabled")]
        let _ = bytes;
    }

    /// Adjust DRAM occupancy by a delta. Multi-instance processes (one
    /// store per shard) report per-store deltas so the gauge holds the
    /// process-wide sum; `set_dram_bytes` is for single-store runs.
    pub fn add_dram_bytes(&self, delta: i64) {
        #[cfg(not(feature = "disabled"))]
        self.dram_bytes.add(delta);
        #[cfg(feature = "disabled")]
        let _ = delta;
    }

    /// Adjust flash occupancy by a delta (see [`CostLedger::add_dram_bytes`]).
    pub fn add_flash_bytes(&self, delta: i64) {
        #[cfg(not(feature = "disabled"))]
        self.flash_bytes.add(delta);
        #[cfg(feature = "disabled")]
        let _ = delta;
    }

    /// Exact totals so far.
    pub fn totals(&self) -> CostTotals {
        CostTotals {
            mm_ops: self.mm_ops.value(),
            ss_reads: self.ss_reads.value(),
            ss_writes: self.ss_writes.value(),
            wal_barriers: self.wal_barriers.value(),
            maintenance_ops: self.maintenance.value(),
            dram_bytes: self.dram_bytes.value().max(0) as u64,
            flash_bytes: self.flash_bytes.value().max(0) as u64,
        }
    }
}

/// Plain-data copy of the ledger — the measured inputs for
/// `dcs_costmodel::accounting::RunProfile`. The telemetry crate stays a
/// dependency leaf, so the conversion lives at the call site (loadgen).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostTotals {
    /// Main-memory operations executed.
    pub mm_ops: u64,
    /// Secondary-storage reads.
    pub ss_reads: u64,
    /// Secondary-storage writes.
    pub ss_writes: u64,
    /// WAL durability barriers.
    pub wal_barriers: u64,
    /// Background maintenance actions.
    pub maintenance_ops: u64,
    /// Last reported DRAM occupancy.
    pub dram_bytes: u64,
    /// Last reported flash occupancy.
    pub flash_bytes: u64,
}

impl CostTotals {
    /// Operations that performed secondary-storage I/O (the paper's
    /// `ss_ops` execution term).
    pub fn ss_ops(&self) -> u64 {
        self.ss_reads + self.ss_writes
    }

    /// Everything this ledger saw, per-term deltas against `earlier`
    /// (gauges are point-in-time and pass through).
    pub fn delta(&self, earlier: &CostTotals) -> CostTotals {
        CostTotals {
            mm_ops: self.mm_ops - earlier.mm_ops,
            ss_reads: self.ss_reads - earlier.ss_reads,
            ss_writes: self.ss_writes - earlier.ss_writes,
            wal_barriers: self.wal_barriers - earlier.wal_barriers,
            maintenance_ops: self.maintenance_ops - earlier.maintenance_ops,
            dram_bytes: self.dram_bytes,
            flash_bytes: self.flash_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(CostClass::Mm.label(), "mm");
        assert_eq!(CostClass::SsRead.label(), "ss_read");
        assert_eq!(CostClass::SsWrite.label(), "ss_write");
        assert_eq!(CostClass::Wal.label(), "wal");
        assert_eq!(CostClass::Maintenance.label(), "maintenance");
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn ledger_accumulates_and_deltas() {
        let before = ledger().totals();
        ledger().mm_ops(10);
        ledger().ss_read();
        ledger().ss_write();
        ledger().wal_barrier();
        ledger().maintenance_op();
        let d = ledger().totals().delta(&before);
        assert_eq!(d.mm_ops, 10);
        assert_eq!(d.ss_reads, 1);
        assert_eq!(d.ss_writes, 1);
        assert_eq!(d.ss_ops(), 2);
        assert_eq!(d.wal_barriers, 1);
        assert_eq!(d.maintenance_ops, 1);
    }

    #[cfg(feature = "disabled")]
    #[test]
    fn disabled_ledger_records_nothing() {
        let before = ledger().totals();
        ledger().mm_ops(10);
        ledger().ss_read();
        assert_eq!(ledger().totals(), before);
    }
}
