//! The time source spans are stamped with.
//!
//! Inside the simulator the interesting time is the flashsim *virtual*
//! clock — device service, queueing, and rent are all accounted in
//! virtual nanoseconds, and a trace stamped with wall time would show
//! none of it. Outside the simulator (unit tests, the wall-latency
//! backends) a monotonic real clock is the only thing available. This
//! module lets the process install whichever applies:
//!
//! * [`set_time_source`] installs a closure (typically
//!   `VirtualClock::now`) consulted by every [`now_nanos`] call.
//! * With nothing installed, [`now_nanos`] falls back to nanoseconds of
//!   monotonic real time since the first call in the process.
//!
//! Reads take a `RwLock` read lock — uncontended after startup, and only
//! paid on the *sampled* tracing path; the exact cost ledger never needs
//! a timestamp.

use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

type TimeFn = Arc<dyn Fn() -> u64 + Send + Sync>;

static SOURCE: RwLock<Option<TimeFn>> = RwLock::new(None);

/// Install `f` as the process-wide span time source (e.g. a flashsim
/// `VirtualClock`). Replaces any previous source.
pub fn set_time_source<F: Fn() -> u64 + Send + Sync + 'static>(f: F) {
    *SOURCE.write().unwrap() = Some(Arc::new(f));
}

/// Remove the installed source, reverting to the monotonic real clock.
pub fn clear_time_source() {
    *SOURCE.write().unwrap() = None;
}

/// Current time in nanoseconds: the installed source if any, otherwise
/// monotonic real time since the first call.
pub fn now_nanos() -> u64 {
    // Poison recovery, not unwrap: a panicking writer can only have
    // swapped the whole `Option`, which is valid in either state, and the
    // clock is read on every wire-path span — it must never abort a shard.
    let source = SOURCE.read().unwrap_or_else(|e| e.into_inner());
    if let Some(f) = source.as_ref() {
        return f();
    }
    monotonic_nanos()
}

fn monotonic_nanos() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fallback_is_monotonic() {
        clear_time_source();
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn installed_source_wins_and_clears() {
        let tick = Arc::new(AtomicU64::new(41));
        let t = Arc::clone(&tick);
        set_time_source(move || t.fetch_add(1, Ordering::SeqCst) + 1);
        assert_eq!(now_nanos(), 42);
        assert_eq!(now_nanos(), 43);
        clear_time_source();
        // Back on the real clock: monotonic again.
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
