//! Flight recorder: a bounded ring of registry + MRC snapshots for
//! postmortems.
//!
//! Latency spikes and reconciliation failures are diagnosed *after* the
//! fact, when the counters that explain them have already moved on. The
//! flight recorder keeps the recent past: every `every_n` ticks it
//! snapshots the global metrics registry and every MRC profiler into a
//! ring bounded at `keep` entries. When an anomaly is detected (a BUSY
//! spike, a p95 regression, a cost-attribution reconciliation failure),
//! the detector calls [`FlightRecorder::trigger`] with a reason; the
//! ring — now ending at the anomaly — is dumped as one JSON document and
//! shipped out as a CI artifact.
//!
//! The recorder is passive: nothing in the serving path ticks it. The
//! load generator (or any embedding process) drives [`FlightRecorder::tick`]
//! from a pacing thread, so a build that never ticks pays nothing beyond
//! the idle `OnceLock`.

use crate::mrc::{mrc, MrcSnapshot};
use crate::registry::{global, RegistrySnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One ring entry: where the system stood at a tick.
#[derive(Debug, Clone)]
pub struct FlightFrame {
    /// Tick count at capture.
    pub tick: u64,
    /// [`crate::clock::now_nanos`] at capture.
    pub nanos: u64,
    /// Anomaly reason, or `""` for a routine periodic frame.
    pub reason: String,
    /// The global metrics registry.
    pub registry: RegistrySnapshot,
    /// Every registered MRC profiler.
    pub mrc: Vec<MrcSnapshot>,
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Capture a frame every this many ticks (0 disables periodic
    /// capture; triggers still record).
    pub every_n: u64,
    /// Ring bound: the last `keep` frames survive.
    pub keep: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            every_n: 10,
            keep: 32,
        }
    }
}

/// The bounded snapshot ring. Use [`flight`] for the process global.
pub struct FlightRecorder {
    config: Mutex<FlightConfig>,
    ticks: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    frames: VecDeque<FlightFrame>,
    triggers: Vec<String>,
}

impl FlightRecorder {
    fn new() -> Self {
        FlightRecorder {
            config: Mutex::new(FlightConfig::default()),
            ticks: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a new cadence/bound (also clears nothing: the ring keeps
    /// whatever it already holds, re-bounded to the new `keep`).
    pub fn configure(&self, config: FlightConfig) {
        *self.config.lock().unwrap_or_else(|e| e.into_inner()) = config;
        let mut inner = self.lock();
        while inner.frames.len() > config.keep.max(1) {
            inner.frames.pop_front();
        }
    }

    fn capture(&self, tick: u64, reason: &str, keep: usize) {
        let frame = FlightFrame {
            tick,
            nanos: crate::clock::now_nanos(),
            reason: reason.to_string(),
            registry: global().snapshot(),
            mrc: mrc().snapshots(),
        };
        let mut inner = self.lock();
        inner.frames.push_back(frame);
        while inner.frames.len() > keep.max(1) {
            inner.frames.pop_front();
        }
    }

    /// Advance the recorder one tick; captures a frame on the configured
    /// cadence. Returns the tick number.
    pub fn tick(&self) -> u64 {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let config = *self.config.lock().unwrap_or_else(|e| e.into_inner());
        if config.every_n > 0 && tick % config.every_n == 0 {
            self.capture(tick, "", config.keep);
        }
        tick
    }

    /// Record an anomaly: remembers `reason` and captures a frame
    /// immediately so the dump ends at the moment of detection.
    pub fn trigger(&self, reason: &str) {
        let config = *self.config.lock().unwrap_or_else(|e| e.into_inner());
        let tick = self.ticks.load(Ordering::Relaxed);
        self.lock().triggers.push(reason.to_string());
        self.capture(tick, reason, config.keep);
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.lock().frames.len()
    }

    /// Whether the ring holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Anomaly reasons recorded so far.
    pub fn triggers(&self) -> Vec<String> {
        self.lock().triggers.clone()
    }

    /// The whole ring as one JSON document:
    /// `{"triggers": [...], "frames": [{tick, nanos, reason, registry, mrc}]}`.
    pub fn dump_json(&self) -> String {
        let inner = self.lock();
        let triggers: Vec<String> = inner
            .triggers
            .iter()
            .map(|t| format!("\"{}\"", t.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        let frames: Vec<String> = inner
            .frames
            .iter()
            .map(|f| {
                let mrc: Vec<String> = f.mrc.iter().map(|s| s.to_json()).collect();
                format!(
                    "{{\"tick\": {}, \"nanos\": {}, \"reason\": \"{}\", \"registry\": {}, \"mrc\": [{}]}}",
                    f.tick,
                    f.nanos,
                    f.reason.replace('\\', "\\\\").replace('"', "\\\""),
                    f.registry.to_json(),
                    mrc.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"triggers\": [{}], \"frames\": [\n{}\n]}}\n",
            triggers.join(", "),
            frames.join(",\n")
        )
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("ticks", &self.ticks.load(Ordering::Relaxed))
            .field("frames", &self.len())
            .finish()
    }
}

/// The process-global flight recorder.
pub fn flight() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is shared across tests in this binary; each
    /// test uses its own instance.
    fn recorder(every_n: u64, keep: usize) -> FlightRecorder {
        let r = FlightRecorder::new();
        r.configure(FlightConfig { every_n, keep });
        r
    }

    #[test]
    fn periodic_capture_respects_cadence_and_bound() {
        let r = recorder(5, 3);
        for _ in 0..40 {
            r.tick();
        }
        // 8 captures (ticks 5, 10, ..., 40), bounded to the last 3.
        assert_eq!(r.len(), 3);
        let dump = r.dump_json();
        assert!(dump.contains("\"tick\": 40"));
        assert!(!dump.contains("\"tick\": 5,"), "old frames must rotate out");
    }

    #[test]
    fn trigger_records_reason_and_frame() {
        let r = recorder(0, 4);
        for _ in 0..7 {
            r.tick();
        }
        assert!(r.is_empty(), "cadence 0 must not capture periodically");
        r.trigger("busy spike: 120 rejections in one tick");
        assert_eq!(r.len(), 1);
        assert_eq!(r.triggers().len(), 1);
        let dump = r.dump_json();
        assert!(dump.contains("busy spike"));
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
        assert_eq!(dump.matches('[').count(), dump.matches(']').count());
    }

    #[test]
    fn reasons_with_quotes_stay_valid_json() {
        let r = recorder(0, 2);
        r.trigger("p95 \"regression\" \\ test");
        let dump = r.dump_json();
        assert!(dump.contains("p95 \\\"regression\\\" \\\\ test"));
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = flight() as *const _;
        let b = flight() as *const _;
        assert_eq!(a, b);
    }
}
