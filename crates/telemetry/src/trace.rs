//! Structured span tracing: bounded per-thread rings, head sampling,
//! chrome://tracing export.
//!
//! A span is a guard: [`span`] stamps the start from
//! [`crate::clock::now_nanos`] (the flashsim virtual clock when
//! installed), dropping it stamps the end and pushes one complete event
//! into the recording thread's ring buffer. Rings are bounded
//! ([`RING_CAPACITY`] events, oldest dropped and counted), so tracing
//! can stay on in a long server run without growing memory.
//!
//! **Sampling is decided at the root.** A top-level span (depth 0 on its
//! thread) consults the global permille knob with a deterministic
//! stride — exactly `n` of every 1000 roots trace — and every nested
//! span inherits that decision, so a sampled request keeps its whole
//! tree (server shard → store → llama/lsm → flashsim) and an unsampled
//! one costs two thread-local cell bumps. The default is 0 (off).
//! Cost attribution ([`crate::cost`]) is *not* gated by sampling.
//!
//! [`export_chrome_json`] drains every thread's ring into the Trace
//! Event Format (`ph:"X"` complete events, microsecond timestamps) that
//! chrome://tracing and Perfetto load directly; nesting falls out of
//! same-thread time containment.

#[cfg(not(feature = "disabled"))]
use crate::clock::now_nanos;
use crate::cost::CostClass;
#[cfg(not(feature = "disabled"))]
use std::cell::Cell;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-thread ring capacity in events; the oldest are dropped (and
/// counted) beyond this.
pub const RING_CAPACITY: usize = 65_536;

/// One finished span.
#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    name: &'static str,
    class: CostClass,
    start_nanos: u64,
    dur_nanos: u64,
}

struct Ring {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

struct ThreadBuf {
    label: String,
    ring: Mutex<Ring>,
}

fn thread_bufs() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

static SAMPLE_PERMILLE: AtomicU32 = AtomicU32::new(0);
static ROOTS_SEEN: AtomicU64 = AtomicU64::new(0);
static ROOTS_SAMPLED: AtomicU64 = AtomicU64::new(0);

/// Set the root-sampling rate in permille (0 = tracing off, 1000 =
/// every root). 1% sampling is `set_sampling_permille(10)`.
pub fn set_sampling_permille(permille: u32) {
    SAMPLE_PERMILLE.store(permille.min(1000), Ordering::Relaxed);
}

/// Current root-sampling rate in permille.
pub fn sampling_permille() -> u32 {
    SAMPLE_PERMILLE.load(Ordering::Relaxed)
}

#[cfg(not(feature = "disabled"))]
thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    // Stride accumulator for deterministic permille sampling.
    static STRIDE: Cell<u32> = const { Cell::new(0) };
}

thread_local! {
    static RING: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// The registry counter mirroring ring-bound drops, resolved once: the
/// span-drop path must not pay the registry's name lookup per event.
#[cfg(not(feature = "disabled"))]
fn dropped_spans_counter() -> &'static crate::registry::Counter {
    static COUNTER: OnceLock<Arc<crate::registry::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| crate::registry::global().counter("trace.dropped_spans"))
}

#[cfg(not(feature = "disabled"))]
fn my_ring() -> Arc<ThreadBuf> {
    RING.with(|r| {
        let mut r = r.borrow_mut();
        if let Some(buf) = r.as_ref() {
            return Arc::clone(buf);
        }
        let label = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
        let buf = Arc::new(ThreadBuf {
            label,
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(256),
                dropped: 0,
            }),
        });
        thread_bufs().lock().unwrap().push(Arc::clone(&buf));
        *r = Some(Arc::clone(&buf));
        buf
    })
}

/// A live span; dropping it records the event (if its root was
/// sampled).
#[must_use = "a span measures the scope it is alive for"]
#[cfg_attr(feature = "disabled", allow(dead_code))]
pub struct Span {
    name: &'static str,
    class: CostClass,
    start_nanos: u64,
    active: bool,
    // Spans are thread-scoped guards: they decrement this thread's
    // depth on drop, so they must not cross threads.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a span starting now. Depth-0 spans make the sampling decision;
/// nested spans inherit it.
#[inline]
pub fn span(name: &'static str, class: CostClass) -> Span {
    span_at(name, class, u64::MAX)
}

/// Open a span with an explicit start timestamp (nanoseconds on the
/// telemetry clock) — used to backdate a request's root span to its
/// mailbox-entry time. `u64::MAX` means "now".
pub fn span_at(name: &'static str, class: CostClass, start_nanos: u64) -> Span {
    #[cfg(feature = "disabled")]
    {
        let _ = start_nanos;
        return Span {
            name,
            class,
            start_nanos: 0,
            active: false,
            _not_send: std::marker::PhantomData,
        };
    }
    #[cfg(not(feature = "disabled"))]
    {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let active = if depth == 0 {
            let permille = SAMPLE_PERMILLE.load(Ordering::Relaxed);
            let on = permille > 0
                && STRIDE.with(|s| {
                    let acc = s.get() + permille;
                    if acc >= 1000 {
                        s.set(acc - 1000);
                        true
                    } else {
                        s.set(acc);
                        false
                    }
                });
            ROOTS_SEEN.fetch_add(1, Ordering::Relaxed);
            if on {
                ROOTS_SAMPLED.fetch_add(1, Ordering::Relaxed);
            }
            ACTIVE.with(|a| a.set(on));
            on
        } else {
            ACTIVE.with(|a| a.get())
        };
        Span {
            name,
            class,
            start_nanos: if active {
                if start_nanos == u64::MAX {
                    now_nanos()
                } else {
                    start_nanos
                }
            } else {
                0
            },
            active,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(not(feature = "disabled"))]
        {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            if self.active {
                let end = now_nanos();
                let ev = SpanEvent {
                    name: self.name,
                    class: self.class,
                    start_nanos: self.start_nanos.min(end),
                    dur_nanos: end.saturating_sub(self.start_nanos),
                };
                let buf = my_ring();
                let mut ring = buf.ring.lock().unwrap();
                if ring.events.len() >= RING_CAPACITY {
                    ring.events.pop_front();
                    ring.dropped += 1;
                    // Silent overwrite made visible: scrapers (and the CI
                    // telemetry job) watch `trace.dropped_spans` to know a
                    // trace export is missing events.
                    dropped_spans_counter().add(1);
                }
                ring.events.push_back(ev);
            }
        }
    }
}

/// Counters describing what the tracer has seen/kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Root spans opened (sampled or not).
    pub roots_seen: u64,
    /// Root spans that traced.
    pub roots_sampled: u64,
    /// Events currently buffered across all threads.
    pub buffered: u64,
    /// Events dropped to ring bounds.
    pub dropped: u64,
}

/// Current tracer counters.
pub fn trace_stats() -> TraceStats {
    let mut buffered = 0;
    let mut dropped = 0;
    for buf in thread_bufs().lock().unwrap().iter() {
        let r = buf.ring.lock().unwrap();
        buffered += r.events.len() as u64;
        dropped += r.dropped;
    }
    TraceStats {
        roots_seen: ROOTS_SEEN.load(Ordering::Relaxed),
        roots_sampled: ROOTS_SAMPLED.load(Ordering::Relaxed),
        buffered,
        dropped,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Drain every thread's ring into a chrome://tracing / Perfetto JSON
/// document (Trace Event Format). Timestamps are microseconds on the
/// telemetry clock; thread ids are assigned in registration order and
/// labelled with thread names via `M` metadata events.
pub fn export_chrome_json() -> String {
    let bufs: Vec<Arc<ThreadBuf>> = thread_bufs().lock().unwrap().clone();
    let mut events: Vec<(u32, SpanEvent)> = Vec::new();
    let mut meta = String::new();
    for (tid, buf) in bufs.iter().enumerate() {
        let tid = tid as u32 + 1;
        if !meta.is_empty() {
            meta.push(',');
        }
        meta.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&buf.label)
        ));
        let mut ring = buf.ring.lock().unwrap();
        for ev in ring.events.drain(..) {
            events.push((tid, ev));
        }
    }
    events.sort_by_key(|(_, e)| e.start_nanos);
    let mut body = String::with_capacity(events.len() * 96 + meta.len() + 64);
    body.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    body.push_str(&meta);
    for (tid, ev) in &events {
        if !body.ends_with('[') {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"cost_class\":\"{}\"}}}}",
            json_escape(ev.name),
            ev.class.label(),
            ev.start_nanos as f64 / 1000.0,
            ev.dur_nanos as f64 / 1000.0,
            tid,
            ev.class.label()
        ));
    }
    body.push_str("]}");
    body
}

#[cfg(all(test, not(feature = "disabled")))]
mod tests {
    use super::*;

    // The sampling knob and rings are process-global; serialize the
    // tests that reconfigure them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sampling_zero_records_nothing() {
        let _g = guard();
        set_sampling_permille(0);
        let before = trace_stats().buffered;
        for _ in 0..100 {
            let _s = span("noop", CostClass::Mm);
        }
        assert_eq!(trace_stats().buffered, before);
    }

    #[test]
    fn full_sampling_keeps_nested_tree() {
        let _g = guard();
        set_sampling_permille(1000);
        let before = trace_stats();
        {
            let _root = span("request", CostClass::Mm);
            let _child = span("store.get", CostClass::Mm);
            let _leaf = span("device.read", CostClass::SsRead);
        }
        let after = trace_stats();
        assert_eq!(after.buffered - before.buffered, 3);
        set_sampling_permille(0);
        let json = export_chrome_json();
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"name\":\"device.read\""));
        assert!(json.contains("\"cat\":\"ss_read\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn stride_sampling_hits_rate() {
        let _g = guard();
        set_sampling_permille(100); // 10%
        let before = trace_stats();
        for _ in 0..1000 {
            let _s = span("r", CostClass::Mm);
        }
        let after = trace_stats();
        set_sampling_permille(0);
        let sampled = (after.roots_sampled - before.roots_sampled) as i64;
        assert!(
            (sampled - 100).abs() <= 1,
            "10% of 1000 roots should trace, got {sampled}"
        );
        let _ = export_chrome_json(); // leave rings empty for other tests
    }

    #[test]
    fn backdated_root_span_duration() {
        let _g = guard();
        set_sampling_permille(1000);
        crate::clock::clear_time_source();
        let start = crate::clock::now_nanos();
        {
            let _s = span_at("backdated", CostClass::Mm, start.saturating_sub(5_000));
        }
        set_sampling_permille(0);
        let json = export_chrome_json();
        assert!(json.contains("\"name\":\"backdated\""));
    }
}
