//! The process-global metrics registry: named counters, gauges, and
//! histograms with lock-free recording and cross-thread snapshot/merge.
//!
//! Registration (name → handle) takes a mutex, but it happens once per
//! metric per call site — call sites cache the returned `Arc` handle.
//! Recording is lock-free:
//!
//! * [`Counter`] is **stripe-sharded**: each thread is hashed onto one of
//!   16 cache-line-padded `AtomicU64` stripes, so concurrent increments
//!   from different shard threads don't bounce one cache line. Reading
//!   sums the stripes — monotone, and exact once writers quiesce.
//! * [`Gauge`] is a single `AtomicI64` (set/add semantics; gauges are
//!   written rarely — occupancy updates, config echoes).
//! * Histograms are the shared [`Histogram`].
//!
//! [`Registry::snapshot`] copies everything into a plain-data
//! [`RegistrySnapshot`] that merges with other snapshots (multi-process
//! aggregation) and renders to a stable JSON object — the payload of the
//! server's `STATS` wire opcode.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const STRIPES: usize = 16;

/// One cache line per stripe so increments from different threads don't
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// A monotone counter with stripe-sharded recording.
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

fn stripe_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(i);
        }
        i
    })
}

impl Counter {
    fn new() -> Self {
        Counter {
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }

    /// Add `n` on this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all stripes. Exact once writers quiesce; monotone always.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A namespace of metrics. Most code uses the process-global
/// [`global()`] registry; tests build private ones.
#[derive(Default)]
pub struct Registry {
    maps: Mutex<Maps>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`. Cache the handle; this path
    /// takes the registration mutex. All registry lock sites recover
    /// from poisoning instead of unwrapping: the maps stay structurally
    /// valid across a panicking registrant, and the metrics plane must
    /// never abort a serving shard.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.maps.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            m.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.maps.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            m.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.maps.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            m.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Copy every metric out. Safe concurrently with recording; each
    /// counter read is a consistent monotone lower bound.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.maps.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry every runtime crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Plain-data copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Fold `other` into `self`: counters add, gauges add (occupancies
    /// from disjoint processes sum), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Render as a stable JSON object (keys sorted; histograms as
    /// summaries plus occupied buckets). This is the `STATS` opcode
    /// payload.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let sum = h.summary();
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(lo, c)| format!("[{lo},{c}]"))
                .collect();
            s.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1},\"max\":{},\"buckets\":[{}]}}",
                sum.count,
                sum.mean_nanos,
                sum.p50_nanos,
                sum.p95_nanos,
                sum.p99_nanos,
                sum.max_nanos,
                buckets.join(",")
            ));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_across_threads() {
        let r = Registry::new();
        let c = r.counter("ops");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
        assert_eq!(r.snapshot().counters["ops"], 80_000);
    }

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("x").add(3);
        r.counter("x").add(4);
        assert_eq!(r.counter("x").value(), 7);
        r.gauge("g").set(-5);
        assert_eq!(r.gauge("g").value(), -5);
        r.histogram("h").record(42);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_merge_adds() {
        let a = Registry::new();
        a.counter("ops").add(10);
        a.gauge("bytes").set(100);
        a.histogram("lat").record(1000);
        let b = Registry::new();
        b.counter("ops").add(5);
        b.counter("only_b").add(1);
        b.gauge("bytes").set(50);
        b.histogram("lat").record(2000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counters["ops"], 15);
        assert_eq!(m.counters["only_b"], 1);
        assert_eq!(m.gauges["bytes"], 150);
        assert_eq!(m.histograms["lat"].count, 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.histogram("h").record(7);
        let j = r.snapshot().to_json();
        // BTreeMap ordering: "a" before "b".
        assert!(j.starts_with("{\"counters\":{\"a\":1,\"b\":2}"));
        assert!(j.contains("\"histograms\":{\"h\":{\"count\":1"));
        assert!(j.contains("\"buckets\":[[4,1]]"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("test.registry.shared").add(2);
        global().counter("test.registry.shared").add(3);
        assert!(global().counter("test.registry.shared").value() >= 5);
    }
}
