//! Unified observability for the workspace: one metrics registry, one
//! histogram implementation, span tracing on the simulator's virtual
//! clock, and cost attribution in the paper's terms.
//!
//! The paper's whole argument is a cost accounting exercise — every
//! operation decomposes into execution cost (MM cycles vs the `R`-times
//! dearer SS path) plus storage rent (§3, Equations 4–5). Before this
//! crate the workspace could only report that per-crate, through seven
//! disconnected ad-hoc `*Stats` structs and two duplicated histogram
//! implementations. `dcs-telemetry` is the shared substrate:
//!
//! * [`registry`] — a process-global registry of named [`Counter`]s
//!   (stripe-sharded, lock-free recording), [`Gauge`]s, and
//!   [`Histogram`]s, with cross-thread [`RegistrySnapshot`] merge and a
//!   stable JSON rendering (scraped live via the server's `STATS`
//!   opcode).
//! * [`hist`] — the one power-of-two histogram, replacing the copies
//!   that used to live in `dcs-server::metrics` and
//!   `dcs-flashsim::stats`. Percentiles interpolate linearly *within*
//!   the winning bucket (and against the observed max in the top
//!   bucket), fixing the upper-bound bias of the old copies.
//! * [`trace`] — structured spans in bounded per-thread ring buffers,
//!   stamped by [`clock::now_nanos`]: the flashsim virtual clock when
//!   one is installed, a monotonic real clock otherwise. A sampling
//!   knob gates whole request trees; export is chrome://tracing /
//!   Perfetto JSON.
//! * [`cost`] — every span carries a [`CostClass`]; the exact (never
//!   sampled) [`CostLedger`] counts MM ops, SS I/Os, and occupancy so
//!   `dcs_costmodel::accounting` can be fed *measured* rather than
//!   modeled inputs.
//! * [`mrc`] — online miss-ratio curves per memory consumer via
//!   SHARDS-style spatially-hashed reuse-distance sampling (exact
//!   ghost-cache mode for tests): the counterfactual the ledger cannot
//!   see — what a bigger or smaller cache *would* do.
//! * [`flight`] — a bounded ring of registry + MRC snapshots captured
//!   on a tick cadence and dumped on anomaly (BUSY spike, p95
//!   regression, reconciliation failure) for postmortems.
//!
//! The crate is a dependency leaf (std only) so every runtime crate —
//! ebr, flashsim, llama, lsm, bwtree, tc, core, server — can record into
//! it without cycles. Building with `--features dcs-telemetry/disabled`
//! compiles spans and cost recording to no-ops; the registry and
//! histograms stay live because they are the measurement instrument the
//! CI overhead gate reads.

pub mod clock;
pub mod cost;
pub mod flight;
pub mod hist;
pub mod mrc;
pub mod registry;
pub mod trace;

pub use clock::{clear_time_source, now_nanos, set_time_source};
pub use cost::{ledger, CostClass, CostLedger, CostTotals};
pub use flight::{flight, FlightConfig, FlightFrame, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot, HistogramSummary, HIST_BUCKETS};
pub use mrc::{mrc, MrcConfig, MrcPoint, MrcProfiler, MrcRegistry, MrcSnapshot};
pub use registry::{global, Counter, Gauge, Registry, RegistrySnapshot};
pub use trace::{
    export_chrome_json, sampling_permille, set_sampling_permille, span, span_at, trace_stats, Span,
    TraceStats,
};
