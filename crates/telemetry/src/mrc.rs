//! Online miss-ratio-curve estimation: SHARDS-style spatially-hashed
//! reuse-distance sampling.
//!
//! The cost model can price what a cache *did* (the ledger's exact MM/SS
//! counts), but memory arbitration needs the counterfactual: what would
//! the miss ratio be at every other cache size? The classic answer is
//! Mattson's reuse-distance histogram — the number of *distinct* entities
//! touched between successive accesses to the same entity. A cache of
//! `c` entities (under LRU-like stack policies) hits exactly the accesses
//! whose reuse distance is `< c`, so one histogram yields the whole
//! miss-ratio curve (MRC).
//!
//! Tracking every access is O(log n) time and O(keys) space on the
//! hottest path in the system, so this module implements SHARDS (Waldspurger
//! et al., FAST'15) spatial sampling: an access to key `k` is tracked iff
//! `mix64(k) < R · 2^64` for sampling rate `R`. Because the filter is a
//! hash of the key — not a coin flip per access — *every* access to a
//! sampled key is seen, which preserves reuse distances among sampled
//! keys; distances measured in the sampled stream relate to true
//! distances as `d ≈ d_sampled / R`. At `R = 0.01` the tracker touches
//! its lock on 1% of accesses and the unsampled 99% pay one hash and one
//! relaxed increment — the ~1% overhead that makes always-on profiling
//! viable. Setting `R = 1` degrades to an exact ghost cache, which is the
//! reference the seeded accuracy tests compare against.
//!
//! Reuse distances are counted with a Fenwick (binary indexed) tree over
//! access positions — O(log window) per sampled access instead of the
//! O(distance) a naive order-statistics walk would cost — and bucketed
//! into power-of-two bins (the [`crate::hist`] convention). A snapshot
//! scales bucket boundaries by `1/R` and emits a monotonically
//! non-increasing miss-ratio curve by cumulative-hit construction.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Power-of-two reuse-distance buckets (bucket `i` holds sampled
/// distances in `[2^i, 2^(i+1))`, with distances 0 and 1 both in bucket
/// 0), matching [`crate::hist::HIST_BUCKETS`].
pub const MRC_BUCKETS: usize = 64;

/// FNV-1a over a byte-string key, the workspace's shared hash
/// convention (frame checksums, the LSS, the TC WAL).
pub fn hash_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the sampling test from raw key
/// values so sequential identifiers (page ids) sample at rate `R` too.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcConfig {
    /// Spatial sampling rate `R` in `(0, 1]`. 1.0 is the exact ghost
    /// cache; the production default is [`MrcConfig::DEFAULT_RATE`].
    pub sample_rate: f64,
    /// Bound on the tracked sampled-key set. When exceeded, the coldest
    /// sampled key is forgotten (its next access reads as a cold miss —
    /// a conservative bias toward longer distances), keeping memory and
    /// per-access work bounded regardless of working-set size.
    pub max_tracked: usize,
}

impl MrcConfig {
    /// Production sampling rate: ~1% of accesses pay the tracker lock.
    pub const DEFAULT_RATE: f64 = 0.01;

    /// Exact ghost-cache mode: every access tracked (tests/reference).
    pub fn exact() -> Self {
        MrcConfig {
            sample_rate: 1.0,
            max_tracked: 1 << 20,
        }
    }
}

impl Default for MrcConfig {
    fn default() -> Self {
        MrcConfig {
            sample_rate: Self::DEFAULT_RATE,
            max_tracked: 1 << 16,
        }
    }
}

/// Fenwick tree over access positions: `1` marks the most recent access
/// position of a live tracked key; a prefix sum counts distinct keys in
/// a position range in O(log capacity).
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    fn add(&mut self, mut pos: usize, delta: i32) {
        while pos < self.tree.len() {
            self.tree[pos] = (self.tree[pos] as i64 + delta as i64) as u32;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// Sum of marks at positions `1..=pos`.
    fn prefix(&self, mut pos: usize) -> u64 {
        let mut sum = 0u64;
        while pos > 0 {
            sum += self.tree[pos] as u64;
            pos -= pos & pos.wrapping_neg();
        }
        sum
    }
}

/// The lock-protected reuse-distance tracker behind a profiler.
struct ReuseTracker {
    /// Position cursor: each sampled access claims the next slot.
    next_pos: usize,
    /// Fenwick capacity (positions `1..=capacity`); when exhausted the
    /// live positions are compacted and the tree rebuilt.
    capacity: usize,
    fen: Fenwick,
    /// Mixed key hash → its most recent access position.
    last_pos: HashMap<u64, usize>,
    /// Position → key, ordered: O(log n) coldest-eviction and compaction.
    by_pos: BTreeMap<usize, u64>,
    /// Live keys tracked (== marks set in the Fenwick tree).
    live: u64,
    /// Sampled reuse-distance histogram, power-of-two buckets.
    hist: [u64; MRC_BUCKETS],
    /// First-touch sampled accesses (infinite reuse distance: a miss at
    /// every cache size).
    cold: u64,
    /// Sampled accesses observed (== `hist` sum + `cold`).
    sampled: u64,
    /// Entity bytes accumulated over sampled accesses.
    byte_sum: u64,
    /// Sampled keys forgotten to the `max_tracked` bound.
    evicted: u64,
}

impl ReuseTracker {
    fn new(max_tracked: usize) -> Self {
        // Twice the tracked set of slack before a rebuild: a rebuild
        // costs O(n log n) and amortizes over max_tracked accesses.
        let capacity = (max_tracked * 2).max(1024);
        ReuseTracker {
            next_pos: 1,
            capacity,
            fen: Fenwick::new(capacity),
            last_pos: HashMap::new(),
            by_pos: BTreeMap::new(),
            live: 0,
            hist: [0; MRC_BUCKETS],
            cold: 0,
            sampled: 0,
            byte_sum: 0,
            evicted: 0,
        }
    }

    fn bucket_of(distance: u64) -> usize {
        ((64 - distance.max(1).leading_zeros() - 1) as usize).min(MRC_BUCKETS - 1)
    }

    fn observe(&mut self, key: u64, bytes: u64, max_tracked: usize) {
        self.sampled += 1;
        self.byte_sum += bytes;
        if self.next_pos > self.capacity {
            self.compact();
        }
        let new_pos = self.next_pos;
        self.next_pos += 1;
        match self.last_pos.entry(key) {
            Entry::Occupied(mut e) => {
                let prev = *e.get();
                // Distinct keys whose latest access falls strictly after
                // `prev`: each is one mark at a position > prev.
                let distance = self.live - self.fen.prefix(prev);
                self.hist[Self::bucket_of(distance)] += 1;
                self.fen.add(prev, -1);
                self.fen.add(new_pos, 1);
                self.by_pos.remove(&prev);
                self.by_pos.insert(new_pos, key);
                *e.get_mut() = new_pos;
            }
            Entry::Vacant(e) => {
                self.cold += 1;
                e.insert(new_pos);
                self.fen.add(new_pos, 1);
                self.by_pos.insert(new_pos, key);
                self.live += 1;
            }
        }
        if self.last_pos.len() > max_tracked {
            self.evict_coldest();
        }
    }

    /// Forget the least-recently-accessed tracked key.
    fn evict_coldest(&mut self) {
        if let Some((pos, key)) = self.by_pos.pop_first() {
            self.last_pos.remove(&key);
            self.fen.add(pos, -1);
            self.live -= 1;
            self.evicted += 1;
        }
    }

    /// Reassign live keys to compact positions and rebuild the Fenwick
    /// tree; relative order (and therefore every future distance) is
    /// preserved.
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.by_pos);
        self.fen = Fenwick::new(self.capacity);
        self.next_pos = 1;
        for (_, key) in old {
            let pos = self.next_pos;
            self.next_pos += 1;
            self.last_pos.insert(key, pos);
            self.by_pos.insert(pos, key);
            self.fen.add(pos, 1);
        }
    }
}

/// One point of a miss-ratio curve: the miss ratio a cache of
/// `entities` entities (≈ `bytes` bytes) would achieve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Cache size in entities (records / pages), scaled by `1/R`.
    pub entities: f64,
    /// Cache size in bytes (`entities × mean_entity_bytes`).
    pub bytes: f64,
    /// Estimated miss ratio at that size, in `[0, 1]`.
    pub miss_ratio: f64,
}

/// A consistent snapshot of one consumer's profiler.
#[derive(Debug, Clone, PartialEq)]
pub struct MrcSnapshot {
    /// Consumer name (e.g. `mrc.record_cache`).
    pub consumer: String,
    /// Total accesses observed (sampled or not).
    pub accesses: u64,
    /// Accesses that passed the spatial filter.
    pub sampled: u64,
    /// The configured sampling rate `R`.
    pub sample_rate: f64,
    /// Sampled keys dropped to the `max_tracked` bound (0 means the
    /// curve saw the full sampled working set).
    pub evictions: u64,
    /// Mean entity size over sampled accesses, bytes.
    pub mean_entity_bytes: f64,
    /// The curve, ascending in size, non-increasing in miss ratio.
    pub points: Vec<MrcPoint>,
}

impl MrcSnapshot {
    /// Step-function evaluation: the estimated miss ratio of a cache
    /// holding `entities` entities (1.0 below the first point — an
    /// empty cache misses everything).
    pub fn miss_ratio_at(&self, entities: f64) -> f64 {
        let mut ratio = 1.0;
        for p in &self.points {
            if p.entities <= entities {
                ratio = p.miss_ratio;
            } else {
                break;
            }
        }
        ratio
    }

    /// Mean absolute error against `other`, evaluated at `other`'s point
    /// sizes at or above this curve's resolution floor — the
    /// accuracy-gate metric (SHARDS vs exact ghost). Sampling at rate
    /// `R` cannot resolve cache sizes below `1/R` entities (one sampled
    /// entity stands for `1/R` real ones), so sizes under the first
    /// point are excluded rather than scored as a spurious 1.0.
    pub fn mean_absolute_error(&self, other: &MrcSnapshot) -> f64 {
        let floor = match self.points.first() {
            Some(p) => p.entities,
            None => return if other.points.is_empty() { 0.0 } else { 1.0 },
        };
        let pts: Vec<&MrcPoint> = other
            .points
            .iter()
            .filter(|p| p.entities >= floor)
            .collect();
        if pts.is_empty() {
            return 0.0;
        }
        let sum: f64 = pts
            .iter()
            .map(|p| (self.miss_ratio_at(p.entities) - p.miss_ratio).abs())
            .sum();
        sum / pts.len() as f64
    }

    /// Render as a JSON object (hand-rolled; the workspace's serde shim
    /// is marker-traits only).
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"entities\": {:.1}, \"bytes\": {:.1}, \"miss_ratio\": {:.6}}}",
                    p.entities, p.bytes, p.miss_ratio
                )
            })
            .collect();
        format!(
            "{{\"consumer\": \"{}\", \"accesses\": {}, \"sampled\": {}, \"sample_rate\": {}, \"evictions\": {}, \"mean_entity_bytes\": {:.1}, \"points\": [{}]}}",
            self.consumer,
            self.accesses,
            self.sampled,
            self.sample_rate,
            self.evictions,
            self.mean_entity_bytes,
            points.join(", ")
        )
    }
}

/// A per-consumer miss-ratio-curve profiler.
///
/// `record` is the hot-path entry: one mix and one relaxed increment for
/// unsampled accesses, a short lock-protected Fenwick update for the
/// sampled `R` fraction. Building with the crate's `disabled` feature
/// compiles `record` to a no-op (the CI overhead gate's baseline).
pub struct MrcProfiler {
    name: String,
    config: MrcConfig,
    /// `R · 2^64`, the spatial filter threshold.
    threshold: u64,
    total: AtomicU64,
    inner: Mutex<ReuseTracker>,
}

impl MrcProfiler {
    /// A standalone profiler (tests, figures). Production consumers go
    /// through [`mrc`]`.profiler(name)` so snapshots reach STATS.
    pub fn new(name: &str, config: MrcConfig) -> Self {
        let rate = config.sample_rate.clamp(1e-9, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        MrcProfiler {
            name: name.to_string(),
            config: MrcConfig {
                sample_rate: rate,
                ..config
            },
            threshold,
            total: AtomicU64::new(0),
            inner: Mutex::new(ReuseTracker::new(config.max_tracked)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ReuseTracker> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one access to the entity identified by `key` (a pre-mixed
    /// or raw 64-bit identity; sequential ids are fine) of `bytes` size.
    #[cfg(not(feature = "disabled"))]
    pub fn record(&self, key: u64, bytes: u64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mixed = mix64(key);
        if mixed >= self.threshold && self.threshold != u64::MAX {
            return;
        }
        self.lock().observe(mixed, bytes, self.config.max_tracked);
    }

    /// Compiled-out recording: the overhead-gate baseline.
    #[cfg(feature = "disabled")]
    pub fn record(&self, key: u64, bytes: u64) {
        let _ = (key, bytes);
    }

    /// Record one access keyed by a byte-string (FNV-hashed).
    pub fn record_key(&self, key: &[u8], bytes: u64) {
        self.record(hash_key(key), bytes);
    }

    /// Consumer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured sampling rate `R`.
    pub fn sample_rate(&self) -> f64 {
        self.config.sample_rate
    }

    /// A consistent snapshot: curve points at power-of-two sampled
    /// boundaries scaled by `1/R`, miss ratio non-increasing by
    /// cumulative-hit construction.
    pub fn snapshot(&self) -> MrcSnapshot {
        let t = self.lock();
        let total = self.total.load(Ordering::Relaxed);
        let scale = 1.0 / self.config.sample_rate;
        let mean_bytes = if t.sampled > 0 {
            t.byte_sum as f64 / t.sampled as f64
        } else {
            0.0
        };
        let mut points = Vec::new();
        if t.sampled > 0 {
            // SHARDS-adj (Waldspurger et al. §3.4): spatial sampling's
            // per-key luck makes the realized sampled-access count drift
            // from the expectation `N·R` (undersampled hot keys depress
            // short-distance reuses and bias every miss ratio high, and
            // vice versa). Credit the shortfall/excess to the smallest
            // distance bucket and normalize by the expectation. Exact
            // mode (`R = 1`) has `sampled == accesses`, so `adj` is 0.
            let adj = total as f64 * self.config.sample_rate - t.sampled as f64;
            let denom = t.sampled as f64 + adj;
            let top = t
                .hist
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| i + 1)
                .min(MRC_BUCKETS - 1);
            let mut hits = adj;
            for (i, &count) in t.hist.iter().enumerate().take(top + 1) {
                hits += count as f64;
                // Bucket i holds sampled distances < 2^(i+1): a cache of
                // 2^(i+1) sampled entities captures all of them.
                let entities = (1u64 << (i + 1).min(63)) as f64 * scale;
                points.push(MrcPoint {
                    entities,
                    bytes: entities * mean_bytes,
                    miss_ratio: (1.0 - hits / denom.max(1.0)).clamp(0.0, 1.0),
                });
            }
        }
        MrcSnapshot {
            consumer: self.name.clone(),
            accesses: total,
            sampled: t.sampled,
            sample_rate: self.config.sample_rate,
            evictions: t.evicted,
            mean_entity_bytes: mean_bytes,
            points,
        }
    }
}

impl std::fmt::Debug for MrcProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrcProfiler")
            .field("name", &self.name)
            .field("sample_rate", &self.config.sample_rate)
            .field("accesses", &self.total.load(Ordering::Relaxed))
            .finish()
    }
}

/// The process-global set of per-consumer profilers, scraped by the
/// server's STATS `mrc` sub-block and the loadgen `--mrc` report.
pub struct MrcRegistry {
    profilers: Mutex<BTreeMap<String, Arc<MrcProfiler>>>,
}

impl MrcRegistry {
    /// The profiler registered under `name`, created with the default
    /// config on first use.
    pub fn profiler(&self, name: &str) -> Arc<MrcProfiler> {
        self.profiler_with(name, MrcConfig::default())
    }

    /// The profiler registered under `name`, created with `config` on
    /// first use (an existing profiler keeps its original config).
    pub fn profiler_with(&self, name: &str, config: MrcConfig) -> Arc<MrcProfiler> {
        let mut map = self.profilers.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(MrcProfiler::new(name, config)))
            .clone()
    }

    /// Snapshots of every registered profiler, name-ordered.
    pub fn snapshots(&self) -> Vec<MrcSnapshot> {
        let map = self.profilers.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(|p| p.snapshot()).collect()
    }

    /// All snapshots as one JSON object: `{"consumers": [...]}`.
    pub fn to_json(&self) -> String {
        let consumers: Vec<String> = self.snapshots().iter().map(|s| s.to_json()).collect();
        format!("{{\"consumers\": [{}]}}", consumers.join(", "))
    }
}

/// The process-global MRC registry.
pub fn mrc() -> &'static MrcRegistry {
    static GLOBAL: OnceLock<MrcRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| MrcRegistry {
        profilers: Mutex::new(BTreeMap::new()),
    })
}

#[cfg(all(test, not(feature = "disabled")))]
mod tests {
    use super::*;

    /// xorshift64* — a tiny seeded generator for deterministic traces.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Zipfian over `n` keys with parameter `theta`, by inverse CDF over
    /// precomputed cumulative weights (fine at test scale).
    struct Zipf {
        cdf: Vec<f64>,
    }
    impl Zipf {
        fn new(n: usize, theta: f64) -> Self {
            let mut cdf = Vec::with_capacity(n);
            let mut sum = 0.0;
            for i in 1..=n {
                sum += 1.0 / (i as f64).powf(theta);
                cdf.push(sum);
            }
            for c in &mut cdf {
                *c /= sum;
            }
            Zipf { cdf }
        }
        fn draw(&self, rng: &mut Rng) -> u64 {
            let u = rng.f64();
            self.cdf.partition_point(|&c| c < u) as u64
        }
    }

    fn exact_profiler(name: &str) -> MrcProfiler {
        MrcProfiler::new(name, MrcConfig::exact())
    }

    #[test]
    fn repeated_single_key_hits_at_any_size() {
        let p = exact_profiler("t.single");
        for _ in 0..100 {
            p.record(7, 64);
        }
        let s = p.snapshot();
        assert_eq!(s.accesses, 100);
        assert_eq!(s.sampled, 100);
        // 99 reuses at distance 0, 1 cold miss: a 2-entity cache hits
        // everything but the first touch.
        assert!((s.miss_ratio_at(2.0) - 0.01).abs() < 1e-9, "{s:?}");
        assert!((s.mean_entity_bytes - 64.0).abs() < 1e-9);
    }

    #[test]
    fn cyclic_scan_misses_below_working_set() {
        // Round-robin over 64 keys: every reuse distance is exactly 63,
        // so a cache of 64+ hits every reuse and anything smaller that
        // straddles the bucket boundary below misses everything.
        let p = exact_profiler("t.cycle");
        for i in 0..640u64 {
            p.record(i % 64, 100);
        }
        let s = p.snapshot();
        // 64 cold + 576 reuses at distance 63 (bucket 5, boundary 64).
        assert!((s.miss_ratio_at(64.0) - 64.0 / 640.0).abs() < 1e-9, "{s:?}");
        assert!((s.miss_ratio_at(32.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone_non_increasing() {
        let mut rng = Rng(0xDECAF);
        let p = exact_profiler("t.monotone");
        for _ in 0..20_000 {
            p.record(rng.below(1000), 50 + rng.below(100));
        }
        let s = p.snapshot();
        assert!(!s.points.is_empty());
        for w in s.points.windows(2) {
            assert!(w[0].entities < w[1].entities);
            assert!(
                w[0].miss_ratio >= w[1].miss_ratio - 1e-12,
                "curve not monotone: {w:?}"
            );
        }
    }

    #[test]
    fn eviction_bound_holds_and_is_reported() {
        let p = MrcProfiler::new(
            "t.bounded",
            MrcConfig {
                sample_rate: 1.0,
                max_tracked: 16,
            },
        );
        let mut rng = Rng(3);
        for _ in 0..5_000 {
            p.record(rng.below(1000), 10);
        }
        let s = p.snapshot();
        assert!(s.evictions > 0, "bound never engaged");
        assert_eq!(s.sampled, 5_000);
    }

    #[test]
    fn compaction_preserves_distances() {
        // max_tracked 8 → capacity ~1024 positions; 10k accesses force
        // several compactions. The alternating 2-key pattern must still
        // read distance 1 throughout.
        let p = MrcProfiler::new(
            "t.compact",
            MrcConfig {
                sample_rate: 1.0,
                max_tracked: 8,
            },
        );
        for i in 0..10_000u64 {
            p.record(i % 2, 10);
        }
        let s = p.snapshot();
        // 2 cold, 9 998 reuses at distance 1: a 2-entity cache hits all.
        assert!((s.miss_ratio_at(2.0) - 2.0 / 10_000.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn shards_tracks_exact_ghost_on_zipfian_within_mae_gate() {
        // The acceptance gate: SHARDS at R = 1/8 within 0.02 MAE of the
        // exact ghost cache on a seeded Zipfian trace. R a power of two
        // aligns the scaled bucket boundaries with the exact curve's, so
        // the residual is pure sampling noise.
        let zipf = Zipf::new(4096, 0.9);
        let exact = exact_profiler("t.zipf.exact");
        let shards = MrcProfiler::new(
            "t.zipf.shards",
            MrcConfig {
                sample_rate: 0.125,
                max_tracked: 1 << 16,
            },
        );
        let mut rng = Rng(0xC0FFEE);
        for _ in 0..200_000 {
            let k = zipf.draw(&mut rng);
            exact.record(k, 100);
            shards.record(k, 100);
        }
        let (es, ss) = (exact.snapshot(), shards.snapshot());
        let mae = ss.mean_absolute_error(&es);
        assert!(mae <= 0.02, "zipfian MAE {mae} exceeds 0.02\n{es:?}\n{ss:?}");
        // The sampler really sampled: ~1/8 of the stream.
        let frac = ss.sampled as f64 / ss.accesses as f64;
        assert!((frac - 0.125).abs() < 0.02, "sampled fraction {frac}");
    }

    #[test]
    fn shards_tracks_exact_ghost_on_uniform_within_mae_gate() {
        // The uniform curve is steep everywhere, so it amplifies the
        // binomial noise on the realized key-sampling rate (relative
        // sigma = sqrt((1-R)/(K*R))). Two regime choices keep that
        // noise at the ~1% level the estimator is specified for:
        // K = 20000 keys (not a power of two — the working-set cliff
        // sits *inside* an octave rather than flipping buckets on
        // noise) and R = 0.25 (sigma ~ 1.2% on ~5000 sampled keys).
        let exact = exact_profiler("t.uni.exact");
        let shards = MrcProfiler::new(
            "t.uni.shards",
            MrcConfig {
                sample_rate: 0.25,
                max_tracked: 1 << 16,
            },
        );
        let mut rng = Rng(0xBEEF);
        for _ in 0..240_000 {
            let k = rng.below(20_000);
            exact.record(k, 100);
            shards.record(k, 100);
        }
        let (es, ss) = (exact.snapshot(), shards.snapshot());
        let mae = ss.mean_absolute_error(&es);
        assert!(mae <= 0.02, "uniform MAE {mae} exceeds 0.02\n{es:?}\n{ss:?}");
    }

    #[test]
    fn global_registry_dedupes_by_name_and_renders_json() {
        let a = mrc().profiler("mrc.test_json");
        let b = mrc().profiler("mrc.test_json");
        assert!(Arc::ptr_eq(&a, &b));
        a.record_key(b"k1", 32);
        a.record_key(b"k1", 32);
        let json = mrc().to_json();
        assert!(json.starts_with("{\"consumers\": ["));
        assert!(json.contains("\"consumer\": \"mrc.test_json\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_is_internally_consistent() {
        let p = exact_profiler("t.consistent");
        let mut rng = Rng(11);
        for _ in 0..1_000 {
            p.record(rng.below(64), 20);
        }
        let s = p.snapshot();
        assert_eq!(s.accesses, 1_000);
        assert_eq!(s.sampled, 1_000);
        // Final point: every reuse hits, only cold misses remain.
        let last = s.points.last().unwrap();
        assert!(last.miss_ratio >= 64.0 / 1000.0 - 1e-9);
    }
}
