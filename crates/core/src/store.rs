//! The caching-store facade.

use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig, PageId, TreeError, TreeStats, TryGetAsync};
use dcs_costmodel::{breakeven, HardwareCatalog};
use dcs_flashsim::{DeviceConfig, DeviceStats, FlashDevice, VirtualClock};
use dcs_llama::{
    CacheManager, CacheManagerConfig, CacheStats, Codec, EvictionPolicy, FetchSubmit,
    LogStructuredStore, LssConfig, LssStats,
};
use dcs_tc::{TcConfig, TransactionalStore};
use dcs_telemetry::MrcProfiler;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the store decides what stays in DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Classic LRU against the memory budget.
    Lru,
    /// The paper's rule: evict pages whose access interval exceeds the
    /// breakeven `Ti` computed from a hardware catalog (Equation 6), with
    /// LRU as the budget backstop.
    CostModel,
}

/// Builder for a [`CachingStore`].
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    /// Hardware catalog the cost-model policy derives `Ti` from.
    pub hardware: HardwareCatalog,
    /// Simulated device parameters.
    pub device: DeviceConfig,
    /// Bw-tree parameters.
    pub tree: BwTreeConfig,
    /// Log-structured store parameters (including compression codec).
    pub lss: LssConfig,
    /// In-memory footprint target in bytes.
    pub memory_budget: usize,
    /// Eviction policy.
    pub policy: Policy,
    /// Keep record deltas in memory when evicting (§6.3).
    pub keep_record_cache: bool,
    /// Run a cache-management sweep every this many operations
    /// (0 disables automatic sweeps).
    pub sweep_every_ops: u64,
}

impl StoreBuilder {
    /// Defaults modeled on the paper's setup: its hardware catalog, its
    /// SSD, cost-model eviction.
    pub fn paper() -> Self {
        StoreBuilder {
            hardware: HardwareCatalog::paper(),
            device: DeviceConfig::paper_ssd(),
            tree: BwTreeConfig::default(),
            lss: LssConfig::default(),
            memory_budget: 256 << 20,
            policy: Policy::CostModel,
            keep_record_cache: true,
            sweep_every_ops: 4096,
        }
    }

    /// A small configuration for tests and examples.
    pub fn small_test() -> Self {
        StoreBuilder {
            hardware: HardwareCatalog::paper(),
            device: DeviceConfig {
                segment_count: 1024,
                advance_clock_on_io: false,
                ..DeviceConfig::small_test()
            },
            tree: BwTreeConfig::small_pages(),
            lss: LssConfig::default(),
            memory_budget: 8 << 20,
            policy: Policy::Lru,
            keep_record_cache: false,
            sweep_every_ops: 1024,
        }
    }

    /// Use the cost-model eviction policy (breakeven `Ti` from the
    /// catalog).
    pub fn cost_model_policy(mut self) -> Self {
        self.policy = Policy::CostModel;
        self
    }

    /// Set the memory budget.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Compress page payloads on flash (§7.2).
    pub fn compressed(mut self) -> Self {
        self.lss.codec = Codec::Lzss;
        self
    }

    /// Construct the store.
    pub fn build(self) -> CachingStore {
        let clock = VirtualClock::new();
        self.build_with_clock(clock)
    }

    /// Construct sharing an external clock (workload drivers).
    pub fn build_with_clock(self, clock: VirtualClock) -> CachingStore {
        let device = Arc::new(FlashDevice::with_clock(self.device.clone(), clock.clone()));
        self.assemble(device, clock)
    }

    fn assemble(self, device: Arc<FlashDevice>, clock: VirtualClock) -> CachingStore {
        let lss = Arc::new(LogStructuredStore::new(device.clone(), self.lss.clone()));
        let tree = Arc::new(BwTree::with_store(self.tree.clone(), lss.clone()));
        self.assemble_recovered(device, clock, lss, tree)
    }

    fn assemble_recovered(
        self,
        device: Arc<FlashDevice>,
        clock: VirtualClock,
        lss: Arc<LogStructuredStore>,
        tree: Arc<BwTree>,
    ) -> CachingStore {
        let policy = match self.policy {
            Policy::Lru => EvictionPolicy::Lru,
            Policy::CostModel => EvictionPolicy::CostModel {
                ti_nanos: (breakeven::ti_seconds(&self.hardware) * 1e9) as u64,
            },
        };
        let cache = CacheManager::new(
            CacheManagerConfig {
                memory_budget: self.memory_budget,
                policy,
                keep_record_cache: self.keep_record_cache,
            },
            clock.clone(),
        );
        CachingStore {
            clock,
            device,
            lss,
            tree,
            cache,
            sweep_every_ops: self.sweep_every_ops,
            ops_since_sweep: AtomicU64::new(0),
            hardware: self.hardware,
            misses: Mutex::new(MissTable::default()),
            reported_dram: AtomicU64::new(0),
            reported_flash: AtomicU64::new(0),
            mrc: dcs_telemetry::mrc().profiler("mrc.record_cache"),
        }
    }
}

/// Outcome of a non-blocking [`CachingStore::get_submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum SubmittedGet {
    /// Served from memory — a cache hit, or a definitive miss that needed
    /// no I/O.
    Ready(Option<Bytes>),
    /// A flash fetch is in flight; the token identifies this miss in later
    /// [`CachingStore::poll_gets`] completions.
    Pending(u64),
}

/// A completed miss, reaped by [`CachingStore::poll_gets`].
#[derive(Debug)]
pub struct FinishedGet {
    /// The token [`CachingStore::get_submit`] returned.
    pub token: u64,
    /// The read's final outcome.
    pub result: Result<Option<Bytes>, TreeError>,
}

/// One in-flight miss: enough context to install the fetched image and
/// re-probe the tree when the device completes.
struct PendingMiss {
    key: Vec<u8>,
    pid: PageId,
    token: u64,
    miss_token: u64,
}

/// All in-flight misses, keyed by the LSS fetch id currently serving each.
/// A multi-part chain whose continuation resubmits keeps its `miss_token`
/// across fetch ids, so the caller's handle never changes.
#[derive(Default)]
struct MissTable {
    next_token: u64,
    by_fetch: HashMap<u64, PendingMiss>,
}

/// Aggregated counters across all layers.
#[derive(Debug, Clone, Copy)]
pub struct StoreStats {
    /// Bw-tree operation counters.
    pub tree: TreeStats,
    /// Log-structured store counters.
    pub lss: LssStats,
    /// Device counters.
    pub device: DeviceStats,
    /// Cache-manager counters.
    pub cache: CacheStats,
    /// Current in-memory footprint in bytes.
    pub footprint_bytes: usize,
}

impl StoreStats {
    /// The paper's `F`: fraction of operations that touched secondary
    /// storage.
    pub fn ss_fraction(&self) -> f64 {
        self.tree.ss_fraction()
    }
}

/// The assembled data caching store. See the crate docs.
pub struct CachingStore {
    clock: VirtualClock,
    device: Arc<FlashDevice>,
    lss: Arc<LogStructuredStore>,
    tree: Arc<BwTree>,
    cache: CacheManager,
    sweep_every_ops: u64,
    ops_since_sweep: AtomicU64,
    hardware: HardwareCatalog,
    misses: Mutex<MissTable>,
    /// Occupancy this store last contributed to the telemetry gauges.
    /// Deltas are reported so several shard stores sum correctly.
    reported_dram: AtomicU64,
    reported_flash: AtomicU64,
    /// Miss-ratio-curve profiler over the record-level access stream
    /// (shared process-wide under `mrc.record_cache` so shard stores
    /// profile one merged stream).
    mrc: Arc<MrcProfiler>,
}

impl CachingStore {
    /// Point lookup (panics on store failure; see [`CachingStore::try_get`]).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.try_get(key).expect("storage failure")
    }

    /// Point lookup.
    pub fn try_get(&self, key: &[u8]) -> Result<Option<Bytes>, TreeError> {
        let r = self.tree.try_get(key);
        if let Ok(found) = &r {
            self.mrc_record(key, found.as_ref().map_or(0, |v| v.len()));
        }
        self.tick();
        r
    }

    /// Feed one record access into the MRC profiler. `val_len` is 0 when
    /// the record's value is not in hand (miss still in flight, absent
    /// key), so the byte axis slightly understates record size in
    /// proportion to the miss ratio — acceptable for a sampled estimate.
    fn mrc_record(&self, key: &[u8], val_len: usize) {
        self.mrc.record_key(key, (key.len() + val_len) as u64);
    }

    /// Begin a non-blocking point lookup. Cache hits (and misses resolved
    /// from the LSS write buffer) return [`SubmittedGet::Ready`]
    /// immediately; a read that needs flash submits the fetch to the
    /// device queue pair and returns [`SubmittedGet::Pending`] — the
    /// caller keeps doing other work and reaps the result later with
    /// [`CachingStore::poll_gets`].
    pub fn get_submit(&self, key: &[u8]) -> Result<SubmittedGet, TreeError> {
        let r = self.get_submit_inner(key);
        if let Ok(submitted) = &r {
            let val_len = match submitted {
                SubmittedGet::Ready(Some(v)) => v.len(),
                _ => 0,
            };
            self.mrc_record(key, val_len);
        }
        self.tick();
        r
    }

    fn get_submit_inner(&self, key: &[u8]) -> Result<SubmittedGet, TreeError> {
        let mut probe = self.tree.try_get_async(key);
        loop {
            match probe {
                TryGetAsync::Hit(v) => return Ok(SubmittedGet::Ready(v)),
                TryGetAsync::NeedFetch { pid, token } => {
                    match self.lss.fetch_submit(token).map_err(TreeError::Store)? {
                        FetchSubmit::Ready(img) => {
                            // A raced install loses harmlessly: the winner's
                            // image is equivalent, and the re-probe below
                            // sees whatever won.
                            let _ = self.tree.install_fetched(pid, token, img);
                        }
                        FetchSubmit::Pending(fetch_id) => {
                            let mut t = self.misses.lock();
                            let miss_token = t.next_token;
                            t.next_token += 1;
                            t.by_fetch.insert(
                                fetch_id,
                                PendingMiss {
                                    key: key.to_vec(),
                                    pid,
                                    token,
                                    miss_token,
                                },
                            );
                            return Ok(SubmittedGet::Pending(miss_token));
                        }
                    }
                }
            }
            probe = self.tree.resume_get(key);
        }
    }

    /// Reap every miss whose device I/O has completed: install the fetched
    /// page image, re-probe the tree, and push a [`FinishedGet`] per
    /// resolved read. A multi-part flash chain that needs another hop stays
    /// pending under the same token. Non-blocking; returns reads resolved.
    pub fn poll_gets(&self, out: &mut Vec<FinishedGet>) -> usize {
        let mut fetched = Vec::new();
        self.lss.poll_fetches(&mut fetched);
        let mut resolved = 0;
        for c in fetched {
            let Some(miss) = self.misses.lock().by_fetch.remove(&c.fetch_id) else {
                // Not a miss of ours (e.g. a caller driving the LSS queue
                // directly); nothing to resolve.
                continue;
            };
            let outcome = match c.result {
                Ok(img) => {
                    let _ = self.tree.install_fetched(miss.pid, miss.token, img);
                    self.finish_miss(&miss)
                }
                // The fetch failed — but a concurrent writer may have
                // superseded the token (rollup, GC) and installed the page
                // behind us. A resume that hits still answers the read.
                Err(e) => match self.tree.resume_get(&miss.key) {
                    TryGetAsync::Hit(v) => Some(Ok(v)),
                    TryGetAsync::NeedFetch { .. } => Some(Err(TreeError::Store(e))),
                },
            };
            // No tick() here: the operation already ticked at submit, and
            // the sweep cadence must not depend on which path served it.
            if let Some(result) = outcome {
                out.push(FinishedGet {
                    token: miss.miss_token,
                    result,
                });
                resolved += 1;
            }
        }
        resolved
    }

    /// Resume a miss after its fetch completed. `Some(result)` resolves the
    /// read; `None` means a further fetch went pending (chain continuation
    /// or a token superseded mid-install) under the same miss token.
    fn finish_miss(&self, miss: &PendingMiss) -> Option<Result<Option<Bytes>, TreeError>> {
        loop {
            match self.tree.resume_get(&miss.key) {
                TryGetAsync::Hit(v) => return Some(Ok(v)),
                TryGetAsync::NeedFetch { pid, token } => match self.lss.fetch_submit(token) {
                    Err(e) => return Some(Err(TreeError::Store(e))),
                    Ok(FetchSubmit::Ready(img)) => {
                        let _ = self.tree.install_fetched(pid, token, img);
                    }
                    Ok(FetchSubmit::Pending(fetch_id)) => {
                        self.misses.lock().by_fetch.insert(
                            fetch_id,
                            PendingMiss {
                                key: miss.key.clone(),
                                pid,
                                token,
                                miss_token: miss.miss_token,
                            },
                        );
                        return None;
                    }
                },
            }
        }
    }

    /// Misses currently in flight on the device.
    pub fn gets_inflight(&self) -> usize {
        self.misses.lock().by_fetch.len()
    }

    /// Block (spinning out any wall-clock device latency) until every
    /// in-flight miss resolves into `out`.
    pub fn drain_gets(&self, out: &mut Vec<FinishedGet>) {
        while self.gets_inflight() > 0 {
            if self.poll_gets(out) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Upsert (a blind update at the data component).
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.tree.put(key, value);
        self.tick();
    }

    /// An update the caller asserts is blind (§6.2): never fetches the
    /// target page even if evicted.
    pub fn blind_update(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.tree.blind_update(key, value);
        self.tick();
    }

    /// Delete.
    pub fn delete(&self, key: impl Into<Bytes>) {
        self.tree.delete(key);
        self.tick();
    }

    /// Range scan `[start, end)`.
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        let out = self
            .tree
            .range(start, end)
            .map(|r| r.expect("scan failure"))
            .collect();
        self.tick();
        out
    }

    fn tick(&self) {
        if self.sweep_every_ops == 0 {
            return;
        }
        let n = self.ops_since_sweep.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.sweep_every_ops) {
            let _ = self.sweep();
        }
    }

    /// Advance the shared virtual clock (workload drivers model access
    /// intervals with this).
    pub fn advance_time(&self, nanos: u64) {
        self.clock.advance(nanos);
        self.tree.set_vtime(self.clock.now());
    }

    /// Run one cache-management sweep now. Returns pages evicted.
    pub fn sweep(&self) -> Result<usize, TreeError> {
        let evicted = self.cache.sweep(&self.tree)?;
        self.report_occupancy();
        Ok(evicted)
    }

    /// Refresh the telemetry occupancy gauges (the rent terms of the cost
    /// attribution) with this store's current footprints, as a delta
    /// against what it last reported so shard stores sum process-wide.
    fn report_occupancy(&self) {
        let ledger = dcs_telemetry::ledger();
        let dram = self.tree.footprint_bytes() as u64;
        let prev = self.reported_dram.swap(dram, Ordering::Relaxed);
        ledger.add_dram_bytes(dram as i64 - prev as i64);
        let flash = self.lss.live_bytes() as u64;
        let prev = self.reported_flash.swap(flash, Ordering::Relaxed);
        ledger.add_flash_bytes(flash as i64 - prev as i64);
    }

    /// Flush all dirty pages and issue a durability barrier: a
    /// crash-consistent checkpoint.
    pub fn checkpoint(&self) -> Result<(), TreeError> {
        self.cache.checkpoint(&self.tree)?;
        self.lss.sync().map_err(TreeError::Store)?;
        Ok(())
    }

    /// Run log-structured-store garbage collection until clean.
    pub fn gc(&self) -> Result<usize, TreeError> {
        self.lss.gc_all().map_err(TreeError::Store)
    }

    /// Simulate a crash (everything not checkpointed is lost) and recover
    /// a fresh store from the device.
    pub fn crash_and_recover(self, builder: StoreBuilder) -> Result<CachingStore, TreeError> {
        let device = self.device.clone();
        drop(self);
        device.crash();
        CachingStore::recover(device, builder)
    }

    /// Recover a store from an existing device's log. The tree's mapping
    /// table is reconstructed at its pre-crash PIDs; record data faults in
    /// lazily as it is accessed.
    pub fn recover(
        device: Arc<FlashDevice>,
        builder: StoreBuilder,
    ) -> Result<CachingStore, TreeError> {
        let recovered =
            dcs_llama::recover(device.clone(), builder.lss.clone(), builder.tree.clone())
                .map_err(TreeError::Store)?;
        let clock = VirtualClock::new();
        Ok(builder.assemble_recovered(device, clock, recovered.store, Arc::new(recovered.tree)))
    }

    /// Attach a Deuteronomy-style transaction component over this store's
    /// data component.
    pub fn transactional(&self) -> TransactionalStore {
        TransactionalStore::new(self.tree.clone(), TcConfig::default())
    }

    /// The underlying Bw-tree.
    pub fn tree(&self) -> &Arc<BwTree> {
        &self.tree
    }

    /// The log-structured store.
    pub fn lss(&self) -> &Arc<LogStructuredStore> {
        &self.lss
    }

    /// The device.
    pub fn device(&self) -> &Arc<FlashDevice> {
        &self.device
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The hardware catalog this store's policy was derived from.
    pub fn hardware(&self) -> &HardwareCatalog {
        &self.hardware
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            tree: self.tree.stats(),
            lss: self.lss.stats(),
            device: self.device.stats(),
            cache: self.cache.stats(),
            footprint_bytes: self.tree.footprint_bytes(),
        }
    }

    /// Number of records (full scan; diagnostics).
    pub fn count_entries(&self) -> usize {
        self.tree.count_entries()
    }
}

impl std::fmt::Debug for CachingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingStore")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}-{}", "x".repeat(32))),
        )
    }

    #[test]
    fn basic_crud() {
        let s = StoreBuilder::small_test().build();
        s.put(Bytes::from("a"), Bytes::from("1"));
        assert_eq!(s.get(b"a"), Some(Bytes::from("1")));
        s.delete(Bytes::from("a"));
        assert_eq!(s.get(b"a"), None);
    }

    #[test]
    fn scan_in_order() {
        let s = StoreBuilder::small_test().build();
        for i in (0..100u32).rev() {
            let (k, v) = kv(i);
            s.put(k, v);
        }
        let all = s.scan(b"", None);
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn auto_sweep_enforces_budget() {
        let mut b = StoreBuilder::small_test();
        b.memory_budget = 64 << 10;
        b.sweep_every_ops = 256;
        let s = b.build();
        for i in 0..5000u32 {
            let (k, v) = kv(i);
            s.put(k, v);
        }
        let stats = s.stats();
        assert!(stats.cache.pages_evicted > 0, "no evictions happened");
        // All data still readable (faulting from flash as needed).
        for i in (0..5000u32).step_by(151) {
            let (k, v) = kv(i);
            assert_eq!(s.get(&k), Some(v), "key {i}");
        }
        assert!(s.stats().tree.ss_ops > 0, "reads should have faulted");
    }

    #[test]
    fn async_get_roundtrip_under_eviction() {
        let mut b = StoreBuilder::small_test();
        b.memory_budget = 64 << 10;
        b.sweep_every_ops = 256;
        let s = b.build();
        for i in 0..5000u32 {
            let (k, v) = kv(i);
            s.put(k, v);
        }
        assert!(s.stats().cache.pages_evicted > 0, "no evictions happened");
        // Submit a window of reads (many will need flash), then drain.
        let mut pending = HashMap::new();
        let mut misses = 0;
        for i in (0..5000u32).step_by(97) {
            let (k, v) = kv(i);
            match s.get_submit(&k).unwrap() {
                SubmittedGet::Ready(got) => assert_eq!(got, Some(v), "key {i} (ready)"),
                SubmittedGet::Pending(token) => {
                    misses += 1;
                    pending.insert(token, (i, v));
                }
            }
        }
        assert!(misses > 0, "evicted keys should go pending");
        let mut out = Vec::new();
        s.drain_gets(&mut out);
        assert_eq!(out.len(), pending.len());
        for f in out {
            let (i, v) = &pending[&f.token];
            assert_eq!(f.result.unwrap(), Some(v.clone()), "key {i}");
        }
        assert_eq!(s.gets_inflight(), 0);
        assert!(s.stats().tree.ss_ops > 0, "misses should count as ss ops");
    }

    #[test]
    fn async_get_counts_match_sync_counts() {
        // Two identical stores, same accesses: one via the blocking path,
        // one via submit+drain. The per-layer counters must agree.
        let build = || {
            let mut b = StoreBuilder::small_test();
            b.memory_budget = 64 << 10;
            b.sweep_every_ops = 256;
            b.build()
        };
        let (sync_s, async_s) = (build(), build());
        for s in [&sync_s, &async_s] {
            for i in 0..4000u32 {
                let (k, v) = kv(i);
                s.put(k, v);
            }
        }
        let probe: Vec<u32> = (0..4000u32).step_by(113).collect();
        for &i in &probe {
            assert_eq!(sync_s.get(&kv(i).0), Some(kv(i).1));
        }
        let mut out = Vec::new();
        for &i in &probe {
            if let SubmittedGet::Pending(_) = async_s.get_submit(&kv(i).0).unwrap() {
                async_s.drain_gets(&mut out);
            }
        }
        let (a, b) = (sync_s.stats().tree, async_s.stats().tree);
        assert_eq!(a.gets, b.gets, "gets diverge");
        assert_eq!(a.ss_ops, b.ss_ops, "ss_ops diverge");
        assert_eq!(a.mm_ops, b.mm_ops, "mm_ops diverge");
        assert_eq!(a.fetches, b.fetches, "fetches diverge");
    }

    #[test]
    fn cost_model_policy_uses_catalog_ti() {
        let mut b = StoreBuilder::small_test().cost_model_policy();
        b.memory_budget = usize::MAX;
        b.sweep_every_ops = 0;
        let s = b.build();
        for i in 0..500u32 {
            let (k, v) = kv(i);
            s.put(k, v);
        }
        // Advance past the breakeven interval; everything is now cold.
        let ti = breakeven::ti_seconds(s.hardware());
        s.advance_time((ti * 2.0 * 1e9) as u64);
        let evicted = s.sweep().unwrap();
        assert!(evicted > 0, "cold pages should leave DRAM at Ti");
    }

    #[test]
    fn checkpoint_recover_roundtrip() {
        let builder = StoreBuilder::small_test();
        let s = builder.clone().build();
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            s.put(k, v);
        }
        s.delete(kv(7).0);
        s.checkpoint().unwrap();
        s.put(kv(9999).0, kv(9999).1); // lost by the crash
        let recovered = s.crash_and_recover(builder).unwrap();
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            if i == 7 {
                assert_eq!(recovered.get(&k), None);
            } else {
                assert_eq!(recovered.get(&k), Some(v), "key {i}");
            }
        }
        assert_eq!(recovered.get(&kv(9999).0), None, "unsynced write survived");
    }

    #[test]
    fn compressed_store_saves_flash_bytes() {
        let plain = StoreBuilder::small_test().build();
        let packed = StoreBuilder::small_test().compressed().build();
        for s in [&plain, &packed] {
            for i in 0..2000u32 {
                let (k, v) = kv(i);
                s.put(k, v);
            }
            s.checkpoint().unwrap();
        }
        let (p, c) = (plain.stats().lss, packed.stats().lss);
        assert_eq!(p.stored_bytes, p.payload_bytes, "plain stores verbatim");
        assert!(
            c.stored_bytes < c.payload_bytes / 2,
            "compression should shrink structured pages: {} vs {}",
            c.stored_bytes,
            c.payload_bytes
        );
        // And reads still work after eviction.
        for p in packed.tree().pages() {
            if p.is_leaf {
                let _ = packed.tree().evict_page(p.pid);
            }
        }
        assert_eq!(packed.get(&kv(5).0), Some(kv(5).1));
    }

    #[test]
    fn transactional_layer_works_over_store() {
        let s = StoreBuilder::small_test().build();
        let tc = s.transactional();
        let mut t = tc.begin();
        t.write(Bytes::from("txk"), Bytes::from("txv"));
        tc.commit(t).unwrap();
        // Visible both transactionally and through the plain store API.
        assert_eq!(s.get(b"txk"), Some(Bytes::from("txv")));
    }

    #[test]
    fn gc_reclaims_after_churn() {
        let mut b = StoreBuilder::small_test();
        b.memory_budget = 32 << 10;
        b.sweep_every_ops = 128;
        let s = b.build();
        for round in 0..30u32 {
            for i in 0..200u32 {
                s.put(kv(i).0, Bytes::from(format!("r{round}-{}", "y".repeat(64))));
            }
            s.checkpoint().unwrap();
        }
        let collected = s.gc().unwrap();
        assert!(collected > 0, "churn should leave collectable segments");
        for i in (0..200u32).step_by(13) {
            assert!(s.get(&kv(i).0).is_some(), "key {i} lost after GC");
        }
    }
}

#[cfg(test)]
mod rollup_tests {
    use super::*;

    /// Heavy overwrite churn must not let flash utilization decay without
    /// bound: the LSS chain-length cap rolls incremental chains into full
    /// images, making old parts dead, and GC reclaims them.
    #[test]
    fn churn_stays_collectable() {
        let mut b = StoreBuilder::small_test();
        b.memory_budget = 32 << 10;
        b.sweep_every_ops = 128;
        let s = b.build();
        for round in 0..30u32 {
            for i in 0..200u32 {
                s.put(
                    Bytes::from(format!("key{i:06}")),
                    Bytes::from(format!("r{round}-{}", "y".repeat(64))),
                );
            }
            s.checkpoint().unwrap();
        }
        assert!(s.lss().stats().rollups > 0, "chain cap never triggered");
        assert!(
            s.lss().utilization() < 0.5,
            "churned store should have dead space: {}",
            s.lss().utilization()
        );
        let collected = s.gc().unwrap();
        assert!(collected > 0);
        assert!(
            s.lss().utilization() > 0.5,
            "GC should restore utilization: {}",
            s.lss().utilization()
        );
    }
}
