//! [`dcs_workload::KvStore`] adapters for every store in the workspace, so
//! one workload driver can exercise them all. The comparator stores are
//! wrapped in newtypes (`KvStore` and the stores live in different
//! crates).

use crate::store::{CachingStore, StoreBuilder};
use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_lsm::{LsmConfig, LsmTree};
use dcs_masstree::MassTree;
use dcs_workload::{KvStore, StoreFailure};
use std::sync::Arc;

/// The serveable store families, by name. This is the single place that
/// knows how to construct a workload-ready instance of each store, so the
/// serving layer, benches, and tests all build backends the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's cost-governed caching store (`dcs-core`).
    Caching,
    /// The latch-free Bw-tree comparator.
    BwTree,
    /// The Masstree comparator.
    MassTree,
    /// The LSM comparator over the flash simulator.
    Lsm,
}

impl BackendKind {
    /// All kinds, for enumeration in benches and CI matrices.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Caching,
        BackendKind::BwTree,
        BackendKind::MassTree,
        BackendKind::Lsm,
    ];

    /// Parse a CLI name (`caching`, `bwtree`, `masstree`, `lsm`).
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.to_ascii_lowercase().as_str() {
            "caching" => Some(BackendKind::Caching),
            "bwtree" => Some(BackendKind::BwTree),
            "masstree" => Some(BackendKind::MassTree),
            "lsm" => Some(BackendKind::Lsm),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Caching => "caching",
            BackendKind::BwTree => "bwtree",
            BackendKind::MassTree => "masstree",
            BackendKind::Lsm => "lsm",
        }
    }

    /// Build one workload-ready store instance (test-scale configuration).
    pub fn build(&self) -> Arc<dyn KvStore + Send + Sync> {
        match self {
            BackendKind::Caching => Arc::new(StoreBuilder::small_test().build()),
            BackendKind::BwTree => Arc::new(BwTreeBackend(BwTree::in_memory(
                BwTreeConfig::small_pages(),
            ))),
            BackendKind::MassTree => Arc::new(MassTreeBackend(MassTree::new())),
            BackendKind::Lsm => Arc::new(LsmBackend(LsmTree::new(
                Arc::new(dcs_flashsim::FlashDevice::new(dcs_flashsim::DeviceConfig {
                    segment_count: 1024,
                    ..dcs_flashsim::DeviceConfig::small_test()
                })),
                LsmConfig::default(),
            ))),
        }
    }

    /// Build `n` independent instances — one per shard of a shared-nothing
    /// serving layer (each owns a disjoint key range, so they never share
    /// state).
    pub fn build_shards(&self, n: usize) -> Vec<Arc<dyn KvStore + Send + Sync>> {
        (0..n).map(|_| self.build()).collect()
    }
}

/// Workload adapter for a [`BwTree`].
pub struct BwTreeBackend(pub BwTree);

/// Workload adapter for a [`MassTree`].
pub struct MassTreeBackend(pub MassTree);

/// Workload adapter for an [`LsmTree`].
pub struct LsmBackend(pub LsmTree);

impl KvStore for CachingStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        // Count without materializing: scans only report how many records
        // they produced, so collecting the key/value pairs first was pure
        // allocation overhead.
        self.tree()
            .range(start, None)
            .take(limit)
            .try_fold(0, |n, r| {
                r.map(|_| n + 1).map_err(|e| StoreFailure(e.to_string()))
            })
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.blind_update(key, value);
        Ok(())
    }
}

impl KvStore for BwTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        self.0.range(start, None).take(limit).try_fold(0, |n, r| {
            r.map(|_| n + 1).map_err(|e| StoreFailure(e.to_string()))
        })
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.blind_update(key, value);
        Ok(())
    }
}

impl KvStore for MassTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        Ok(self.0.get(key).map(|b| b.to_vec()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.insert(Bytes::from(key), Bytes::from(value));
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.remove(&key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self.0.scan_limited(start, None, limit).len())
    }
}

impl KvStore for LsmBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0
            .put(key, value)
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key).map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .scan_limited(start, limit)
            .map_err(|e| StoreFailure(e.to_string()))?
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreBuilder;
    use dcs_bwtree::BwTreeConfig;
    use dcs_flashsim::{DeviceConfig, FlashDevice};
    use dcs_lsm::LsmConfig;
    use dcs_workload::{Runner, WorkloadSpec};
    use std::sync::Arc;

    fn assert_runs<S: KvStore>(store: &S, workload: char) {
        let spec = WorkloadSpec::ycsb(workload, 300, 32, 7);
        let runner = Runner::new(spec);
        runner.load(store).unwrap();
        let counts = runner.run(store, 1_500).unwrap();
        assert_eq!(counts.total(), 1_500, "workload {workload}");
        // Zipfian reads over loaded keys should overwhelmingly hit.
        if counts.reads > 0 {
            assert!(
                counts.read_hits as f64 / counts.reads as f64 > 0.95,
                "workload {workload}: {} hits of {}",
                counts.read_hits,
                counts.reads
            );
        }
    }

    #[test]
    fn all_backends_run_all_ycsb_workloads() {
        for w in ['a', 'b', 'c', 'd', 'e', 'f'] {
            let caching = StoreBuilder::small_test().build();
            assert_runs(&caching, w);

            let bw = BwTreeBackend(BwTree::in_memory(BwTreeConfig::small_pages()));
            assert_runs(&bw, w);

            let mt = MassTreeBackend(MassTree::new());
            assert_runs(&mt, w);

            let lsm = LsmBackend(LsmTree::new(
                Arc::new(FlashDevice::new(DeviceConfig {
                    segment_count: 1024,
                    ..DeviceConfig::small_test()
                })),
                LsmConfig::default(),
            ));
            assert_runs(&lsm, w);
        }
    }
}
