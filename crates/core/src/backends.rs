//! [`dcs_workload::KvStore`] adapters for every store in the workspace, so
//! one workload driver can exercise them all. The comparator stores are
//! wrapped in newtypes (`KvStore` and the stores live in different
//! crates).

use crate::store::CachingStore;
use bytes::Bytes;
use dcs_bwtree::BwTree;
use dcs_lsm::LsmTree;
use dcs_masstree::MassTree;
use dcs_workload::{KvStore, StoreFailure};

/// Workload adapter for a [`BwTree`].
pub struct BwTreeBackend(pub BwTree);

/// Workload adapter for a [`MassTree`].
pub struct MassTreeBackend(pub MassTree);

/// Workload adapter for an [`LsmTree`].
pub struct LsmBackend(pub LsmTree);

impl KvStore for CachingStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .tree()
            .range(start, None)
            .take(limit)
            .map(|r| r.map_err(|e| StoreFailure(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?
            .len())
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.blind_update(key, value);
        Ok(())
    }
}

impl KvStore for BwTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .range(start, None)
            .take(limit)
            .map(|r| r.map_err(|e| StoreFailure(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?
            .len())
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.blind_update(key, value);
        Ok(())
    }
}

impl KvStore for MassTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        Ok(self.0.get(key).map(|b| b.to_vec()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.insert(Bytes::from(key), Bytes::from(value));
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.remove(&key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self.0.scan_limited(start, None, limit).len())
    }
}

impl KvStore for LsmBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0
            .put(key, value)
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key).map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .scan_limited(start, limit)
            .map_err(|e| StoreFailure(e.to_string()))?
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreBuilder;
    use dcs_bwtree::BwTreeConfig;
    use dcs_flashsim::{DeviceConfig, FlashDevice};
    use dcs_lsm::LsmConfig;
    use dcs_workload::{Runner, WorkloadSpec};
    use std::sync::Arc;

    fn assert_runs<S: KvStore>(store: &S, workload: char) {
        let spec = WorkloadSpec::ycsb(workload, 300, 32, 7);
        let runner = Runner::new(spec);
        runner.load(store).unwrap();
        let counts = runner.run(store, 1_500).unwrap();
        assert_eq!(counts.total(), 1_500, "workload {workload}");
        // Zipfian reads over loaded keys should overwhelmingly hit.
        if counts.reads > 0 {
            assert!(
                counts.read_hits as f64 / counts.reads as f64 > 0.95,
                "workload {workload}: {} hits of {}",
                counts.read_hits,
                counts.reads
            );
        }
    }

    #[test]
    fn all_backends_run_all_ycsb_workloads() {
        for w in ['a', 'b', 'c', 'd', 'e', 'f'] {
            let caching = StoreBuilder::small_test().build();
            assert_runs(&caching, w);

            let bw = BwTreeBackend(BwTree::in_memory(BwTreeConfig::small_pages()));
            assert_runs(&bw, w);

            let mt = MassTreeBackend(MassTree::new());
            assert_runs(&mt, w);

            let lsm = LsmBackend(LsmTree::new(
                Arc::new(FlashDevice::new(DeviceConfig {
                    segment_count: 1024,
                    ..DeviceConfig::small_test()
                })),
                LsmConfig::default(),
            ));
            assert_runs(&lsm, w);
        }
    }
}
