//! [`dcs_workload::KvStore`] adapters for every store in the workspace, so
//! one workload driver can exercise them all. The comparator stores are
//! wrapped in newtypes (`KvStore` and the stores live in different
//! crates).

use crate::store::{CachingStore, StoreBuilder, SubmittedGet};
use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_lsm::{LsmConfig, LsmGet, LsmTree};
use dcs_masstree::MassTree;
use dcs_workload::{AsyncGet, AsyncKvStore, CompletedGet, KvStore, StoreFailure};
use std::sync::Arc;

/// The serveable store families, by name. This is the single place that
/// knows how to construct a workload-ready instance of each store, so the
/// serving layer, benches, and tests all build backends the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's cost-governed caching store (`dcs-core`).
    Caching,
    /// The latch-free Bw-tree comparator.
    BwTree,
    /// The Masstree comparator.
    MassTree,
    /// The LSM comparator over the flash simulator.
    Lsm,
}

impl BackendKind {
    /// All kinds, for enumeration in benches and CI matrices.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Caching,
        BackendKind::BwTree,
        BackendKind::MassTree,
        BackendKind::Lsm,
    ];

    /// Parse a CLI name (`caching`, `bwtree`, `masstree`, `lsm`).
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.to_ascii_lowercase().as_str() {
            "caching" => Some(BackendKind::Caching),
            "bwtree" => Some(BackendKind::BwTree),
            "masstree" => Some(BackendKind::MassTree),
            "lsm" => Some(BackendKind::Lsm),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Caching => "caching",
            BackendKind::BwTree => "bwtree",
            BackendKind::MassTree => "masstree",
            BackendKind::Lsm => "lsm",
        }
    }

    /// Build one workload-ready store instance (test-scale configuration).
    pub fn build(&self) -> Arc<dyn KvStore + Send + Sync> {
        self.build_with(BackendOpts::default()).kv
    }

    /// Build one instance with explicit options, returning both the
    /// blocking handle and (for the flash-backed stores) the asynchronous
    /// submit/poll handle.
    pub fn build_with(&self, opts: BackendOpts) -> BuiltBackend {
        let device_config = |mut c: dcs_flashsim::DeviceConfig| {
            c.segment_count = 1024;
            c.wall_read_latency = opts.wall_read_latency;
            c
        };
        match self {
            BackendKind::Caching => {
                let mut b = StoreBuilder::small_test();
                b.device = device_config(b.device);
                if let Some(budget) = opts.memory_budget {
                    b.memory_budget = budget;
                }
                let store = Arc::new(b.build());
                BuiltBackend {
                    kv: store.clone(),
                    device: Some(store.device().clone()),
                    async_kv: Some(store),
                }
            }
            BackendKind::BwTree => {
                let t = Arc::new(BwTreeBackend(
                    BwTree::in_memory(BwTreeConfig::small_pages()),
                ));
                BuiltBackend {
                    kv: t.clone(),
                    async_kv: Some(t),
                    device: None,
                }
            }
            BackendKind::MassTree => {
                let t = Arc::new(MassTreeBackend(MassTree::new()));
                BuiltBackend {
                    kv: t.clone(),
                    async_kv: Some(t),
                    device: None,
                }
            }
            BackendKind::Lsm => {
                let t = Arc::new(LsmBackend(LsmTree::new(
                    Arc::new(dcs_flashsim::FlashDevice::new(device_config(
                        dcs_flashsim::DeviceConfig::small_test(),
                    ))),
                    LsmConfig::default(),
                )));
                BuiltBackend {
                    kv: t.clone(),
                    device: Some(t.0.device().clone()),
                    async_kv: Some(t),
                }
            }
        }
    }

    /// Build `n` independent instances — one per shard of a shared-nothing
    /// serving layer (each owns a disjoint key range, so they never share
    /// state).
    pub fn build_shards(&self, n: usize) -> Vec<Arc<dyn KvStore + Send + Sync>> {
        (0..n).map(|_| self.build()).collect()
    }

    /// [`BackendKind::build_shards`] with explicit options and async
    /// handles.
    pub fn build_shards_with(&self, n: usize, opts: BackendOpts) -> Vec<BuiltBackend> {
        (0..n).map(|_| self.build_with(opts)).collect()
    }
}

/// Construction options for [`BackendKind::build_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BackendOpts {
    /// Override the caching store's in-memory budget (bytes). `None` keeps
    /// the test-scale default.
    pub memory_budget: Option<usize>,
    /// Wall-clock nanoseconds each device read takes to become visible
    /// (injected device latency; virtual-clock accounting is unchanged).
    pub wall_read_latency: u64,
}

/// A constructed backend: the blocking [`KvStore`] handle plus, where the
/// store supports it, the non-blocking [`AsyncKvStore`] handle over the
/// same instance. Two fields because Rust 1.75 cannot upcast
/// `Arc<dyn AsyncKvStore>` to `Arc<dyn KvStore>`.
pub struct BuiltBackend {
    /// Blocking operations (always available).
    pub kv: Arc<dyn KvStore + Send + Sync>,
    /// Submit/poll point reads, when the backend implements them.
    pub async_kv: Option<Arc<dyn AsyncKvStore + Send + Sync>>,
    /// The simulated flash device under the store, when there is one —
    /// lets harnesses read [`dcs_flashsim::DeviceStats`] (achieved I/O
    /// depth, submit charges) without knowing the concrete store type.
    pub device: Option<Arc<dcs_flashsim::FlashDevice>>,
}

/// Workload adapter for a [`BwTree`].
pub struct BwTreeBackend(pub BwTree);

/// Workload adapter for a [`MassTree`].
pub struct MassTreeBackend(pub MassTree);

/// Workload adapter for an [`LsmTree`].
pub struct LsmBackend(pub LsmTree);

impl KvStore for CachingStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        // Count without materializing: scans only report how many records
        // they produced, so collecting the key/value pairs first was pure
        // allocation overhead.
        self.tree()
            .range(start, None)
            .take(limit)
            .try_fold(0, |n, r| {
                r.map(|_| n + 1).map_err(|e| StoreFailure(e.to_string()))
            })
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.blind_update(key, value);
        Ok(())
    }

    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        self.tree()
            .range(start, end)
            .take(limit)
            .try_fold(0, |n, r| match r {
                Ok((k, v)) => {
                    visit(&k, &v);
                    Ok(n + 1)
                }
                Err(e) => Err(StoreFailure(e.to_string())),
            })
    }
}

impl KvStore for BwTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .try_get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.put(key, value);
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        self.0.range(start, None).take(limit).try_fold(0, |n, r| {
            r.map(|_| n + 1).map_err(|e| StoreFailure(e.to_string()))
        })
    }

    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.blind_update(key, value);
        Ok(())
    }

    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        self.0
            .range(start, end)
            .take(limit)
            .try_fold(0, |n, r| match r {
                Ok((k, v)) => {
                    visit(&k, &v);
                    Ok(n + 1)
                }
                Err(e) => Err(StoreFailure(e.to_string())),
            })
    }
}

impl KvStore for MassTreeBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        Ok(self.0.get(key).map(|b| b.to_vec()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.insert(Bytes::from(key), Bytes::from(value));
        Ok(())
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.remove(&key);
        Ok(())
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self.0.scan_limited(start, None, limit).len())
    }

    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        let pairs = self.0.scan_limited(start, end, limit);
        for (k, v) in &pairs {
            visit(k, v);
        }
        Ok(pairs.len())
    }
}

impl KvStore for LsmBackend {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        self.0
            .get(key)
            .map(|v| v.map(|b| b.to_vec()))
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0
            .put(key, value)
            .map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.delete(key).map_err(|e| StoreFailure(e.to_string()))
    }

    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .scan_limited(start, limit)
            .map_err(|e| StoreFailure(e.to_string()))?
            .len())
    }

    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        // The LSM scan has no end bound; entries are sorted, so cutting at
        // `end` after the fact yields the same set.
        let pairs = self
            .0
            .scan_limited(start, limit)
            .map_err(|e| StoreFailure(e.to_string()))?;
        let mut n = 0;
        for (k, v) in &pairs {
            if end.is_some_and(|e| k.as_ref() >= e) {
                break;
            }
            visit(k, v);
            n += 1;
        }
        Ok(n)
    }
}

fn vecify(
    v: Result<Option<Bytes>, impl std::fmt::Display>,
) -> Result<Option<Vec<u8>>, StoreFailure> {
    v.map(|o| o.map(|b| b.to_vec()))
        .map_err(|e| StoreFailure(e.to_string()))
}

impl AsyncKvStore for CachingStore {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        match self
            .get_submit(key)
            .map_err(|e| StoreFailure(e.to_string()))?
        {
            SubmittedGet::Ready(v) => Ok(AsyncGet::Ready(v.map(|b| b.to_vec()))),
            SubmittedGet::Pending(token) => Ok(AsyncGet::Pending(token)),
        }
    }

    fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize {
        let mut finished = Vec::new();
        let n = self.poll_gets(&mut finished);
        out.extend(finished.into_iter().map(|g| CompletedGet {
            token: g.token,
            result: vecify(g.result),
        }));
        n
    }

    fn kv_inflight(&self) -> usize {
        self.gets_inflight()
    }
}

impl AsyncKvStore for LsmBackend {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        match self
            .0
            .get_submit(key)
            .map_err(|e| StoreFailure(e.to_string()))?
        {
            LsmGet::Ready(v) => Ok(AsyncGet::Ready(v.map(|b| b.to_vec()))),
            LsmGet::Pending(token) => Ok(AsyncGet::Pending(token)),
        }
    }

    fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize {
        let mut finished = Vec::new();
        let n = self.0.poll_gets(&mut finished);
        out.extend(finished.into_iter().map(|g| CompletedGet {
            token: g.token,
            result: vecify(g.result),
        }));
        n
    }

    fn kv_inflight(&self) -> usize {
        self.0.gets_inflight()
    }
}

// The in-memory comparators never touch the device on a read: every get is
// `Ready`, so the async surface is the blocking one.
impl AsyncKvStore for BwTreeBackend {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        Ok(AsyncGet::Ready(self.kv_get(key)?))
    }

    fn kv_poll(&self, _out: &mut Vec<CompletedGet>) -> usize {
        0
    }

    fn kv_inflight(&self) -> usize {
        0
    }
}

impl AsyncKvStore for MassTreeBackend {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        Ok(AsyncGet::Ready(self.kv_get(key)?))
    }

    fn kv_poll(&self, _out: &mut Vec<CompletedGet>) -> usize {
        0
    }

    fn kv_inflight(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreBuilder;
    use dcs_bwtree::BwTreeConfig;
    use dcs_flashsim::{DeviceConfig, FlashDevice};
    use dcs_lsm::LsmConfig;
    use dcs_workload::{Runner, WorkloadSpec};
    use std::sync::Arc;

    fn assert_runs<S: KvStore>(store: &S, workload: char) {
        let spec = WorkloadSpec::ycsb(workload, 300, 32, 7);
        let runner = Runner::new(spec);
        runner.load(store).unwrap();
        let counts = runner.run(store, 1_500).unwrap();
        assert_eq!(counts.total(), 1_500, "workload {workload}");
        // Zipfian reads over loaded keys should overwhelmingly hit.
        if counts.reads > 0 {
            assert!(
                counts.read_hits as f64 / counts.reads as f64 > 0.95,
                "workload {workload}: {} hits of {}",
                counts.read_hits,
                counts.reads
            );
        }
    }

    #[test]
    fn async_handles_agree_with_blocking_path() {
        for kind in BackendKind::ALL {
            let built = kind.build_with(BackendOpts::default());
            let a = built.async_kv.as_ref().expect("every backend has async");
            for i in 0..500u32 {
                built
                    .kv
                    .kv_put(
                        format!("k{i:05}").into_bytes(),
                        format!("v{i}").into_bytes(),
                    )
                    .unwrap();
            }
            let mut out = Vec::new();
            for i in (0..600u32).step_by(7) {
                let key = format!("k{i:05}").into_bytes();
                let expected = built.kv.kv_get(&key).unwrap();
                match a.kv_get_submit(&key).unwrap() {
                    dcs_workload::AsyncGet::Ready(v) => {
                        assert_eq!(v, expected, "{}: key {i}", kind.name())
                    }
                    dcs_workload::AsyncGet::Pending(token) => {
                        out.clear();
                        while a.kv_inflight() > 0 {
                            a.kv_poll(&mut out);
                        }
                        let f = out.iter().find(|f| f.token == token).expect("completed");
                        assert_eq!(
                            f.result.clone().unwrap(),
                            expected,
                            "{}: key {i}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kv_range_enumerates_bounded_ascending_on_every_backend() {
        for kind in BackendKind::ALL {
            let built = kind.build_with(BackendOpts::default());
            for i in 0..50u32 {
                built
                    .kv
                    .kv_put(
                        format!("k{i:03}").into_bytes(),
                        format!("v{i}").into_bytes(),
                    )
                    .unwrap();
            }
            let mut got = Vec::new();
            let n = built
                .kv
                .kv_range(b"k010", Some(b"k020"), usize::MAX, &mut |k, v| {
                    got.push((k.to_vec(), v.to_vec()))
                })
                .unwrap();
            assert_eq!(n, 10, "{}", kind.name());
            assert_eq!(got.first().unwrap().0, b"k010".to_vec(), "{}", kind.name());
            assert_eq!(got.last().unwrap().0, b"k019".to_vec(), "{}", kind.name());
            assert_eq!(got.first().unwrap().1, b"v10".to_vec(), "{}", kind.name());
            assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "{}: ascending, no duplicates",
                kind.name()
            );
            let m = built.kv.kv_range(b"", None, 7, &mut |_, _| {}).unwrap();
            assert_eq!(m, 7, "{}: limit respected", kind.name());
        }
    }

    #[test]
    fn all_backends_run_all_ycsb_workloads() {
        for w in ['a', 'b', 'c', 'd', 'e', 'f'] {
            let caching = StoreBuilder::small_test().build();
            assert_runs(&caching, w);

            let bw = BwTreeBackend(BwTree::in_memory(BwTreeConfig::small_pages()));
            assert_runs(&bw, w);

            let mt = MassTreeBackend(MassTree::new());
            assert_runs(&mt, w);

            let lsm = LsmBackend(LsmTree::new(
                Arc::new(FlashDevice::new(DeviceConfig {
                    segment_count: 1024,
                    ..DeviceConfig::small_test()
                })),
                LsmConfig::default(),
            ));
            assert_runs(&lsm, w);
        }
    }
}
