//! `dcs-core`: a data caching store that succeeds the way the paper says
//! data caching systems succeed.
//!
//! This crate assembles the workspace's substrates into the system the
//! paper analyzes — and wires the paper's *cost model* into the system's
//! *cache policy*:
//!
//! ```text
//!             ┌───────────────────────────────┐
//!             │          CachingStore         │
//!             │  get/put/delete/blind/scan    │
//!             ├──────────────┬────────────────┤
//!             │   Bw-tree    │  CacheManager  │  ← evicts at the cost-model
//!             │ (dcs-bwtree) │  (dcs-llama)   │     breakeven Ti (Eq. 6)
//!             ├──────────────┴────────────────┤
//!             │   LLAMA log-structured store  │  ← large-buffer writes,
//!             │          (dcs-llama)          │     delta flush, GC, LZSS
//!             ├───────────────────────────────┤
//!             │     simulated flash SSD       │  ← IOPS queue + real CPU
//!             │        (dcs-flashsim)         │     I/O-path cost (R)
//!             └───────────────────────────────┘
//! ```
//!
//! The store's distinguishing behaviours, each traceable to a paper
//! section:
//!
//! * **Adaptivity** (§3): data moves between DRAM and flash per access
//!   pattern; the [`StoreBuilder::cost_model_policy`] derives the eviction
//!   interval directly from a [`dcs_costmodel::HardwareCatalog`].
//! * **Blind updates** (§6.2) and **record caching** (§6.3) via the
//!   Bw-tree's delta chains.
//! * **Log-structured writes** (§6.1) with optional **compression**
//!   (§7.2, `Codec::Lzss`).
//! * **Transactions**: [`CachingStore::transactional`] attaches a
//!   Deuteronomy-style TC (`dcs-tc`) over the same data component.
//! * **Crash/recover**: [`CachingStore::checkpoint`] +
//!   [`CachingStore::recover`].
//!
//! ```
//! use dcs_core::StoreBuilder;
//!
//! let store = StoreBuilder::small_test().build();
//! store.put(b"hello".to_vec(), b"world".to_vec());
//! assert_eq!(store.get(b"hello").as_deref(), Some(&b"world"[..]));
//! ```

mod backends;
mod store;

pub use backends::{
    BackendKind, BackendOpts, BuiltBackend, BwTreeBackend, LsmBackend, MassTreeBackend,
};
pub use store::{CachingStore, FinishedGet, Policy, StoreBuilder, StoreStats, SubmittedGet};

// Re-export the component crates so downstream users need one dependency.
pub use dcs_bwtree as bwtree;
pub use dcs_costmodel as costmodel;
pub use dcs_flashsim as flashsim;
pub use dcs_llama as llama;
pub use dcs_lsm as lsm;
pub use dcs_masstree as masstree;
pub use dcs_tc as tc;
pub use dcs_workload as workload;
