//! Property test: the transaction component against a sequential model.
//!
//! Random interleavings of overlapping transactions (begin / read / write /
//! delete / commit / abort) plus cache maintenance. The model applies a
//! transaction's effects atomically at commit and predicts conflicts
//! exactly (first-committer-wins on write-write overlap), so every read,
//! every commit outcome, and the final state are checked.

use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_tc::{CommitError, TcConfig, Transaction, TransactionalStore};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

const SLOTS: usize = 4;
const KEYS: u8 = 24;

#[derive(Debug, Clone)]
enum Op {
    Begin(u8),
    Read(u8, u8),
    Write(u8, u8, u8),
    Delete(u8, u8),
    Commit(u8),
    Abort(u8),
    EvictAll,
    Vacuum,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(|s| Op::Begin(s % SLOTS as u8)),
        5 => (any::<u8>(), any::<u8>()).prop_map(|(s, k)| Op::Read(s % SLOTS as u8, k % KEYS)),
        5 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(s, k, v)| Op::Write(s % SLOTS as u8, k % KEYS, v)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(s, k)| Op::Delete(s % SLOTS as u8, k % KEYS)),
        3 => any::<u8>().prop_map(|s| Op::Commit(s % SLOTS as u8)),
        1 => any::<u8>().prop_map(|s| Op::Abort(s % SLOTS as u8)),
        1 => Just(Op::EvictAll),
        1 => Just(Op::Vacuum),
    ]
}

fn key(k: u8) -> Bytes {
    Bytes::from(format!("row{k:03}"))
}

/// The model's open transaction.
#[derive(Debug, Clone, Default)]
struct ModelTxn {
    /// Committed state at begin time.
    snapshot: BTreeMap<u8, u8>,
    /// Commit count at begin (for conflict prediction).
    commits_at_begin: u64,
    /// Buffered writes: value or deletion.
    writes: BTreeMap<u8, Option<u8>>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tc_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let dc = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
        let tc = TransactionalStore::new(dc, TcConfig::default());

        // Committed model state, plus per-key first/last commit indexes.
        let mut committed: BTreeMap<u8, u8> = BTreeMap::new();
        let mut first_commit_of_key: HashMap<u8, u64> = HashMap::new();
        let mut last_commit_of_key: HashMap<u8, u64> = HashMap::new();
        let mut commit_counter: u64 = 0;

        let mut real: Vec<Option<Transaction>> = (0..SLOTS).map(|_| None).collect();
        let mut model: Vec<Option<ModelTxn>> = (0..SLOTS).map(|_| None).collect();

        for op in ops {
            match op {
                Op::Begin(s) => {
                    let s = s as usize;
                    // Replacing an open transaction abandons it (abort).
                    real[s] = Some(tc.begin());
                    model[s] = Some(ModelTxn {
                        snapshot: committed.clone(),
                        commits_at_begin: commit_counter,
                        writes: BTreeMap::new(),
                    });
                }
                Op::Read(s, k) => {
                    let s = s as usize;
                    let (Some(txn), Some(m)) = (&real[s], &model[s]) else { continue };
                    let got = tc.read(txn, &key(k)).expect("read");
                    // Bounded-history snapshot semantics (see dcs-tc docs):
                    // a snapshot sees the committed value as of its begin if
                    // the key had been committed by then; a key whose whole
                    // history postdates the snapshot reads as its current
                    // committed state (single-version DC fall-through).
                    let expect = match m.writes.get(&k) {
                        Some(Some(v)) => Some(*v),
                        Some(None) => None,
                        None => {
                            let touched_by_begin = first_commit_of_key
                                .get(&k)
                                .map(|&c| c <= m.commits_at_begin)
                                .unwrap_or(false);
                            if touched_by_begin {
                                m.snapshot.get(&k).copied()
                            } else {
                                committed.get(&k).copied()
                            }
                        }
                    };
                    prop_assert_eq!(
                        got.map(|b| b[0]),
                        expect,
                        "slot {} read of key {}",
                        s,
                        k
                    );
                }
                Op::Write(s, k, v) => {
                    let s = s as usize;
                    let (Some(txn), Some(m)) = (&mut real[s], &mut model[s]) else { continue };
                    txn.write(key(k), Bytes::from(vec![v]));
                    m.writes.insert(k, Some(v));
                }
                Op::Delete(s, k) => {
                    let s = s as usize;
                    let (Some(txn), Some(m)) = (&mut real[s], &mut model[s]) else { continue };
                    txn.delete(key(k));
                    m.writes.insert(k, None);
                }
                Op::Commit(s) => {
                    let s = s as usize;
                    let (Some(txn), Some(m)) = (real[s].take(), model[s].take()) else { continue };
                    // Predicted conflict: some written key committed after
                    // this transaction began.
                    let conflict = m.writes.keys().any(|k| {
                        last_commit_of_key
                            .get(k)
                            .map(|&c| c > m.commits_at_begin)
                            .unwrap_or(false)
                    });
                    match tc.commit(txn) {
                        Ok(_) => {
                            prop_assert!(
                                !conflict || m.writes.is_empty(),
                                "commit succeeded despite predicted conflict (slot {})",
                                s
                            );
                            if !m.writes.is_empty() {
                                commit_counter += 1;
                                for (k, v) in m.writes {
                                    match v {
                                        Some(v) => {
                                            committed.insert(k, v);
                                        }
                                        None => {
                                            committed.remove(&k);
                                        }
                                    }
                                    first_commit_of_key.entry(k).or_insert(commit_counter);
                                    last_commit_of_key.insert(k, commit_counter);
                                }
                            }
                        }
                        Err(CommitError::WriteConflict { .. }) => {
                            prop_assert!(
                                conflict,
                                "spurious conflict abort (slot {})",
                                s
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Op::Abort(s) => {
                    let s = s as usize;
                    if let Some(txn) = real[s].take() {
                        tc.abort(txn);
                    }
                    model[s] = None;
                }
                Op::EvictAll => {
                    for p in tc.dc().pages() {
                        if p.is_leaf {
                            let _ = tc.dc().evict_page(p.pid);
                        }
                    }
                }
                Op::Vacuum => {
                    // Safe horizon: below every open snapshot.
                    let horizon = real
                        .iter()
                        .flatten()
                        .map(|t| t.read_ts())
                        .min()
                        .unwrap_or_else(|| tc.begin().read_ts());
                    tc.vacuum(horizon);
                }
            }
        }
        // Final: a fresh snapshot agrees with the committed model.
        let probe = tc.begin();
        for k in 0..KEYS {
            prop_assert_eq!(
                tc.read(&probe, &key(k)).expect("final read").map(|b| b[0]),
                committed.get(&k).copied(),
                "final key {}",
                k
            );
        }
        // And the DC itself holds exactly the committed values.
        for k in 0..KEYS {
            prop_assert_eq!(
                tc.dc().get(&key(k)).map(|b| b[0]),
                committed.get(&k).copied(),
                "DC key {}",
                k
            );
        }
    }
}
