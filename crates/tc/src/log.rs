//! The recovery log, whose buffers double as the updated-record cache.
//!
//! Redo records are appended to in-memory log buffers; [`RecoveryLog::flush`]
//! marks a prefix durable (writing it to the flash device as one large
//! append — log-structuring again), but the buffers are *retained in
//! memory* (§6.3): together with the MVCC hash table they form the TC's
//! updated-record cache.

use bytes::Bytes;
use dcs_flashsim::FlashDevice;
use parking_lot::Mutex;
use std::sync::Arc;

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Committing transaction's timestamp.
    pub ts: u64,
    /// Record key.
    pub key: Bytes,
    /// New value; `None` = delete.
    pub value: Option<Bytes>,
}

impl LogRecord {
    fn serialized_len(&self) -> usize {
        8 + 4 + self.key.len() + 1 + 4 + self.value.as_ref().map(|v| v.len()).unwrap_or(0)
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key);
        match &self.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }
}

struct LogInner {
    /// All records, in append order. Flushed records stay resident.
    records: Vec<LogRecord>,
    /// Records up to this index are durable.
    durable_upto: usize,
    bytes: usize,
}

/// The in-memory recovery log with an optional flash device for
/// durability.
pub struct RecoveryLog {
    inner: Mutex<LogInner>,
    device: Option<Arc<FlashDevice>>,
}

impl RecoveryLog {
    /// A log kept only in memory (tests / volatile mode).
    pub fn in_memory() -> Self {
        RecoveryLog {
            inner: Mutex::new(LogInner {
                records: Vec::new(),
                durable_upto: 0,
                bytes: 0,
            }),
            device: None,
        }
    }

    /// A log that flushes to `device`.
    pub fn on_device(device: Arc<FlashDevice>) -> Self {
        RecoveryLog {
            inner: Mutex::new(LogInner {
                records: Vec::new(),
                durable_upto: 0,
                bytes: 0,
            }),
            device: Some(device),
        }
    }

    /// Append a group of records (one transaction's writes) atomically.
    /// Returns the log sequence number of the last record.
    pub fn append_group(&self, records: &[LogRecord]) -> u64 {
        let mut inner = self.inner.lock();
        for r in records {
            inner.bytes += r.serialized_len();
            inner.records.push(r.clone());
        }
        inner.records.len() as u64 - 1
    }

    /// Flush undurable records to the device (one large append), retaining
    /// them in memory. No-op for in-memory logs.
    pub fn flush(&self) -> Result<(), dcs_flashsim::DeviceError> {
        let mut inner = self.inner.lock();
        if inner.durable_upto == inner.records.len() {
            return Ok(());
        }
        if let Some(device) = &self.device {
            let mut buf = Vec::new();
            for r in &inner.records[inner.durable_upto..] {
                r.serialize_into(&mut buf);
            }
            // Large appends may exceed a segment; chunk them.
            let seg = device.config().segment_bytes;
            for chunk in buf.chunks(seg) {
                device.append(chunk)?;
            }
            device.sync();
        }
        inner.durable_upto = inner.records.len();
        Ok(())
    }

    /// Look up the newest logged value for `key` visible at `read_ts`.
    ///
    /// This is the record-cache read path: a hit avoids the DC entirely.
    pub fn lookup(&self, key: &[u8], read_ts: u64) -> Option<Option<Bytes>> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .rev()
            .find(|r| r.key.as_ref() == key && r.ts <= read_ts)
            .map(|r| r.value.clone())
    }

    /// All records at or after timestamp `from_ts`, for redo replay.
    pub fn records_from(&self, from_ts: u64) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .filter(|r| r.ts >= from_ts)
            .cloned()
            .collect()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records not yet durable.
    pub fn undurable(&self) -> usize {
        let inner = self.inner.lock();
        inner.records.len() - inner.durable_upto
    }

    /// Approximate bytes of retained log buffers.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Discard records older than `horizon` that are durable (cache
    /// trimming; durability is preserved because they were flushed).
    pub fn trim_below(&self, horizon: u64) {
        let mut inner = self.inner.lock();
        let durable = inner.durable_upto;
        let mut kept = Vec::new();
        let mut kept_bytes = 0usize;
        let mut new_durable = 0usize;
        for (i, r) in inner.records.iter().enumerate() {
            if r.ts >= horizon || i >= durable {
                kept_bytes += r.serialized_len();
                if i < durable {
                    new_durable += 1;
                }
                kept.push(r.clone());
            }
        }
        inner.records = kept;
        inner.durable_upto = new_durable;
        inner.bytes = kept_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_flashsim::DeviceConfig;

    fn rec(ts: u64, key: &str, value: Option<&str>) -> LogRecord {
        LogRecord {
            ts,
            key: Bytes::from(key.to_owned()),
            value: value.map(|v| Bytes::from(v.to_owned())),
        }
    }

    #[test]
    fn append_and_lookup() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "k", Some("v10"))]);
        log.append_group(&[rec(20, "k", Some("v20")), rec(20, "j", None)]);
        assert_eq!(log.lookup(b"k", 15), Some(Some(Bytes::from("v10"))));
        assert_eq!(log.lookup(b"k", 25), Some(Some(Bytes::from("v20"))));
        assert_eq!(log.lookup(b"j", 25), Some(None));
        assert_eq!(log.lookup(b"x", 100), None);
        assert_eq!(
            log.lookup(b"k", 5),
            None,
            "nothing visible before first write"
        );
    }

    #[test]
    fn flush_marks_durable_and_retains() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        log.append_group(&[rec(1, "a", Some("1")), rec(1, "b", Some("2"))]);
        assert_eq!(log.undurable(), 2);
        log.flush().unwrap();
        assert_eq!(log.undurable(), 0);
        assert_eq!(device.stats().writes, 1, "one large append");
        // Retained in memory: lookups still hit.
        assert_eq!(log.lookup(b"a", 10), Some(Some(Bytes::from("1"))));
        // Idempotent flush.
        log.flush().unwrap();
        assert_eq!(device.stats().writes, 1);
    }

    #[test]
    fn records_from_filters_by_ts() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "a", Some("1"))]);
        log.append_group(&[rec(20, "b", Some("2"))]);
        log.append_group(&[rec(30, "c", Some("3"))]);
        let replay = log.records_from(20);
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].ts, 20);
    }

    #[test]
    fn trim_keeps_recent_and_undurable() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device);
        log.append_group(&[rec(10, "old", Some("x"))]);
        log.append_group(&[rec(20, "mid", Some("y"))]);
        log.flush().unwrap();
        log.append_group(&[rec(30, "new", Some("z"))]); // not durable
        log.trim_below(15);
        assert_eq!(log.len(), 2);
        assert_eq!(log.lookup(b"old", 100), None, "trimmed from cache");
        assert_eq!(log.lookup(b"mid", 100), Some(Some(Bytes::from("y"))));
        assert_eq!(log.lookup(b"new", 100), Some(Some(Bytes::from("z"))));
        assert_eq!(log.undurable(), 1);
    }

    #[test]
    fn bytes_accounting_tracks_trim() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "key", Some("a-long-value-here"))]);
        let b1 = log.approx_bytes();
        assert!(b1 > 20);
        log.trim_below(100);
        // Undurable records are kept by trim (in-memory log never flushes).
        assert_eq!(log.approx_bytes(), b1);
    }
}
