//! The recovery log, whose buffers double as the updated-record cache.
//!
//! Redo records are appended to in-memory log buffers; [`RecoveryLog::flush`]
//! marks a prefix durable (writing it to the flash device as one large
//! append — log-structuring again), but the buffers are *retained in
//! memory* (§6.3): together with the MVCC hash table they form the TC's
//! updated-record cache.

use bytes::Bytes;
use dcs_flashsim::{FlashAddress, FlashDevice};
use parking_lot::Mutex;
use std::sync::Arc;

/// Frame magic: `b"TCLG"`.
const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"TCLG");
/// Frame header: magic (4) + batch sequence (8) + payload length (4) +
/// payload checksum (8).
const FRAME_HEADER: usize = 4 + 8 + 4 + 8;

/// FNV-1a, the log's payload checksum (shared convention with the LSS).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Committing transaction's timestamp.
    pub ts: u64,
    /// Record key.
    pub key: Bytes,
    /// New value; `None` = delete.
    pub value: Option<Bytes>,
}

impl LogRecord {
    fn serialized_len(&self) -> usize {
        8 + 4 + self.key.len() + 1 + 4 + self.value.as_ref().map(|v| v.len()).unwrap_or(0)
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key);
        match &self.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => out.push(0),
        }
    }

    /// Parse one record from `buf[*pos..]`, advancing `pos`. `None` on any
    /// truncation (recovery treats it as a torn payload).
    fn deserialize_from(buf: &[u8], pos: &mut usize) -> Option<LogRecord> {
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let ts = u64::from_le_bytes(take(pos, 8)?.try_into().ok()?);
        let klen = u32::from_le_bytes(take(pos, 4)?.try_into().ok()?) as usize;
        let key = Bytes::copy_from_slice(take(pos, klen)?);
        let tag = take(pos, 1)?[0];
        let value = match tag {
            0 => None,
            1 => {
                let vlen = u32::from_le_bytes(take(pos, 4)?.try_into().ok()?) as usize;
                Some(Bytes::copy_from_slice(take(pos, vlen)?))
            }
            _ => return None,
        };
        Some(LogRecord { ts, key, value })
    }
}

struct LogInner {
    /// All records, in append order. Flushed records stay resident.
    records: Vec<LogRecord>,
    /// Records up to this index are durable.
    durable_upto: usize,
    /// Records up to this index have been written to the device (possibly
    /// without a barrier); always ≥ `durable_upto` on a device-backed log.
    appended_upto: usize,
    /// Sequence number of the next frame written to the device.
    next_batch_seq: u64,
    bytes: usize,
}

/// The in-memory recovery log with an optional flash device for
/// durability.
pub struct RecoveryLog {
    inner: Mutex<LogInner>,
    device: Option<Arc<FlashDevice>>,
}

impl RecoveryLog {
    fn empty_inner() -> LogInner {
        LogInner {
            records: Vec::new(),
            durable_upto: 0,
            appended_upto: 0,
            next_batch_seq: 0,
            bytes: 0,
        }
    }

    /// A log kept only in memory (tests / volatile mode).
    pub fn in_memory() -> Self {
        RecoveryLog {
            inner: Mutex::new(Self::empty_inner()),
            device: None,
        }
    }

    /// A log that flushes to `device`.
    pub fn on_device(device: Arc<FlashDevice>) -> Self {
        RecoveryLog {
            inner: Mutex::new(Self::empty_inner()),
            device: Some(device),
        }
    }

    /// Append a group of records (one transaction's writes) atomically.
    /// Returns the log sequence number of the last record.
    pub fn append_group(&self, records: &[LogRecord]) -> u64 {
        let mut inner = self.inner.lock();
        for r in records {
            inner.bytes += r.serialized_len();
            inner.records.push(r.clone());
        }
        inner.records.len() as u64 - 1
    }

    /// Write the not-yet-appended records to the device as framed batches
    /// (each: magic, batch sequence, length, checksum, payload) and issue a
    /// durability barrier. After `Ok`, everything appended — including by
    /// earlier [`RecoveryLog::flush_nobarrier`] calls — is durable and will
    /// be returned by [`RecoveryLog::recover_from_device`]. Records stay
    /// resident in memory (§6.3: the log doubles as the updated-record
    /// cache). No-op for in-memory logs.
    pub fn flush(&self) -> Result<(), dcs_flashsim::DeviceError> {
        let mut inner = self.inner.lock();
        if let Some(device) = &self.device {
            let _span = dcs_telemetry::span("tc.wal_flush", dcs_telemetry::CostClass::Wal);
            dcs_telemetry::ledger().wal_barrier();
            Self::append_frames(device, &mut inner)?;
            // The barrier makes every appended frame durable at once.
            device.sync();
        }
        inner.appended_upto = inner.records.len();
        inner.durable_upto = inner.records.len();
        Ok(())
    }

    /// Group commit: append a whole batch of redo records (many requests'
    /// writes gathered by a caller such as a server shard) and make the log
    /// durable with **one** device barrier. Returns the log sequence number
    /// of the last record, or `None` for an empty batch (which still
    /// flushes any earlier un-flushed appends — a drain-time barrier).
    ///
    /// This is the serving layer's WAL entry point: acknowledging the batch
    /// only after `commit_batch` returns gives every acked write the same
    /// durability as [`RecoveryLog::flush`] at 1/batch-size the barriers.
    pub fn commit_batch(
        &self,
        records: &[LogRecord],
    ) -> Result<Option<u64>, dcs_flashsim::DeviceError> {
        let mut inner = self.inner.lock();
        let lsn = if records.is_empty() {
            None
        } else {
            for r in records {
                inner.bytes += r.serialized_len();
                inner.records.push(r.clone());
            }
            Some(inner.records.len() as u64 - 1)
        };
        if let Some(device) = &self.device {
            // One barrier covers the whole batch — that amortization is
            // exactly what the WAL cost term measures.
            let _span = dcs_telemetry::span("tc.group_commit", dcs_telemetry::CostClass::Wal);
            dcs_telemetry::ledger().wal_barrier();
            Self::append_frames(device, &mut inner)?;
            device.sync();
        }
        inner.appended_upto = inner.records.len();
        inner.durable_upto = inner.records.len();
        Ok(lsn)
    }

    /// Write the not-yet-appended records to the device **without a
    /// durability barrier**: the data is queued at the device but not
    /// acknowledged, so a crash may persist any prefix of it (or none).
    /// `undurable()` therefore does not shrink — only [`RecoveryLog::flush`]
    /// acknowledges durability. Models a buffered write racing a power cut
    /// in the crash-consistency tests.
    pub fn flush_nobarrier(&self) -> Result<(), dcs_flashsim::DeviceError> {
        let mut inner = self.inner.lock();
        if let Some(device) = &self.device {
            Self::append_frames(device, &mut inner)?;
            inner.appended_upto = inner.records.len();
        }
        Ok(())
    }

    /// Frame and append `records[appended_upto..]`. Batches split at record
    /// boundaries so every frame (header + payload) fits one device segment.
    fn append_frames(
        device: &FlashDevice,
        inner: &mut LogInner,
    ) -> Result<(), dcs_flashsim::DeviceError> {
        let max_payload = device.config().segment_bytes - FRAME_HEADER;
        let mut start = inner.appended_upto;
        while start < inner.records.len() {
            let mut payload = Vec::new();
            let mut end = start;
            while end < inner.records.len() {
                let r = &inner.records[end];
                assert!(
                    r.serialized_len() <= max_payload,
                    "log record larger than a device segment"
                );
                if payload.len() + r.serialized_len() > max_payload {
                    break;
                }
                r.serialize_into(&mut payload);
                end += 1;
            }
            let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
            frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
            frame.extend_from_slice(&inner.next_batch_seq.to_le_bytes());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            device.append(&frame)?;
            inner.next_batch_seq += 1;
            start = end;
        }
        Ok(())
    }

    /// Scan a (dedicated) log device and return every durably framed record
    /// in original append order. Each segment is read frame by frame,
    /// stopping at the first torn, corrupt, or foreign frame — exactly what
    /// a power cut mid-write leaves behind; batches are then ordered by
    /// their sequence number (frames may land in any segment order) and
    /// deduplicated, so records never acknowledged by a barrier either
    /// appear as a consistent prefix of their batch stream or not at all.
    pub fn recover_from_device(device: &FlashDevice) -> Vec<LogRecord> {
        let mut batches: Vec<(u64, Vec<LogRecord>)> = Vec::new();
        for segment in 0..device.config().segment_count as dcs_flashsim::SegmentId {
            let mut offset = 0u32;
            loop {
                let addr = FlashAddress { segment, offset };
                let Ok(header) = device.read(addr, FRAME_HEADER) else {
                    break; // end of written extent (or unused segment)
                };
                let magic = u32::from_le_bytes(header[0..4].try_into().expect("4"));
                if magic != FRAME_MAGIC {
                    break; // foreign or zeroed bytes: stop trusting this segment
                }
                let seq = u64::from_le_bytes(header[4..12].try_into().expect("8"));
                let len = u32::from_le_bytes(header[12..16].try_into().expect("4")) as usize;
                let crc = u64::from_le_bytes(header[16..24].try_into().expect("8"));
                let payload_addr = FlashAddress {
                    segment,
                    offset: offset + FRAME_HEADER as u32,
                };
                let Ok(payload) = device.read(payload_addr, len) else {
                    break; // torn frame: header persisted, payload did not
                };
                if fnv64(&payload) != crc {
                    break; // corrupt payload
                }
                let mut records = Vec::new();
                let mut pos = 0usize;
                while pos < payload.len() {
                    match LogRecord::deserialize_from(&payload, &mut pos) {
                        Some(r) => records.push(r),
                        None => break,
                    }
                }
                batches.push((seq, records));
                offset += (FRAME_HEADER + len) as u32;
            }
        }
        batches.sort_by_key(|(seq, _)| *seq);
        batches.dedup_by_key(|(seq, _)| *seq);
        batches.into_iter().flat_map(|(_, rs)| rs).collect()
    }

    /// Look up the newest logged value for `key` visible at `read_ts`.
    ///
    /// This is the record-cache read path: a hit avoids the DC entirely.
    pub fn lookup(&self, key: &[u8], read_ts: u64) -> Option<Option<Bytes>> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .rev()
            .find(|r| r.key.as_ref() == key && r.ts <= read_ts)
            .map(|r| r.value.clone())
    }

    /// All records at or after timestamp `from_ts`, for redo replay.
    pub fn records_from(&self, from_ts: u64) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .filter(|r| r.ts >= from_ts)
            .cloned()
            .collect()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records not yet durable.
    pub fn undurable(&self) -> usize {
        let inner = self.inner.lock();
        inner.records.len() - inner.durable_upto
    }

    /// Approximate bytes of retained log buffers.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Discard records older than `horizon` that are durable (cache
    /// trimming; durability is preserved because they were flushed).
    pub fn trim_below(&self, horizon: u64) {
        let mut inner = self.inner.lock();
        let durable = inner.durable_upto;
        let appended = inner.appended_upto;
        let mut kept = Vec::new();
        let mut kept_bytes = 0usize;
        let mut new_durable = 0usize;
        let mut new_appended = 0usize;
        for (i, r) in inner.records.iter().enumerate() {
            if r.ts >= horizon || i >= durable {
                kept_bytes += r.serialized_len();
                if i < durable {
                    new_durable += 1;
                }
                if i < appended {
                    new_appended += 1;
                }
                kept.push(r.clone());
            }
        }
        inner.records = kept;
        inner.durable_upto = new_durable;
        inner.appended_upto = new_appended;
        inner.bytes = kept_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_flashsim::DeviceConfig;

    fn rec(ts: u64, key: &str, value: Option<&str>) -> LogRecord {
        LogRecord {
            ts,
            key: Bytes::from(key.to_owned()),
            value: value.map(|v| Bytes::from(v.to_owned())),
        }
    }

    #[test]
    fn append_and_lookup() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "k", Some("v10"))]);
        log.append_group(&[rec(20, "k", Some("v20")), rec(20, "j", None)]);
        assert_eq!(log.lookup(b"k", 15), Some(Some(Bytes::from("v10"))));
        assert_eq!(log.lookup(b"k", 25), Some(Some(Bytes::from("v20"))));
        assert_eq!(log.lookup(b"j", 25), Some(None));
        assert_eq!(log.lookup(b"x", 100), None);
        assert_eq!(
            log.lookup(b"k", 5),
            None,
            "nothing visible before first write"
        );
    }

    #[test]
    fn flush_marks_durable_and_retains() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        log.append_group(&[rec(1, "a", Some("1")), rec(1, "b", Some("2"))]);
        assert_eq!(log.undurable(), 2);
        log.flush().unwrap();
        assert_eq!(log.undurable(), 0);
        assert_eq!(device.stats().writes, 1, "one large append");
        // Retained in memory: lookups still hit.
        assert_eq!(log.lookup(b"a", 10), Some(Some(Bytes::from("1"))));
        // Idempotent flush.
        log.flush().unwrap();
        assert_eq!(device.stats().writes, 1);
    }

    #[test]
    fn commit_batch_is_one_barrier_and_durable() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        let batch: Vec<LogRecord> = (0..10)
            .map(|i| rec(i, &format!("k{i}"), Some("v")))
            .collect();
        let syncs_before = device.stats().syncs;
        let lsn = log.commit_batch(&batch).unwrap();
        assert_eq!(lsn, Some(9));
        assert_eq!(device.stats().syncs, syncs_before + 1, "one barrier");
        assert_eq!(log.undurable(), 0);
        assert_eq!(RecoveryLog::recover_from_device(&device), batch);
        // Empty batch: still a barrier for earlier un-flushed appends.
        log.append_group(&[rec(99, "tail", Some("t"))]);
        assert_eq!(log.commit_batch(&[]).unwrap(), None);
        assert_eq!(log.undurable(), 0);
        assert_eq!(RecoveryLog::recover_from_device(&device).len(), 11);
    }

    #[test]
    fn records_from_filters_by_ts() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "a", Some("1"))]);
        log.append_group(&[rec(20, "b", Some("2"))]);
        log.append_group(&[rec(30, "c", Some("3"))]);
        let replay = log.records_from(20);
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0].ts, 20);
    }

    #[test]
    fn trim_keeps_recent_and_undurable() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device);
        log.append_group(&[rec(10, "old", Some("x"))]);
        log.append_group(&[rec(20, "mid", Some("y"))]);
        log.flush().unwrap();
        log.append_group(&[rec(30, "new", Some("z"))]); // not durable
        log.trim_below(15);
        assert_eq!(log.len(), 2);
        assert_eq!(log.lookup(b"old", 100), None, "trimmed from cache");
        assert_eq!(log.lookup(b"mid", 100), Some(Some(Bytes::from("y"))));
        assert_eq!(log.lookup(b"new", 100), Some(Some(Bytes::from("z"))));
        assert_eq!(log.undurable(), 1);
    }

    #[test]
    fn recovery_returns_flushed_records_in_order() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        log.append_group(&[rec(1, "a", Some("1")), rec(1, "b", Some("2"))]);
        log.flush().unwrap();
        log.append_group(&[rec(2, "a", None)]);
        log.flush().unwrap();
        let recovered = RecoveryLog::recover_from_device(&device);
        assert_eq!(
            recovered,
            vec![
                rec(1, "a", Some("1")),
                rec(1, "b", Some("2")),
                rec(2, "a", None)
            ]
        );
    }

    #[test]
    fn recovery_ignores_unacknowledged_torn_tail() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        log.append_group(&[rec(1, "acked", Some("v"))]);
        log.flush().unwrap();
        log.append_group(&[rec(2, "inflight", Some("w"))]);
        log.flush_nobarrier().unwrap();
        assert_eq!(log.undurable(), 1, "nobarrier must not acknowledge");
        // Power cut persists only 5 bytes of the in-flight frame: not even
        // a whole header survives.
        device.crash_torn(5);
        let recovered = RecoveryLog::recover_from_device(&device);
        assert_eq!(recovered, vec![rec(1, "acked", Some("v"))]);
    }

    #[test]
    fn recovery_drops_frame_with_torn_payload() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let log = RecoveryLog::on_device(device.clone());
        log.append_group(&[rec(1, "acked", Some("v"))]);
        log.flush().unwrap();
        log.append_group(&[rec(2, "inflight", Some("wwwwwwwwwwwwwwww"))]);
        log.flush_nobarrier().unwrap();
        // The header persists but the payload is cut short.
        device.crash_torn(FRAME_HEADER + 3);
        let recovered = RecoveryLog::recover_from_device(&device);
        assert_eq!(recovered, vec![rec(1, "acked", Some("v"))]);
    }

    #[test]
    fn large_flush_splits_frames_at_record_boundaries() {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_bytes: 256,
            ..DeviceConfig::small_test()
        }));
        let log = RecoveryLog::on_device(device.clone());
        let big = "x".repeat(100);
        let group: Vec<LogRecord> = (0..6)
            .map(|i| rec(i, &format!("k{i}"), Some(&big)))
            .collect();
        log.append_group(&group);
        log.flush().unwrap();
        assert!(device.stats().writes > 1, "must have split into frames");
        assert_eq!(RecoveryLog::recover_from_device(&device), group);
    }

    #[test]
    fn bytes_accounting_tracks_trim() {
        let log = RecoveryLog::in_memory();
        log.append_group(&[rec(10, "key", Some("a-long-value-here"))]);
        let b1 = log.approx_bytes();
        assert!(b1 > 20);
        log.trim_below(100);
        // Undurable records are kept by trim (in-memory log never flushes).
        assert_eq!(log.approx_bytes(), b1);
    }
}
