//! Transactions: timestamp-ordered MVCC over a Bw-tree data component.

use crate::log::{LogRecord, RecoveryLog};
use crate::mvcc::VersionStore;
use crate::readcache::ReadCache;
use bytes::Bytes;
use dcs_bwtree::{BwTree, TreeError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// TC configuration.
#[derive(Debug, Clone)]
pub struct TcConfig {
    /// Byte budget of the log-structured read cache.
    pub read_cache_bytes: usize,
    /// Flush the recovery log every this many commits (group commit).
    pub group_commit_every: u64,
}

impl Default for TcConfig {
    fn default() -> Self {
        TcConfig {
            read_cache_bytes: 4 << 20,
            group_commit_every: 32,
        }
    }
}

/// Why a commit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// Another transaction committed a conflicting write after this
    /// transaction's snapshot (first-committer-wins).
    WriteConflict {
        /// The contested key.
        key: Bytes,
    },
    /// The data component failed.
    Dc(String),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::WriteConflict { key } => write!(f, "write conflict on {key:?}"),
            CommitError::Dc(e) => write!(f, "data component: {e}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// TC operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Commits aborted by validation.
    pub conflicts: u64,
    /// Reads served by the MVCC version store (updated-record cache).
    pub version_hits: u64,
    /// Reads served by the recovery-log buffers.
    pub log_cache_hits: u64,
    /// Reads served by the read cache.
    pub read_cache_hits: u64,
    /// Reads that had to visit the data component.
    pub dc_reads: u64,
    /// Blind updates posted to the DC.
    pub blind_posts: u64,
}

#[derive(Default)]
struct StatsInner {
    begun: AtomicU64,
    committed: AtomicU64,
    conflicts: AtomicU64,
    version_hits: AtomicU64,
    log_cache_hits: AtomicU64,
    read_cache_hits: AtomicU64,
    dc_reads: AtomicU64,
    blind_posts: AtomicU64,
}

/// The transaction component: MVCC + recovery log + read cache over a
/// Bw-tree DC. See the crate docs.
pub struct TransactionalStore {
    dc: Arc<BwTree>,
    versions: VersionStore,
    log: RecoveryLog,
    read_cache: ReadCache,
    /// Timestamp source: begin stamps are even reads of this counter;
    /// commits increment it.
    clock: AtomicU64,
    config: TcConfig,
    stats: StatsInner,
    commit_lock: parking_lot::Mutex<()>,
}

/// An open transaction. Reads see the snapshot at `read_ts`; writes buffer
/// locally until commit.
pub struct Transaction {
    read_ts: u64,
    writes: BTreeMap<Bytes, Option<Bytes>>,
}

impl Transaction {
    /// The snapshot timestamp.
    pub fn read_ts(&self) -> u64 {
        self.read_ts
    }

    /// Buffer an upsert.
    pub fn write(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.writes.insert(key.into(), Some(value.into()));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.writes.insert(key.into(), None);
    }

    /// Keys written so far.
    pub fn write_set(&self) -> impl Iterator<Item = &Bytes> {
        self.writes.keys()
    }
}

impl TransactionalStore {
    /// A TC over `dc` with an in-memory recovery log.
    pub fn new(dc: Arc<BwTree>, config: TcConfig) -> Self {
        Self::with_log(dc, RecoveryLog::in_memory(), config)
    }

    /// A TC with an explicit recovery log (e.g. device-backed).
    pub fn with_log(dc: Arc<BwTree>, log: RecoveryLog, config: TcConfig) -> Self {
        TransactionalStore {
            dc,
            versions: VersionStore::new(),
            log,
            read_cache: ReadCache::new(config.read_cache_bytes),
            clock: AtomicU64::new(1),
            config,
            stats: StatsInner::default(),
            commit_lock: parking_lot::Mutex::new(()),
        }
    }

    /// The data component.
    pub fn dc(&self) -> &Arc<BwTree> {
        &self.dc
    }

    /// The recovery log.
    pub fn log(&self) -> &RecoveryLog {
        &self.log
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TcStats {
        TcStats {
            begun: self.stats.begun.load(Ordering::Relaxed),
            committed: self.stats.committed.load(Ordering::Relaxed),
            conflicts: self.stats.conflicts.load(Ordering::Relaxed),
            version_hits: self.stats.version_hits.load(Ordering::Relaxed),
            log_cache_hits: self.stats.log_cache_hits.load(Ordering::Relaxed),
            read_cache_hits: self.stats.read_cache_hits.load(Ordering::Relaxed),
            dc_reads: self.stats.dc_reads.load(Ordering::Relaxed),
            blind_posts: self.stats.blind_posts.load(Ordering::Relaxed),
        }
    }

    /// Begin a transaction snapshotted at the current timestamp.
    pub fn begin(&self) -> Transaction {
        self.stats.begun.fetch_add(1, Ordering::Relaxed);
        Transaction {
            read_ts: self.clock.load(Ordering::SeqCst),
            writes: BTreeMap::new(),
        }
    }

    /// Transactional read through the TC cache hierarchy:
    /// own writes → version store → retained log buffers → read cache → DC.
    ///
    /// Isolation note (bounded history): snapshot isolation holds for every
    /// key whose version history reaches back to the reader's snapshot. A
    /// reader whose snapshot predates *all* retained versions of a key
    /// falls through to the data component, which is single-version, and
    /// observes the newest committed state for that key. (In full
    /// Deuteronomy the timestamps extend into the DC's delta chains —
    /// "a reader, using the timestamps, will select the record version it
    /// needs" §6.2 — a substitution documented in DESIGN.md.)
    pub fn read(&self, txn: &Transaction, key: &[u8]) -> Result<Option<Bytes>, TreeError> {
        // Own uncommitted writes first.
        if let Some(v) = txn.writes.get(key) {
            return Ok(v.clone());
        }
        // MVCC version store: a hit avoids the DC entirely (§6.3).
        if let Some(v) = self.versions.visible(key, txn.read_ts) {
            self.stats.version_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // Retained recovery-log buffers.
        if let Some(v) = self.log.lookup(key, txn.read_ts) {
            self.stats.log_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // Log-structured read cache: valid only if nothing newer committed.
        if let Some((v, as_of)) = self.read_cache.lookup(key) {
            let newest = self.versions.newest_ts(key).unwrap_or(0);
            if newest <= as_of {
                self.stats.read_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        // Fall through to the DC.
        self.stats.dc_reads.fetch_add(1, Ordering::Relaxed);
        let v = self.dc.try_get(key)?;
        self.read_cache
            .insert(Bytes::copy_from_slice(key), v.clone(), txn.read_ts);
        Ok(v)
    }

    /// Convenience for [`TransactionalStore::read`] at an explicit snapshot.
    pub fn get_at(&self, read_ts: u64, key: &[u8]) -> Result<Option<Bytes>, TreeError> {
        let txn = Transaction {
            read_ts,
            writes: BTreeMap::new(),
        };
        self.read(&txn, key)
    }

    /// Commit: validate (first-committer-wins), log, install versions, and
    /// post every write to the DC as a blind update (§6.2).
    pub fn commit(&self, txn: Transaction) -> Result<u64, CommitError> {
        if txn.writes.is_empty() {
            self.stats.committed.fetch_add(1, Ordering::Relaxed);
            return Ok(txn.read_ts);
        }
        let _guard = self.commit_lock.lock();
        // Validation: abort if any written key has a committed version
        // newer than our snapshot.
        for key in txn.writes.keys() {
            if let Some(ts) = self.versions.newest_ts(key) {
                if ts > txn.read_ts {
                    self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(CommitError::WriteConflict { key: key.clone() });
                }
            }
        }
        // Choose the commit timestamp without publishing it yet: the clock
        // only advances *after* the versions are installed below, so a
        // transaction can never begin with `read_ts == commit_ts` while the
        // old state is still visible (which would slip past first-committer-
        // wins validation and lose this update). `commit_lock` serializes
        // committers, so load-then-store cannot race another commit.
        let commit_ts = self.clock.load(Ordering::SeqCst) + 1;
        // Redo-log the group.
        let records: Vec<LogRecord> = txn
            .writes
            .iter()
            .map(|(k, v)| LogRecord {
                ts: commit_ts,
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
        self.log.append_group(&records);
        // Install versions and post blind updates at the DC. Ordinary
        // updates act like blind updates here: the DC never reads a page.
        for (key, value) in &txn.writes {
            self.versions.install(key.clone(), commit_ts, value.clone());
            self.read_cache.invalidate(key);
            match value {
                Some(v) => self.dc.blind_update(key.clone(), v.clone()),
                None => self.dc.delete(key.clone()),
            }
            self.stats.blind_posts.fetch_add(1, Ordering::Relaxed);
        }
        // Publication point: new transactions may now observe `commit_ts`.
        self.clock.store(commit_ts, Ordering::SeqCst);
        let committed = self.stats.committed.fetch_add(1, Ordering::Relaxed) + 1;
        if committed.is_multiple_of(self.config.group_commit_every) {
            self.log
                .flush()
                .map_err(|e| CommitError::Dc(e.to_string()))?;
        }
        Ok(commit_ts)
    }

    /// Abort: nothing was published, so this just drops the write set.
    pub fn abort(&self, txn: Transaction) {
        drop(txn);
    }

    /// Force-flush the recovery log.
    pub fn flush_log(&self) -> Result<(), CommitError> {
        self.log.flush().map_err(|e| CommitError::Dc(e.to_string()))
    }

    /// Redo recovery: replay logged records onto a (fresh) DC, using the
    /// same blind-update path as normal operation.
    pub fn replay_onto(log: &RecoveryLog, dc: &BwTree) -> usize {
        let records = log.records_from(0);
        let n = records.len();
        for r in records {
            match r.value {
                Some(v) => dc.blind_update(r.key, v),
                None => dc.delete(r.key),
            }
        }
        n
    }

    /// Trim TC caches below the oldest timestamp any active transaction
    /// could hold (MVCC garbage collection: the visible version of every
    /// key is retained).
    pub fn vacuum(&self, horizon: u64) {
        self.versions.truncate_below(horizon);
        self.log.trim_below(horizon);
    }

    /// Shrink the TC record caches: drop whole version chains (and log
    /// buffers) at or below `horizon`. Reads of the dropped keys fall
    /// through to the data component, which always holds the latest
    /// committed values. No transaction older than `horizon` may be active.
    pub fn shrink_cache(&self, horizon: u64) {
        self.versions.evict_chains_below(horizon);
        self.log.trim_below(horizon + 1);
        // The read cache is already bounded; nothing to do there.
    }

    /// Approximate bytes held by TC caches.
    pub fn cache_bytes(&self) -> usize {
        self.versions.approx_bytes() + self.log.approx_bytes() + self.read_cache.approx_bytes()
    }
}

impl std::fmt::Debug for TransactionalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionalStore")
            .field("stats", &self.stats())
            .field("cache_bytes", &self.cache_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_bwtree::BwTreeConfig;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    fn store() -> TransactionalStore {
        TransactionalStore::new(
            Arc::new(BwTree::in_memory(BwTreeConfig::default())),
            TcConfig::default(),
        )
    }

    #[test]
    fn commit_then_read() {
        let tc = store();
        let mut t1 = tc.begin();
        t1.write(b("k"), b("v"));
        let ts = tc.commit(t1).unwrap();
        assert!(ts > 0);
        let t2 = tc.begin();
        assert_eq!(tc.read(&t2, b"k").unwrap(), Some(b("v")));
    }

    #[test]
    fn snapshot_isolation() {
        let tc = store();
        let mut t1 = tc.begin();
        t1.write(b("k"), b("v1"));
        tc.commit(t1).unwrap();

        let reader = tc.begin(); // snapshot at v1
        let mut writer = tc.begin();
        writer.write(b("k"), b("v2"));
        tc.commit(writer).unwrap();

        // The old snapshot still sees v1; a fresh one sees v2.
        assert_eq!(tc.read(&reader, b"k").unwrap(), Some(b("v1")));
        let fresh = tc.begin();
        assert_eq!(tc.read(&fresh, b"k").unwrap(), Some(b("v2")));
    }

    #[test]
    fn own_writes_visible_before_commit() {
        let tc = store();
        let mut t = tc.begin();
        t.write(b("k"), b("mine"));
        assert_eq!(tc.read(&t, b"k").unwrap(), Some(b("mine")));
        t.delete(b("k"));
        assert_eq!(tc.read(&t, b"k").unwrap(), None);
    }

    #[test]
    fn first_committer_wins() {
        let tc = store();
        let mut t0 = tc.begin();
        t0.write(b("k"), b("base"));
        tc.commit(t0).unwrap();

        let mut a = tc.begin();
        let mut b_ = tc.begin();
        a.write(b("k"), b("from-a"));
        b_.write(b("k"), b("from-b"));
        tc.commit(a).unwrap();
        let err = tc.commit(b_).unwrap_err();
        assert!(matches!(err, CommitError::WriteConflict { .. }));
        assert_eq!(tc.stats().conflicts, 1);
        let fresh = tc.begin();
        assert_eq!(tc.read(&fresh, b"k").unwrap(), Some(b("from-a")));
    }

    #[test]
    fn disjoint_writes_do_not_conflict() {
        let tc = store();
        let mut a = tc.begin();
        let mut b_ = tc.begin();
        a.write(b("x"), b("1"));
        b_.write(b("y"), b("2"));
        tc.commit(a).unwrap();
        tc.commit(b_).unwrap();
        let t = tc.begin();
        assert_eq!(tc.read(&t, b"x").unwrap(), Some(b("1")));
        assert_eq!(tc.read(&t, b"y").unwrap(), Some(b("2")));
    }

    #[test]
    fn tc_caches_avoid_dc_visits() {
        let tc = store();
        let mut t = tc.begin();
        t.write(b("hot"), b("v"));
        tc.commit(t).unwrap();
        let dc_reads_before = tc.stats().dc_reads;
        // Repeated reads of a recently committed record hit the version
        // store; the DC is never consulted.
        for _ in 0..100 {
            let r = tc.begin();
            assert_eq!(tc.read(&r, b"hot").unwrap(), Some(b("v")));
        }
        let s = tc.stats();
        assert_eq!(s.dc_reads, dc_reads_before, "version store should hit");
        assert!(s.version_hits >= 100);
    }

    #[test]
    fn read_cache_serves_repeated_cold_reads() {
        // Load the DC directly (bypassing the TC) so the version store is
        // cold, then read twice: first via DC, second via read cache.
        let dc = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
        dc.put(b("cold"), b("v"));
        let tc = TransactionalStore::new(dc, TcConfig::default());
        let t = tc.begin();
        assert_eq!(tc.read(&t, b"cold").unwrap(), Some(b("v")));
        assert_eq!(tc.stats().dc_reads, 1);
        assert_eq!(tc.read(&t, b"cold").unwrap(), Some(b("v")));
        assert_eq!(tc.stats().dc_reads, 1, "second read must hit the cache");
        assert_eq!(tc.stats().read_cache_hits, 1);
    }

    #[test]
    fn read_cache_invalidated_by_commit() {
        let dc = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
        dc.put(b("k"), b("stale"));
        let tc = TransactionalStore::new(dc, TcConfig::default());
        let t = tc.begin();
        assert_eq!(tc.read(&t, b"k").unwrap(), Some(b("stale")));
        let mut w = tc.begin();
        w.write(b("k"), b("fresh"));
        tc.commit(w).unwrap();
        let fresh = tc.begin();
        assert_eq!(tc.read(&fresh, b"k").unwrap(), Some(b("fresh")));
    }

    #[test]
    fn commits_post_blind_updates_to_dc() {
        let tc = store();
        let mut t = tc.begin();
        t.write(b("a"), b("1"));
        t.write(b("b"), b("2"));
        tc.commit(t).unwrap();
        assert_eq!(tc.stats().blind_posts, 2);
        // The DC itself holds the values (visible to non-transactional
        // access too).
        assert_eq!(tc.dc().get(b"a"), Some(b("1")));
        assert!(tc.dc().stats().blind_updates >= 1);
    }

    #[test]
    fn replay_reconstructs_dc() {
        let tc = store();
        for i in 0..100u32 {
            let mut t = tc.begin();
            t.write(
                Bytes::from(format!("k{i:03}")),
                Bytes::from(format!("v{i}")),
            );
            if i % 3 == 0 {
                t.delete(Bytes::from(format!("k{:03}", i / 2)));
            }
            tc.commit(t).unwrap();
        }
        // Rebuild a fresh DC purely from the log.
        let fresh = BwTree::in_memory(BwTreeConfig::default());
        let replayed = TransactionalStore::replay_onto(tc.log(), &fresh);
        assert!(replayed >= 100);
        // The fresh DC agrees with the live one on every key.
        for i in 0..100u32 {
            let k = format!("k{i:03}");
            assert_eq!(
                fresh.get(k.as_bytes()),
                tc.dc().get(k.as_bytes()),
                "divergence at {k}"
            );
        }
    }

    #[test]
    fn vacuum_trims_versions() {
        let tc = store();
        for i in 0..50u32 {
            let mut t = tc.begin();
            t.write(b("hot"), Bytes::from(format!("v{i}")));
            tc.commit(t).unwrap();
        }
        let before = tc.cache_bytes();
        let horizon = tc.begin().read_ts();
        tc.vacuum(horizon);
        assert!(tc.cache_bytes() < before);
        // Latest value still visible.
        let t = tc.begin();
        assert_eq!(tc.read(&t, b"hot").unwrap(), Some(b("v49")));
    }

    #[test]
    fn empty_commit_succeeds() {
        let tc = store();
        let t = tc.begin();
        tc.commit(t).unwrap();
        assert_eq!(tc.stats().committed, 1);
    }

    #[test]
    fn concurrent_transfer_invariant() {
        // Bank-transfer style: total balance is invariant under concurrent
        // transfers with first-committer-wins retries.
        let tc = Arc::new(store());
        const ACCOUNTS: u32 = 10;
        for i in 0..ACCOUNTS {
            let mut t = tc.begin();
            t.write(
                Bytes::from(format!("acct{i}")),
                Bytes::from(100u64.to_le_bytes().to_vec()),
            );
            tc.commit(t).unwrap();
        }
        let mut handles = Vec::new();
        for tid in 0..4u32 {
            let tc = tc.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = tid as u64;
                for _ in 0..200 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) as u32 % ACCOUNTS;
                    let to = ((rng >> 12) as u32) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    loop {
                        let mut t = tc.begin();
                        let fk = Bytes::from(format!("acct{from}"));
                        let tk = Bytes::from(format!("acct{to}"));
                        let fb = u64::from_le_bytes(
                            tc.read(&t, &fk).unwrap().unwrap()[..8].try_into().unwrap(),
                        );
                        let tb = u64::from_le_bytes(
                            tc.read(&t, &tk).unwrap().unwrap()[..8].try_into().unwrap(),
                        );
                        if fb == 0 {
                            break;
                        }
                        t.write(fk, Bytes::from((fb - 1).to_le_bytes().to_vec()));
                        t.write(tk, Bytes::from((tb + 1).to_le_bytes().to_vec()));
                        match tc.commit(t) {
                            Ok(_) => break,
                            Err(CommitError::WriteConflict { .. }) => continue,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = tc.begin();
        let total: u64 = (0..ACCOUNTS)
            .map(|i| {
                u64::from_le_bytes(
                    tc.read(&t, format!("acct{i}").as_bytes()).unwrap().unwrap()[..8]
                        .try_into()
                        .unwrap(),
                )
            })
            .sum();
        assert_eq!(total, ACCOUNTS as u64 * 100, "money created or destroyed");
    }
}
