//! Deuteronomy's transaction component (TC).
//!
//! Deuteronomy splits a database kernel into a transaction component (TC)
//! — concurrency control and recovery — and a data component (DC) — the
//! Bw-tree over LLAMA. This crate implements the TC behaviours the
//! cost/performance paper leans on:
//!
//! * **MVCC with timestamp ordering** ([`VersionStore`]): the TC keeps versions
//!   themselves (not proxies) in its version store, visibility governed by
//!   transaction timestamps, with first-committer-wins write validation.
//! * **The recovery log as a record cache** (§6.3, Figure 6): redo records
//!   live in log buffers that are *retained in memory after flush*; the
//!   MVCC hash table doubles as the index over this updated-record cache.
//!   A TC cache hit avoids not only the I/O but the entire DC visit.
//! * **A log-structured read cache** ([`ReadCache`]): records read from
//!   the DC are retained in a bounded, log-structured ring.
//! * **All updates are blind at the DC** (§6.2): commit posts each write
//!   to the Bw-tree as a blind delta — the DC never reads a base page to
//!   apply an update, even for records whose page is evicted.
//! * **Redo recovery** : replaying the recovery log after a crash uses the
//!   same blind-update path as normal operation ("there is no difference
//!   in how updates are handled during normal operation and during
//!   recovery").
//!
//! ```
//! use dcs_tc::TransactionalStore;
//! use dcs_bwtree::{BwTree, BwTreeConfig};
//! use std::sync::Arc;
//!
//! let dc = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
//! let tc = TransactionalStore::new(dc, dcs_tc::TcConfig::default());
//! let mut txn = tc.begin();
//! txn.write(b"k".to_vec(), b"v".to_vec());
//! tc.commit(txn).unwrap();
//! let reader = tc.begin();
//! assert_eq!(tc.read(&reader, b"k").unwrap(), Some(bytes::Bytes::from("v")));
//! ```

mod log;
mod mvcc;
mod readcache;
mod txn;

pub use log::{LogRecord, RecoveryLog};
pub use mvcc::VersionStore;
pub use readcache::ReadCache;
pub use txn::{CommitError, TcConfig, TcStats, Transaction, TransactionalStore};
