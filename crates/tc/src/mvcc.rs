//! The multi-version store: the TC's version hash table.
//!
//! Versions are the actual record payloads (the paper: "Instead of using
//! proxies for the multiple versions, the TC uses the versions
//! themselves"), so this table *is* the updated-record cache — a hit here
//! answers a read with no DC visit and no I/O.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// One committed version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Version {
    /// Commit timestamp.
    pub ts: u64,
    /// Payload; `None` = deletion.
    pub value: Option<Bytes>,
}

/// Hash table of per-key version chains, newest first.
pub struct VersionStore {
    shards: Vec<RwLock<HashMap<Bytes, Vec<Version>>>>,
}

const SHARDS: usize = 64;

fn shard_of(key: &[u8]) -> usize {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h as usize) % SHARDS
}

impl VersionStore {
    /// An empty store.
    pub fn new() -> Self {
        VersionStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Install a committed version.
    pub(crate) fn install(&self, key: Bytes, ts: u64, value: Option<Bytes>) {
        let mut shard = self.shards[shard_of(&key)].write();
        let chain = shard.entry(key).or_default();
        // Newest first; commits are timestamp-ordered but racing installs
        // may arrive slightly out of order.
        let pos = chain.partition_point(|v| v.ts > ts);
        chain.insert(pos, Version { ts, value });
    }

    /// The visible version for a reader at `read_ts`:
    /// the newest version with `ts ≤ read_ts`.
    ///
    /// Outer `None` = no version cached here (fall through to the read
    /// cache / DC); `Some(None)` = visibly deleted.
    pub(crate) fn visible(&self, key: &[u8], read_ts: u64) -> Option<Option<Bytes>> {
        let shard = self.shards[shard_of(key)].read();
        let chain = shard.get(key)?;
        chain
            .iter()
            .find(|v| v.ts <= read_ts)
            .map(|v| v.value.clone())
    }

    /// Newest committed timestamp for `key` (write-conflict validation).
    pub(crate) fn newest_ts(&self, key: &[u8]) -> Option<u64> {
        let shard = self.shards[shard_of(key)].read();
        shard.get(key).and_then(|c| c.first()).map(|v| v.ts)
    }

    /// Drop versions no active transaction can see: keep, per key, the
    /// newest version with `ts ≤ horizon` plus everything newer.
    pub fn truncate_below(&self, horizon: u64) {
        for shard in &self.shards {
            let mut shard = shard.write();
            for chain in shard.values_mut() {
                if let Some(keep_idx) = chain.iter().position(|v| v.ts <= horizon) {
                    chain.truncate(keep_idx + 1);
                }
            }
            shard.retain(|_, c| !c.is_empty());
        }
    }

    /// Drop *entire chains* whose newest version is at or below `horizon`
    /// — cache shrinking, not MVCC GC. Safe because the data component
    /// always holds the latest committed value (commits post blind updates
    /// synchronously): a dropped chain just turns future reads into DC
    /// reads.
    pub fn evict_chains_below(&self, horizon: u64) {
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, chain| chain.first().map(|v| v.ts > horizon).unwrap_or(false));
        }
    }

    /// Total cached versions (diagnostics).
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|c| c.len()).sum::<usize>())
            .sum()
    }

    /// Approximate bytes held by cached versions.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .iter()
                    .map(|(k, c)| {
                        k.len()
                            + c.iter()
                                .map(|v| 16 + v.value.as_ref().map(|b| b.len()).unwrap_or(0))
                                .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

impl Default for VersionStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn visibility_by_timestamp() {
        let vs = VersionStore::new();
        vs.install(b("k"), 10, Some(b("v10")));
        vs.install(b("k"), 20, Some(b("v20")));
        assert_eq!(vs.visible(b"k", 5), None, "nothing visible at 5");
        assert_eq!(vs.visible(b"k", 10), Some(Some(b("v10"))));
        assert_eq!(vs.visible(b"k", 15), Some(Some(b("v10"))));
        assert_eq!(vs.visible(b"k", 25), Some(Some(b("v20"))));
        assert_eq!(vs.visible(b"absent", 100), None);
    }

    #[test]
    fn deletions_are_versions() {
        let vs = VersionStore::new();
        vs.install(b("k"), 10, Some(b("v")));
        vs.install(b("k"), 20, None);
        assert_eq!(vs.visible(b"k", 15), Some(Some(b("v"))));
        assert_eq!(vs.visible(b"k", 25), Some(None));
    }

    #[test]
    fn newest_ts_for_validation() {
        let vs = VersionStore::new();
        assert_eq!(vs.newest_ts(b"k"), None);
        vs.install(b("k"), 7, Some(b("v")));
        vs.install(b("k"), 3, Some(b("old")));
        assert_eq!(vs.newest_ts(b"k"), Some(7));
    }

    #[test]
    fn out_of_order_installs_sort() {
        let vs = VersionStore::new();
        vs.install(b("k"), 30, Some(b("c")));
        vs.install(b("k"), 10, Some(b("a")));
        vs.install(b("k"), 20, Some(b("b")));
        assert_eq!(vs.visible(b"k", 10), Some(Some(b("a"))));
        assert_eq!(vs.visible(b"k", 20), Some(Some(b("b"))));
        assert_eq!(vs.visible(b"k", 30), Some(Some(b("c"))));
    }

    #[test]
    fn truncate_respects_horizon() {
        let vs = VersionStore::new();
        for ts in [10, 20, 30, 40] {
            vs.install(b("k"), ts, Some(Bytes::from(format!("v{ts}"))));
        }
        assert_eq!(vs.version_count(), 4);
        vs.truncate_below(25);
        // Keep 40, 30, and 20 (the newest ≤ 25); drop 10.
        assert_eq!(vs.version_count(), 3);
        assert_eq!(vs.visible(b"k", 25), Some(Some(b("v20"))));
        assert_eq!(vs.visible(b"k", 45), Some(Some(b("v40"))));
    }

    #[test]
    fn bytes_accounting() {
        let vs = VersionStore::new();
        assert_eq!(vs.approx_bytes(), 0);
        vs.install(b("key"), 1, Some(Bytes::from(vec![0u8; 100])));
        assert!(vs.approx_bytes() >= 103);
    }
}
