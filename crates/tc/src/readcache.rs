//! The log-structured read cache (Figure 6).
//!
//! Records read from the DC are retained in a bounded, log-structured ring:
//! new entries append at the head; when the byte budget is exceeded, the
//! oldest entries fall off the tail (the "log-structured read cache" of
//! Deuteronomy's TC). A hash index maps keys to their newest ring slot.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

struct Slot {
    key: Bytes,
    /// `None` caches a confirmed miss (negative caching).
    value: Option<Bytes>,
    /// Commit timestamp the value was read as-of.
    as_of_ts: u64,
}

struct Inner {
    ring: VecDeque<Slot>,
    /// key → newest position offset from the ring head sequence.
    index: HashMap<Bytes, u64>,
    /// Sequence number of the ring's first element.
    head_seq: u64,
    bytes: usize,
}

/// Bounded log-structured read cache.
pub struct ReadCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ReadCache {
    /// A cache bounded at `budget` payload bytes.
    pub fn new(budget: usize) -> Self {
        ReadCache {
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                index: HashMap::new(),
                head_seq: 0,
                bytes: 0,
            }),
            budget,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn slot_bytes(s: &Slot) -> usize {
        s.key.len() + s.value.as_ref().map(|v| v.len()).unwrap_or(0) + 24
    }

    /// Record a value read from the DC.
    pub fn insert(&self, key: Bytes, value: Option<Bytes>, as_of_ts: u64) {
        let mut inner = self.inner.lock();
        let slot = Slot {
            key: key.clone(),
            value,
            as_of_ts,
        };
        inner.bytes += Self::slot_bytes(&slot);
        let seq = inner.head_seq + inner.ring.len() as u64;
        inner.ring.push_back(slot);
        inner.index.insert(key, seq);
        // Evict from the tail while over budget.
        while inner.bytes > self.budget && inner.ring.len() > 1 {
            let old = inner.ring.pop_front().expect("non-empty ring");
            inner.bytes -= Self::slot_bytes(&old);
            let old_seq = inner.head_seq;
            inner.head_seq += 1;
            // Only drop the index entry if it still points at this slot.
            if inner.index.get(&old.key) == Some(&old_seq) {
                inner.index.remove(&old.key);
            }
        }
    }

    /// Look up a key. Returns the cached value (possibly a cached miss)
    /// and the timestamp it was read as-of.
    pub fn lookup(&self, key: &[u8]) -> Option<(Option<Bytes>, u64)> {
        use std::sync::atomic::Ordering;
        let inner = self.inner.lock();
        let seq = inner.index.get(key).copied();
        let result = seq.and_then(|s| {
            let idx = (s - inner.head_seq) as usize;
            inner
                .ring
                .get(idx)
                .map(|slot| (slot.value.clone(), slot.as_of_ts))
        });
        drop(inner);
        if result.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Invalidate a key (on commit of a newer version).
    pub fn invalidate(&self, key: &[u8]) {
        let mut inner = self.inner.lock();
        inner.index.remove(key);
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Current payload bytes.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let c = ReadCache::new(1 << 20);
        c.insert(b("k"), Some(b("v")), 5);
        assert_eq!(c.lookup(b"k"), Some((Some(b("v")), 5)));
        assert_eq!(c.lookup(b"absent"), None);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn negative_caching() {
        let c = ReadCache::new(1 << 20);
        c.insert(b("gone"), None, 3);
        assert_eq!(c.lookup(b"gone"), Some((None, 3)));
    }

    #[test]
    fn newest_entry_wins() {
        let c = ReadCache::new(1 << 20);
        c.insert(b("k"), Some(b("old")), 1);
        c.insert(b("k"), Some(b("new")), 2);
        assert_eq!(c.lookup(b"k"), Some((Some(b("new")), 2)));
    }

    #[test]
    fn budget_evicts_oldest() {
        let c = ReadCache::new(200);
        for i in 0..20u32 {
            c.insert(
                Bytes::from(format!("key{i:02}")),
                Some(Bytes::from(vec![0u8; 20])),
                i as u64,
            );
        }
        assert!(c.approx_bytes() <= 200 + 60, "bytes {}", c.approx_bytes());
        assert_eq!(c.lookup(b"key00"), None, "oldest entry should be gone");
        assert!(c.lookup(b"key19").is_some(), "newest entry should remain");
    }

    #[test]
    fn invalidate_hides_entry() {
        let c = ReadCache::new(1 << 20);
        c.insert(b("k"), Some(b("v")), 1);
        c.invalidate(b"k");
        assert_eq!(c.lookup(b"k"), None);
    }

    #[test]
    fn stale_index_entries_are_safe() {
        // An entry re-inserted then tail-evicted must not corrupt lookups.
        let c = ReadCache::new(150);
        c.insert(b("a"), Some(Bytes::from(vec![1u8; 30])), 1);
        c.insert(b("b"), Some(Bytes::from(vec![2u8; 30])), 2);
        c.insert(b("a"), Some(Bytes::from(vec![3u8; 30])), 3); // re-insert
        for i in 0..10u32 {
            c.insert(
                Bytes::from(format!("fill{i}")),
                Some(Bytes::from(vec![0u8; 30])),
                10 + i as u64,
            );
        }
        // "a"'s newest copy may or may not survive, but lookups never panic
        // and never return the stale older copy.
        if let Some((Some(v), ts)) = c.lookup(b"a") {
            assert_eq!(ts, 3);
            assert_eq!(v[0], 3);
        }
    }
}
