//! Adversarial-input robustness for the wire protocol and the client.
//!
//! The decoder must never panic or over-allocate on hostile bytes —
//! truncations, bit flips, oversized length fields, garbage — and a client
//! whose server dies mid-pipeline must surface errors for every unanswered
//! in-flight request instead of hanging.

use dcs_server::protocol::{
    decode_frame, encode_to_vec, Frame, ProtoError, Request, Response, HEADER_LEN, MAX_PAYLOAD,
    STATS_VERSION,
};
use dcs_server::statsblock::{StatsBlock, StatsPayload, BLOCK_VERSION, SB_MRC, SB_REGISTRY};
use dcs_server::{Client, ClientConfig, ClientError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpListener;

fn sample_frames(rng: &mut SmallRng) -> Vec<Frame> {
    let key = |rng: &mut SmallRng| {
        let len = rng.gen_range(0..64);
        (0..len).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>()
    };
    vec![
        Frame::Request {
            id: rng.gen(),
            req: Request::Get { key: key(rng) },
        },
        Frame::Request {
            id: rng.gen(),
            req: Request::Put {
                key: key(rng),
                value: (0..rng.gen_range(0..512))
                    .map(|_| rng.gen::<u8>())
                    .collect(),
            },
        },
        Frame::Request {
            id: rng.gen(),
            req: Request::Delete { key: key(rng) },
        },
        Frame::Request {
            id: rng.gen(),
            req: Request::Scan {
                start: key(rng),
                limit: rng.gen(),
            },
        },
        Frame::Request {
            id: rng.gen(),
            req: Request::Rmw {
                key: key(rng),
                value: key(rng),
            },
        },
        Frame::Response {
            id: rng.gen(),
            resp: Response::Value(Some(key(rng))),
        },
        Frame::Response {
            id: rng.gen(),
            resp: Response::Err("oh no".into()),
        },
        Frame::Response {
            id: rng.gen(),
            resp: Response::Moved {
                epoch: rng.gen(),
                shard: rng.gen(),
            },
        },
        Frame::Request {
            id: rng.gen(),
            req: Request::Stats {
                version: STATS_VERSION,
            },
        },
        Frame::Response {
            id: rng.gen(),
            resp: Response::Stats(StatsPayload {
                blocks: vec![StatsBlock {
                    tag: SB_REGISTRY,
                    version: BLOCK_VERSION,
                    epoch: rng.gen(),
                    // A block body is arbitrary UTF-8 to the wire layer;
                    // include escapes and length variety.
                    json: format!(
                        "{{\"counters\":{{\"cost.mm_ops\": {}}},\"gauges\":{{}},\"x\":\"\\\"\\n\"}}",
                        rng.gen::<u64>()
                    ),
                }],
            }),
        },
    ]
}

/// Whatever bytes arrive, `decode_frame` returns a verdict — it must not
/// panic, loop, or allocate beyond `MAX_PAYLOAD`.
fn assert_decode_total(buf: &[u8]) {
    let mut consumed = 0usize;
    for _ in 0..buf.len() + 1 {
        match decode_frame(&buf[consumed..]) {
            Ok(Some((_, used))) => {
                assert!(used > 0, "progress must be made");
                consumed += used;
            }
            Ok(None) | Err(_) => return,
        }
    }
}

#[test]
fn truncated_frames_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xDEC0DE);
    for frame in sample_frames(&mut rng) {
        let bytes = encode_to_vec(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("decoded a complete frame from a truncation"),
                // A cut can land inside the checksum-covered payload already
                // delivered? No: a prefix is always "incomplete", never an
                // error, so partial reads keep the connection alive.
                Err(e) => panic!("truncation to {cut} bytes errored: {e:?}"),
            }
        }
        assert!(matches!(decode_frame(&bytes), Ok(Some(_))));
    }
}

#[test]
fn corrupted_frames_error_or_stall_but_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xBADB17);
    for frame in sample_frames(&mut rng) {
        let clean = encode_to_vec(&frame);
        for _ in 0..200 {
            let mut bytes = clean.clone();
            let flips = rng.gen_range(1..4);
            for _ in 0..flips {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1u8 << rng.gen_range(0..8);
            }
            assert_decode_total(&bytes);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x6A4BA6E);
    for _ in 0..500 {
        let len = rng.gen_range(0..256);
        let buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert_decode_total(&buf);
    }
}

#[test]
fn oversized_length_rejected_before_allocation() {
    // A header advertising a huge payload must be refused from the header
    // alone — the decoder cannot wait for (or allocate) gigabytes.
    let frame = encode_to_vec(&Frame::Request {
        id: 7,
        req: Request::Get { key: b"k".to_vec() },
    });
    let mut bytes = frame[..HEADER_LEN].to_vec();
    let huge = (MAX_PAYLOAD as u32 + 1).to_le_bytes();
    bytes[13..17].copy_from_slice(&huge);
    assert!(matches!(
        decode_frame(&bytes),
        Err(ProtoError::Oversized { .. })
    ));
}

#[test]
fn stats_unknown_version_rejected_not_panicked() {
    // The encoder happily writes any version; the decoder must refuse the
    // ones this build does not speak with a typed error, not a panic and
    // not a silently-wrong snapshot.
    for v in [0u8, 1, 7, 255] {
        let bytes = encode_to_vec(&Frame::Request {
            id: 42,
            req: Request::Stats { version: v },
        });
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::UnknownStatsVersion(v)),
            "version {v}"
        );
        // Every truncation of the same frame stays "incomplete".
        for cut in 0..bytes.len() {
            assert!(matches!(decode_frame(&bytes[..cut]), Ok(None)));
        }
    }
    // The version this build speaks round-trips.
    let bytes = encode_to_vec(&Frame::Request {
        id: 42,
        req: Request::Stats {
            version: STATS_VERSION,
        },
    });
    assert!(matches!(decode_frame(&bytes), Ok(Some(_))));
}

#[test]
fn stats_frames_survive_bit_flips_and_oversize() {
    let mut rng = SmallRng::seed_from_u64(0x57A75);
    let frames = [
        Frame::Request {
            id: 1,
            req: Request::Stats {
                version: STATS_VERSION,
            },
        },
        Frame::Response {
            id: 1,
            resp: Response::Stats(StatsPayload {
                blocks: vec![
                    StatsBlock {
                        tag: SB_REGISTRY,
                        version: BLOCK_VERSION,
                        epoch: 5,
                        json: "{\"counters\":{\"cost.ss_reads\": 3}}".into(),
                    },
                    StatsBlock {
                        tag: SB_MRC,
                        version: BLOCK_VERSION,
                        epoch: 5,
                        json: "{\"consumers\": []}".into(),
                    },
                ],
            }),
        },
    ];
    for frame in &frames {
        let clean = encode_to_vec(frame);
        for _ in 0..300 {
            let mut bytes = clean.clone();
            let flips = rng.gen_range(1..4);
            for _ in 0..flips {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1u8 << rng.gen_range(0..8);
            }
            assert_decode_total(&bytes);
        }
        // A STATS header advertising a multi-gigabyte snapshot is refused
        // from the header alone.
        let mut bytes = clean[..HEADER_LEN].to_vec();
        bytes[13..17].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Oversized { .. })
        ));
    }
}

/// End-to-end STATS scrape against a real server: the reply is the JSON
/// registry snapshot, served at the connection level, and it reflects the
/// traffic that preceded it.
#[test]
fn stats_scrape_round_trips_through_a_live_server() {
    let backends = dcs_core::BackendKind::Caching.build_shards(1);
    let server = dcs_server::Server::start(
        backends,
        dcs_server::Partitioner::single(),
        dcs_server::ServerConfig {
            durable_wal: false,
            ..dcs_server::ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.put(b"k", b"v").unwrap();
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    let json = client.stats().unwrap();
    for needle in [
        "\"stats_epoch\"",
        "\"registry\"",
        "\"counters\"",
        "\"histograms\"",
        "server.read_latency_nanos",
        "server.mailbox_depth",
        "\"server.puts\":1",
        "\"mrc\"",
        "\"consumers\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    // The raw payload exposes the per-block epoch framing.
    let payload = client.stats_payload().unwrap();
    assert!(payload.block(SB_REGISTRY).is_some());
    assert!(payload.block(SB_MRC).is_some());
    assert!(!payload.epoch_skew());
    client.close();
    server.shutdown();
}

/// A hostile server that answers *every* request with `MOVED` at an
/// absurd epoch: the client must chase the redirect a bounded number of
/// times, record the highest epoch it was told about, and then surface a
/// typed error — never spin forever or panic on an epoch from the
/// future.
#[test]
fn endless_moved_redirects_error_out_bounded() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 4096];
        let mut consumed = 0usize;
        loop {
            let n = match stream.read(&mut tmp) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            buf.extend_from_slice(&tmp[..n]);
            while let Ok(Some((Frame::Request { id, .. }, used))) = decode_frame(&buf[consumed..]) {
                consumed += used;
                let reply = encode_to_vec(&Frame::Response {
                    id,
                    resp: Response::Moved {
                        epoch: u64::MAX,
                        shard: 9_999,
                    },
                });
                if stream.write_all(&reply).is_err() {
                    return;
                }
            }
        }
    });

    let client = Client::connect(
        addr,
        ClientConfig {
            connections: 1,
            moved_retries: 4,
            backoff_base_micros: 1,
            backoff_cap_micros: 10,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    match client.put(b"k", b"v") {
        Err(ClientError::Moved { epoch, shard }) => {
            assert_eq!(epoch, u64::MAX);
            assert_eq!(shard, 9_999);
        }
        other => panic!("expected a bounded MOVED failure, got {other:?}"),
    }
    // The client remembered the newest epoch it was redirected toward.
    assert_eq!(client.known_map_epoch(), u64::MAX);
    client.close();
    drop(server);
}

/// A hand-rolled server that waits for the whole pipeline to arrive,
/// answers exactly one request, and drops the connection — leaving the
/// other fifteen in flight.
#[test]
fn kill_mid_pipeline_fails_all_unanswered_requests() {
    const PIPELINE: usize = 16;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 4096];
        let mut ids = Vec::new();
        let mut consumed = 0usize;
        // Collect all sixteen requests first, so the client can't observe
        // the connection dying while it is still submitting.
        while ids.len() < PIPELINE {
            let n = stream.read(&mut tmp).unwrap();
            assert!(n > 0, "client should still be writing");
            buf.extend_from_slice(&tmp[..n]);
            while let Ok(Some((Frame::Request { id, .. }, used))) = decode_frame(&buf[consumed..]) {
                ids.push(id);
                consumed += used;
            }
        }
        let reply = encode_to_vec(&Frame::Response {
            id: ids[0],
            resp: Response::Ok,
        });
        stream.write_all(&reply).unwrap();
        // Drop the socket with the rest of the pipeline in flight.
    });

    let client = Client::connect(
        addr,
        ClientConfig {
            connections: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mut tickets = Vec::new();
    for i in 0..PIPELINE {
        tickets.push(
            client
                .submit(Request::Put {
                    key: format!("k{i}").into_bytes(),
                    value: vec![0; 8],
                })
                .unwrap(),
        );
    }
    server.join().unwrap();

    let mut answered = 0;
    let mut failed = 0;
    for ticket in tickets {
        match ticket.wait() {
            Ok(Response::Ok) => answered += 1,
            Err(ClientError::ConnectionClosed) => failed += 1,
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(answered, 1, "the fake server answered exactly one request");
    assert_eq!(failed, 15, "every unanswered in-flight request must error");

    // The pool is dead; new submissions fail fast instead of hanging.
    assert!(matches!(
        client.submit(Request::Get { key: b"x".to_vec() }),
        Err(ClientError::ConnectionClosed) | Err(ClientError::Io(_))
    ));
}

/// Same contract against the real server's unclean `abort`: whatever was
/// in flight resolves (answer or error) — nothing hangs.
#[test]
fn abort_resolves_every_inflight_ticket() {
    let backends = dcs_core::BackendKind::Caching.build_shards(1);
    let server = dcs_server::Server::start(
        backends,
        dcs_server::Partitioner::single(),
        dcs_server::ServerConfig {
            durable_wal: false,
            ..dcs_server::ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 2,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mut tickets = Vec::new();
    for i in 0..256u64 {
        tickets.push(
            client
                .submit(Request::Put {
                    key: i.to_be_bytes().to_vec(),
                    value: vec![1; 32],
                })
                .unwrap(),
        );
    }
    server.abort();
    let (done, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut outcomes = (0, 0);
        for t in tickets {
            match t.wait() {
                Ok(_) => outcomes.0 += 1,
                Err(_) => outcomes.1 += 1,
            }
        }
        done.send(outcomes).unwrap();
    });
    let (answered, failed) = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("tickets must resolve, not hang");
    assert_eq!(answered + failed, 256);
}
