//! Wire-level end-to-end tests: multi-shard serving, pipelining across
//! connections, BUSY backpressure under flood, drain-and-flush shutdown
//! with zero dropped acknowledged writes, and the existing workload
//! `Runner` driving a server over TCP through the client's `KvStore` impl.

use dcs_core::BackendKind;
use dcs_server::protocol::{Request, Response};
use dcs_server::{
    Client, ClientConfig, MissMode, Partitioner, Server, ServerConfig, ShardBackend, ShardConfig,
};
use dcs_workload::{
    keys, AsyncGet, AsyncKvStore, CompletedGet, KvStore, Runner, StoreFailure, WorkloadSpec,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_caching(
    shards: usize,
    records: u64,
) -> (Server, Vec<Arc<dyn KvStore + Send + Sync>>, Partitioner) {
    let backends = BackendKind::Caching.build_shards(shards);
    let partitioner = if shards == 1 {
        Partitioner::single()
    } else {
        Partitioner::from_splits(keys::range_splits(records, shards))
    };
    let server = Server::start(
        backends.clone(),
        partitioner.clone(),
        ServerConfig::default(),
    )
    .expect("start server");
    (server, backends, partitioner)
}

/// The acceptance scenario: ≥4 shards, multiple pipelined connections,
/// drain shutdown, then every acknowledged write re-read from the
/// backends.
#[test]
fn four_shards_pipelined_no_acked_write_lost() {
    const RECORDS: u64 = 2_000;
    let (server, backends, partitioner) = start_caching(4, RECORDS);
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 3,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // Pipeline a burst of writes and reads across the whole key space so
    // every shard sees traffic, without waiting between submissions.
    let mut write_tickets = Vec::new();
    for id in 0..RECORDS {
        let key = keys::encode(id).to_vec();
        let value = keys::value_for(id, 1, 64);
        write_tickets.push((id, client.submit(Request::Put { key, value }).unwrap()));
    }
    let mut acked: HashSet<u64> = HashSet::new();
    for (id, t) in write_tickets {
        match t.wait().unwrap() {
            Response::Ok => {
                acked.insert(id);
            }
            Response::Busy => {} // rejected, not acked: allowed to be absent
            other => panic!("write {id}: {other:?}"),
        }
    }

    // An ack means applied: reads pipelined after the acks must see every
    // acknowledged write, from any connection in the pool.
    let mut read_tickets = Vec::new();
    for id in (0..RECORDS).step_by(7) {
        let key = keys::encode(id).to_vec();
        read_tickets.push((id, client.submit(Request::Get { key }).unwrap()));
    }
    for (id, t) in read_tickets {
        match t.wait().unwrap() {
            Response::Value(v) => {
                if acked.contains(&id) {
                    let v = v.unwrap_or_else(|| panic!("read {id}: acked write not visible"));
                    assert_eq!(keys::parse_value(&v), Some((id, 1)));
                }
            }
            Response::Busy => {}
            other => panic!("read {id}: {other:?}"),
        }
    }

    // Cross-shard scan over the wire: counts records across split keys.
    let scanned = client.scan(&keys::encode(0), RECORDS as u32).unwrap();
    assert_eq!(scanned as u64, acked.len() as u64);

    client.close();
    let report = server.shutdown();

    // All four shards actually served traffic...
    assert_eq!(report.shards.len(), 4);
    for (i, s) in report.shards.iter().enumerate() {
        assert!(s.total_ops() > 0, "shard {i} idle");
        assert!(s.group_commits > 0, "shard {i} never group-committed");
    }
    // ...group commit actually batched (fewer commits than records)...
    let commits: u64 = report.shards.iter().map(|s| s.group_commits).sum();
    let committed: u64 = report
        .shards
        .iter()
        .map(|s| s.group_committed_records)
        .sum();
    assert_eq!(committed, acked.len() as u64, "every acked write logged");
    assert!(commits < committed, "group commit should batch writes");
    // ...and zero acknowledged writes were dropped by the drain shutdown.
    for &id in &acked {
        let key = keys::encode(id);
        let got = backends[partitioner.shard_of(&key)]
            .kv_get(&key)
            .unwrap()
            .unwrap_or_else(|| panic!("acked write {id} lost after shutdown"));
        assert_eq!(keys::parse_value(&got), Some((id, 1)));
    }
}

/// A deliberately slow store: every op takes ~1ms, so a flood through a
/// tiny mailbox must hit the BUSY path.
struct SlowStore(std::sync::Mutex<std::collections::BTreeMap<Vec<u8>, Vec<u8>>>);

impl KvStore for SlowStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        std::thread::sleep(std::time::Duration::from_millis(1));
        Ok(self.0.lock().unwrap().get(key).cloned())
    }
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        std::thread::sleep(std::time::Duration::from_millis(1));
        self.0.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.lock().unwrap().remove(&key);
        Ok(())
    }
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .lock()
            .unwrap()
            .range(start.to_vec()..)
            .take(limit)
            .count())
    }
}

#[test]
fn flood_gets_busy_not_hangs_and_accepted_ops_all_answered() {
    let backends: Vec<Arc<dyn KvStore + Send + Sync>> =
        vec![Arc::new(SlowStore(Default::default()))];
    let server = Server::start(
        backends,
        Partitioner::single(),
        ServerConfig {
            shard: ShardConfig {
                mailbox_capacity: 4,
                batch_max: 2,
                ..ShardConfig::default()
            },
            durable_wal: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    const FLOOD: usize = 200;
    let mut tickets = Vec::new();
    for i in 0..FLOOD {
        tickets.push(
            client
                .submit(Request::Put {
                    key: format!("k{i:04}").into_bytes(),
                    value: vec![7; 16],
                })
                .unwrap(),
        );
    }
    let mut ok = 0usize;
    let mut busy = 0usize;
    for t in tickets {
        match t.wait().unwrap() {
            Response::Ok => ok += 1,
            Response::Busy => busy += 1,
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(ok + busy, FLOOD, "every request answered");
    assert!(
        busy > 0,
        "a 1ms/op store behind a 4-deep mailbox must shed load"
    );
    assert!(ok > 0, "some requests must get through");

    client.close();
    let report = server.shutdown();
    assert_eq!(report.shards[0].busy_rejections, busy as u64);
    let mb = &report.mailboxes[0];
    assert_eq!(mb.accepted, mb.drained, "no accepted request dropped");
    assert!(mb.depth_high_water() <= 4);
}

/// Async test double with a deterministic miss set: keys starting with
/// `cold` take a wall-clock device delay; everything else is served from
/// memory. Lets the wire-level tests control exactly which GETs miss.
struct ColdKeyStore {
    map: std::sync::Mutex<std::collections::BTreeMap<Vec<u8>, Vec<u8>>>,
    delay: Duration,
    next_token: std::sync::atomic::AtomicU64,
    pending: std::sync::Mutex<Vec<(u64, Vec<u8>, Instant)>>,
}

impl ColdKeyStore {
    fn new(delay: Duration) -> Self {
        ColdKeyStore {
            map: Default::default(),
            delay,
            next_token: std::sync::atomic::AtomicU64::new(1),
            pending: Default::default(),
        }
    }
}

impl KvStore for ColdKeyStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        if key.starts_with(b"cold") {
            std::thread::sleep(self.delay);
        }
        Ok(self.map.lock().unwrap().get(key).cloned())
    }
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.map.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.map.lock().unwrap().remove(&key);
        Ok(())
    }
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .map
            .lock()
            .unwrap()
            .range(start.to_vec()..)
            .take(limit)
            .count())
    }
}

impl AsyncKvStore for ColdKeyStore {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        if key.starts_with(b"cold") {
            let token = self
                .next_token
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.pending
                .lock()
                .unwrap()
                .push((token, key.to_vec(), Instant::now() + self.delay));
            Ok(AsyncGet::Pending(token))
        } else {
            Ok(AsyncGet::Ready(self.map.lock().unwrap().get(key).cloned()))
        }
    }
    fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize {
        let mut pending = self.pending.lock().unwrap();
        let now = Instant::now();
        let mut reaped = 0;
        pending.retain(|(token, key, ready)| {
            if *ready <= now {
                out.push(CompletedGet {
                    token: *token,
                    result: Ok(self.map.lock().unwrap().get(key).cloned()),
                });
                reaped += 1;
                false
            } else {
                true
            }
        });
        reaped
    }
    fn kv_inflight(&self) -> usize {
        self.pending.lock().unwrap().len()
    }
}

fn start_cold_key_server(miss_mode: MissMode, delay: Duration) -> (Server, Arc<ColdKeyStore>) {
    let store = Arc::new(ColdKeyStore::new(delay));
    store.kv_put(b"coldA".to_vec(), b"polar".to_vec()).unwrap();
    store.kv_put(b"hot".to_vec(), b"lava".to_vec()).unwrap();
    let server = Server::start_with(
        vec![ShardBackend {
            kv: store.clone(),
            async_kv: Some(store.clone()),
        }],
        Partitioner::single(),
        ServerConfig {
            shard: ShardConfig {
                miss_mode,
                ..ShardConfig::default()
            },
            durable_wal: false,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, store)
}

/// The acceptance scenario for the async miss path, over the wire: a GET
/// that misses to a slow device must not delay pipelined GETs that hit,
/// on the *same shard and connection*, and the miss itself is still
/// answered correctly (out of order, by request id).
#[test]
fn slow_miss_does_not_block_hits_over_the_wire() {
    const DELAY: Duration = Duration::from_millis(300);
    let (server, store) = start_cold_key_server(MissMode::Async, DELAY);
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let t0 = Instant::now();
    let cold = client
        .submit(Request::Get {
            key: b"coldA".to_vec(),
        })
        .unwrap();
    let hits: Vec<_> = (0..8)
        .map(|_| {
            client
                .submit(Request::Get {
                    key: b"hot".to_vec(),
                })
                .unwrap()
        })
        .collect();
    for t in hits {
        assert_eq!(t.wait().unwrap(), Response::Value(Some(b"lava".to_vec())));
    }
    let hits_done = t0.elapsed();
    assert!(
        hits_done < DELAY,
        "hits pipelined behind a {DELAY:?} miss took {hits_done:?} — the miss blocked the shard"
    );
    assert_eq!(
        cold.wait().unwrap(),
        Response::Value(Some(b"polar".to_vec()))
    );
    assert!(t0.elapsed() >= DELAY, "miss answered before its fetch");

    client.close();
    let report = server.shutdown();
    assert_eq!(report.shards[0].misses, 1);
    assert_eq!(report.shards[0].miss_latency.count, 1);
    assert_eq!(store.kv_inflight(), 0);
}

/// The blocking baseline of the same scenario: in sync miss mode the hits
/// queued behind the miss wait out the whole device delay.
#[test]
fn sync_miss_mode_blocks_queued_hits() {
    const DELAY: Duration = Duration::from_millis(150);
    let (server, _store) = start_cold_key_server(MissMode::Sync, DELAY);
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let t0 = Instant::now();
    let cold = client
        .submit(Request::Get {
            key: b"coldA".to_vec(),
        })
        .unwrap();
    let hit = client
        .submit(Request::Get {
            key: b"hot".to_vec(),
        })
        .unwrap();
    assert_eq!(hit.wait().unwrap(), Response::Value(Some(b"lava".to_vec())));
    assert!(
        t0.elapsed() >= DELAY,
        "a hit behind a blocking miss cannot finish before the device"
    );
    assert_eq!(
        cold.wait().unwrap(),
        Response::Value(Some(b"polar".to_vec()))
    );

    client.close();
    let report = server.shutdown();
    assert_eq!(report.shards[0].misses, 1);
}

/// The pooled client is a `KvStore`, so the stock workload runner can
/// drive a live server over TCP with no special casing.
#[test]
fn workload_runner_drives_server_over_the_wire() {
    const RECORDS: u64 = 400;
    let (server, _backends, _partitioner) = start_caching(2, RECORDS);
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            connections: 2,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let spec = WorkloadSpec::ycsb('f', RECORDS, 48, 11);
    let runner = Runner::new(spec);
    assert_eq!(runner.load(&client).unwrap(), RECORDS);
    let counts = runner.run(&client, 2_000).unwrap();
    assert_eq!(counts.total(), 2_000);
    assert!(counts.read_hits as f64 / counts.reads as f64 > 0.95);

    client.close();
    let report = server.shutdown();
    let served: u64 = report.shards.iter().map(|s| s.total_ops()).sum();
    assert!(served >= 2_000 + RECORDS);
}
