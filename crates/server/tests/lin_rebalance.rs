//! Linearizability of wire-level reads and writes racing online range
//! migrations.
//!
//! Client threads hammer a small key pool through the pipelined TCP
//! client while the main thread migrates the range holding that pool
//! between shards — there and back — mid-window. Every window's history
//! is then checked with `dcs-lin`'s WGL checker under the per-key
//! register model: whatever the interleaving of copy, tail replay,
//! freeze bounces (`MOVED` retried inside the client), and map installs,
//! each operation must still take effect atomically somewhere between
//! its invocation and its response. A write acked at the source but lost
//! in the handoff, or a stale read served from the old owner after the
//! install, shows up as a non-linearizable history here.

use dcs_core::BackendKind;
use dcs_lin::{ConcurrentMap, Recorded, ScanSemantics};
use dcs_server::{Client, ClientConfig, Partitioner, Server, ServerConfig};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

/// The server seen through its own client: the unit under test is the
/// whole serving stack (protocol, mailboxes, shard workers, write gate,
/// map routing), not a single in-process structure.
struct WireMap(Arc<Client>);

impl ConcurrentMap for WireMap {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("wire put");
    }

    fn get(&self, key: &[u8]) -> Option<bytes::Bytes> {
        self.0.get(key).expect("wire get").map(bytes::Bytes::from)
    }

    fn delete(&self, key: &[u8]) {
        self.0.delete(key).expect("wire delete");
    }

    fn scan(&self, _start: &[u8], _end: Option<&[u8]>) -> Vec<(bytes::Bytes, bytes::Bytes)> {
        // The wire protocol's scan returns a count, not entries; these
        // windows only record point ops, so this is never exercised.
        Vec::new()
    }

    fn scan_semantics(&self) -> ScanSemantics {
        ScanSemantics::PerKey
    }

    fn name(&self) -> &'static str {
        "dcs-server-wire"
    }
}

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 12;
const ROUNDS: usize = 8;

/// One window: client threads do random gets/puts/deletes over a 4-key
/// pool private to this round while the main thread moves the pool's
/// range to the other shard and back. History checked per window.
#[test]
fn wire_ops_racing_range_moves_are_linearizable() {
    let backends = BackendKind::Caching.build_shards(2);
    // All window keys ("w…") sort above "m": they start on shard 1 and
    // ping-pong between the shards as the test migrates their range.
    let server = Server::start(
        backends,
        Partitioner::from_splits(vec![b"m".to_vec()]),
        ServerConfig::default(),
    )
    .expect("start server");
    let client = Arc::new(
        Client::connect(
            server.addr(),
            ClientConfig {
                connections: 2,
                ..ClientConfig::default()
            },
        )
        .expect("connect"),
    );
    let rec = Arc::new(Recorded::new(WireMap(client.clone())));

    for round in 0..ROUNDS {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64((round * 131 + t) as u64);
                    for i in 0..OPS_PER_THREAD {
                        let key = format!("w{round}-k{}", rng.gen_range(0..4u32));
                        match rng.gen_range(0..10u32) {
                            0..=4 => {
                                let _ = rec.get(t, key.as_bytes());
                            }
                            5..=8 => {
                                let value = format!("r{round}t{t}i{i}");
                                rec.put(t, key.as_bytes(), value.as_bytes());
                            }
                            _ => rec.delete(t, key.as_bytes()),
                        }
                    }
                });
            }
            // Mid-window, move the range owning the "w…" pool to the
            // other shard, then move it back: two full copy/freeze/
            // replay/install handoffs race the client threads above.
            let there = {
                let map = server.router().map().load();
                let range = map.range_of(b"w");
                let owner = map.owner_of_range(range).expect("owned range");
                server
                    .migrate_range(range, 1 - owner)
                    .expect("migrate there");
                1 - owner
            };
            let map = server.router().map().load();
            let range = map.range_of(b"w");
            assert_eq!(map.owner_of_range(range), Some(there));
            server
                .migrate_range(range, 1 - there)
                .expect("migrate back");
        });
        rec.check(&format!("rebalance round {round}"));
    }

    // The moves really happened online: each round installs two epochs.
    assert!(
        server.router().map().load().epoch() >= (ROUNDS as u64) * 2,
        "migrations did not install new map epochs"
    );
    client.close();
    server.shutdown();
}
