//! The TCP front-end: accept loop, per-connection reader/writer threads,
//! request routing into shard mailboxes, and drain-and-flush shutdown.
//!
//! Thread model per connection: a **reader** thread decodes frames off the
//! socket and routes each request to the owning shard's mailbox (answering
//! BUSY itself when the mailbox is full), and a **writer** thread drains an
//! outbox of encoded response frames onto the socket. Responses carry the
//! client's request id, so they may be delivered out of order relative to
//! other requests — that is what makes pipelining useful.
//!
//! Shutdown ([`Server::shutdown`]) is a drain: stop accepting, half-close
//! the read side of every connection (so no new requests arrive but
//! responses still flow), close the shard mailboxes, and join the shard
//! workers — which drain every accepted request and issue a final WAL
//! barrier. Every acknowledged write is durable and every accepted request
//! answered before `shutdown` returns. [`Server::abort`] is the unclean
//! variant (sockets dropped, no drain) used to test client-side failure
//! handling.

use crate::mailbox::{Mailbox, MailboxStats};
use crate::metrics::ShardSnapshot;
use crate::protocol::{decode_frame, encode_to_vec, Frame, ProtoError, Request, Response};
use crate::rebalance::{MigrationStats, RebalanceConfig, Rebalancer};
use crate::shard::{Mail, Partitioner, ReplySink, Shard, ShardConfig};
use crate::statsblock::{StatsBlock, StatsPayload, BLOCK_VERSION, SB_MRC, SB_REGISTRY};
use dcs_rebalance::{PartitionMap, Router};
use dcs_tc::RecoveryLog;
use dcs_workload::{AsyncKvStore, KvStore};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-shard tunables (mailbox capacity, batch size).
    pub shard: ShardConfig,
    /// Give each shard a flash-device-backed WAL (in-memory otherwise).
    pub durable_wal: bool,
    /// Background rebalancer (disabled by default: static placement is
    /// the baseline the on/off CI comparison measures against).
    pub rebalance: RebalanceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shard: ShardConfig::default(),
            durable_wal: true,
            rebalance: RebalanceConfig::default(),
        }
    }
}

/// One shard's store handles: the blocking [`KvStore`] plus, when the
/// store supports submit/poll reads, the [`AsyncKvStore`] over the same
/// instance (two fields because `Arc<dyn AsyncKvStore>` cannot be upcast
/// on this toolchain). Mirrors `dcs_core::BuiltBackend` without making
/// this crate depend on the concrete store types.
pub struct ShardBackend {
    /// Blocking operations (always required).
    pub kv: Arc<dyn KvStore + Send + Sync>,
    /// Non-blocking point reads, when available; enables the shard's
    /// miss-mode machinery.
    pub async_kv: Option<Arc<dyn AsyncKvStore + Send + Sync>>,
}

impl ShardBackend {
    /// A blocking-only backend (GETs always take the synchronous path).
    pub fn blocking(kv: Arc<dyn KvStore + Send + Sync>) -> Self {
        ShardBackend { kv, async_kv: None }
    }
}

/// Final accounting returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-shard execution counters and latency summaries.
    pub shards: Vec<ShardSnapshot>,
    /// Per-shard mailbox counters.
    pub mailboxes: Vec<MailboxStats>,
}

/// Per-connection shared state; the shard side sees it as a [`ReplySink`].
struct ConnState {
    /// Encoded response frames awaiting the writer thread. Effectively
    /// unbounded: depth is limited by the shard mailboxes feeding it.
    outbox: Mailbox<Vec<u8>>,
    /// Requests routed but not yet answered.
    inflight: AtomicU64,
    /// Reader saw EOF (or shutdown half-closed the read side).
    eof: AtomicBool,
    /// Writer hit a socket error; further replies are dropped.
    dead: AtomicBool,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            outbox: Mailbox::new(usize::MAX >> 1),
            inflight: AtomicU64::new(0),
            eof: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }

    /// One routed request finished; close the outbox once the reader is
    /// gone and nothing is in flight (lets the writer flush and exit).
    fn finish_one(&self) {
        let was = self.inflight.fetch_sub(1, Ordering::SeqCst);
        if was == 1 && self.eof.load(Ordering::SeqCst) {
            self.outbox.close();
        }
    }

    fn reader_done(&self) {
        self.eof.store(true, Ordering::SeqCst);
        if self.inflight.load(Ordering::SeqCst) == 0 {
            self.outbox.close();
        }
    }
}

impl ReplySink for ConnState {
    fn deliver(&self, id: u64, resp: Response) {
        if !self.dead.load(Ordering::Relaxed) {
            let bytes = encode_to_vec(&Frame::Response { id, resp });
            // Closed/full outbox means the connection is going away; the
            // client observes that as a connection error instead.
            let _ = self.outbox.send(bytes);
        }
        self.finish_one();
    }
}

/// Live connections registered by the accept loop, so `shutdown`/`abort`
/// can reach every socket.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, Arc<ConnState>)>>>;

/// A running sharded server bound to a local TCP port.
pub struct Server {
    listener_addr: std::net::SocketAddr,
    shards: Vec<Arc<Shard>>,
    backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>>,
    partitioner: Arc<Partitioner>,
    /// The shared placement surface: versioned partition map, per-shard
    /// write gates, per-range heat. All shards and the connection
    /// readers route through it.
    router: Arc<Router>,
    rebalancer: Option<Rebalancer>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    conns: ConnRegistry,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` and start serving `backends` (one per shard
    /// of `partitioner`) through the blocking read path.
    pub fn start(
        backends: Vec<Arc<dyn KvStore + Send + Sync>>,
        partitioner: Partitioner,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Self::start_with(
            backends.into_iter().map(ShardBackend::blocking).collect(),
            partitioner,
            config,
        )
    }

    /// [`Server::start`] with full shard backends: stores that supply an
    /// async handle get submit/poll GETs, governed by
    /// [`ShardConfig::miss_mode`](crate::shard::ShardConfig::miss_mode).
    pub fn start_with(
        backends: Vec<ShardBackend>,
        partitioner: Partitioner,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert_eq!(
            backends.len(),
            partitioner.shards(),
            "one backend per shard"
        );
        let mut async_handles = Vec::with_capacity(backends.len());
        let mut kv_backends = Vec::with_capacity(backends.len());
        for b in backends {
            kv_backends.push(b.kv);
            async_handles.push(b.async_kv);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let listener_addr = listener.local_addr()?;
        let backends = Arc::new(kv_backends);
        let partitioner = Arc::new(partitioner);
        // One router for the whole server: its epoch-0 map mirrors the
        // static partitioner; migrations install successors.
        let router = Arc::new(Router::new(
            PartitionMap::contiguous(partitioner.splits().to_vec()),
            backends.len(),
        ));
        let mut shards = Vec::with_capacity(backends.len());
        let mut shard_threads = Vec::with_capacity(backends.len());
        for (i, async_kv) in async_handles.into_iter().enumerate() {
            let wal = if config.durable_wal {
                let device = dcs_flashsim::FlashDevice::new(dcs_flashsim::DeviceConfig {
                    segment_count: 4096,
                    ..dcs_flashsim::DeviceConfig::small_test()
                });
                Arc::new(RecoveryLog::on_device(Arc::new(device)))
            } else {
                Arc::new(RecoveryLog::in_memory())
            };
            let shard = Arc::new(
                Shard::new(i, &config.shard, backends.clone(), partitioner.clone(), wal)
                    .with_async_backend(async_kv)
                    .with_router(router.clone()),
            );
            let worker = shard.clone();
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("dcs-shard-{i}"))
                    .spawn(move || worker.run())?,
            );
            shards.push(shard);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let stop = stop.clone();
            let conns = conns.clone();
            let conn_threads = conn_threads.clone();
            let shards = shards.clone();
            let router = router.clone();
            std::thread::Builder::new()
                .name("dcs-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { break };
                        stream.set_nodelay(true).ok();
                        let state = Arc::new(ConnState::new());
                        conns
                            .lock()
                            .unwrap()
                            .push((stream.try_clone().expect("clone stream"), state.clone()));
                        let mut handles = Vec::with_capacity(2);
                        // Reader: decode + route.
                        {
                            let stream = stream.try_clone().expect("clone stream");
                            let state = state.clone();
                            let shards = shards.clone();
                            let router = router.clone();
                            handles.push(
                                std::thread::Builder::new()
                                    .name("dcs-conn-rd".into())
                                    .spawn(move || read_loop(stream, &state, &shards, &router))
                                    .expect("spawn reader"),
                            );
                        }
                        // Writer: drain outbox onto the socket.
                        {
                            let state = state.clone();
                            handles.push(
                                std::thread::Builder::new()
                                    .name("dcs-conn-wr".into())
                                    .spawn(move || write_loop(stream, &state))
                                    .expect("spawn writer"),
                            );
                        }
                        conn_threads.lock().unwrap().extend(handles);
                    }
                })?
        };

        let rebalancer = if config.rebalance.enabled {
            Some(Rebalancer::spawn(
                config.rebalance.clone(),
                router.clone(),
                shards.clone(),
            )?)
        } else {
            None
        };

        Ok(Server {
            listener_addr,
            shards,
            backends,
            partitioner,
            router,
            rebalancer,
            stop,
            accept_thread: Some(accept_thread),
            shard_threads,
            conns,
            conn_threads,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.listener_addr
    }

    /// The per-shard backend stores (e.g. for post-shutdown verification).
    pub fn backends(&self) -> Arc<Vec<Arc<dyn KvStore + Send + Sync>>> {
        self.backends.clone()
    }

    /// The range partitioner the server started from (epoch 0; the live
    /// placement is [`Server::router`]'s map).
    pub fn partitioner(&self) -> Arc<Partitioner> {
        self.partitioner.clone()
    }

    /// The live placement surface: versioned map, write gates, heat.
    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// Move `range` of the current map to shard `target`, online, while
    /// the server keeps serving. Test and operator hook; the background
    /// rebalancer calls the same engine.
    pub fn migrate_range(&self, range: usize, target: usize) -> Result<MigrationStats, String> {
        crate::rebalance::migrate_range(&self.router, &self.shards, range, target)
    }

    /// The live shards (metrics access while serving).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the blocking accept() so the thread observes the flag.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn report(&self) -> ServerReport {
        ServerReport {
            shards: self
                .shards
                .iter()
                .map(|s| s.metrics().snapshot(s.mailbox().stats().depth_high_water()))
                .collect(),
            mailboxes: self.shards.iter().map(|s| s.mailbox().stats()).collect(),
        }
    }

    /// Graceful drain: every accepted request is answered, every
    /// acknowledged write durable, before this returns.
    pub fn shutdown(mut self) -> ServerReport {
        // Stop the rebalancer first: no new migrations may start while
        // the shard workers drain toward their final WAL barrier.
        if let Some(mut r) = self.rebalancer.take() {
            r.stop();
        }
        self.stop_accepting();
        // Half-close read sides: readers see EOF, no new requests arrive,
        // but in-flight responses still reach the client.
        for (stream, _) in self.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Close mailboxes; workers drain what was accepted, group-commit,
        // and exit through the final WAL barrier.
        for shard in &self.shards {
            shard.mailbox().close();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // Readers exit on EOF, writers once each outbox closes after the
        // last in-flight reply.
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        let report = self.report();
        self.conns.lock().unwrap().clear();
        report
    }

    /// Unclean stop: sockets are torn down immediately and unanswered
    /// requests are simply never answered. For testing client failure
    /// paths.
    pub fn abort(mut self) -> ServerReport {
        if let Some(mut r) = self.rebalancer.take() {
            r.stop();
        }
        self.stop_accepting();
        for (stream, state) in self.conns.lock().unwrap().iter() {
            state.dead.store(true, Ordering::SeqCst);
            state.outbox.close();
            let _ = stream.shutdown(Shutdown::Both);
        }
        for shard in &self.shards {
            shard.mailbox().close();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        let report = self.report();
        self.conns.lock().unwrap().clear();
        report
    }
}

fn read_loop(
    mut stream: TcpStream,
    state: &Arc<ConnState>,
    shards: &[Arc<Shard>],
    router: &Router,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut tmp = [0u8; 64 * 1024];
    let mut consumed = 0usize;
    'io: loop {
        match stream.read(&mut tmp) {
            Ok(0) | Err(_) => break 'io,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
        }
        loop {
            match decode_frame(&buf[consumed..]) {
                Ok(Some((frame, used))) => {
                    consumed += used;
                    match frame {
                        Frame::Request { id, req } => {
                            state.inflight.fetch_add(1, Ordering::SeqCst);
                            // STATS is answered here on the connection: a
                            // scrape must work even when every shard
                            // mailbox is refusing with BUSY.
                            if matches!(req, Request::Stats { .. }) {
                                state.deliver(id, Response::Stats(stats_payload(shards, router)));
                                continue;
                            }
                            // Route by the live map (not the static
                            // partitioner) and feed the per-range heat
                            // counters the rebalancer's policy reads.
                            let map = router.map().load();
                            let range = map.range_of(req.routing_key());
                            router.heat().record(&map, range);
                            let idx = map.owner_of_range(range).unwrap_or(0);
                            let Some(shard) = shards.get(idx) else {
                                state.deliver(
                                    id,
                                    Response::Err(format!("no shard {idx} for range {range}")),
                                );
                                continue;
                            };
                            shard.offer(Mail {
                                id,
                                req,
                                reply: state.clone() as Arc<dyn ReplySink>,
                                enqueued: dcs_telemetry::now_nanos(),
                            });
                        }
                        // A client has no business sending response frames;
                        // treat it like any other framing corruption.
                        Frame::Response { .. } => break 'io,
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable: we cannot trust any later
                    // byte boundary. Tell the client (best effort, id 0)
                    // and close.
                    report_proto_error(state, &e);
                    break 'io;
                }
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
            consumed = 0;
        }
    }
    let _ = stream.shutdown(Shutdown::Read);
    state.reader_done();
}

/// The STATS response: one sub-block per telemetry domain, each stamped
/// with the partition-map epoch current when *that* block was captured.
/// A rebalance committing between the two captures shows up as epoch
/// skew in the payload — the client rescrapes — instead of a silently
/// inconsistent merge.
pub(crate) fn stats_payload(shards: &[Arc<Shard>], router: &Router) -> StatsPayload {
    let registry_epoch = router.map().load().epoch();
    let registry_json = stats_json(shards, router);
    let mrc_epoch = router.map().load().epoch();
    let mrc_json = dcs_telemetry::mrc().to_json();
    StatsPayload {
        blocks: vec![
            StatsBlock {
                tag: SB_REGISTRY,
                version: BLOCK_VERSION,
                epoch: registry_epoch,
                json: registry_json,
            },
            StatsBlock {
                tag: SB_MRC,
                version: BLOCK_VERSION,
                epoch: mrc_epoch,
                json: mrc_json,
            },
        ],
    }
}

/// The registry block body: the process-global telemetry registry plus
/// the serving layer's own metrics, folded in under `server.*` names so
/// one scrape shows the whole stack (storage counters arrive via the
/// global registry's `cost.*` terms and crate counters).
pub(crate) fn stats_json(shards: &[Arc<Shard>], router: &Router) -> String {
    let mut snap = dcs_telemetry::global().snapshot();
    let mut read = dcs_telemetry::HistogramSnapshot::default();
    let mut write = dcs_telemetry::HistogramSnapshot::default();
    let mut miss = dcs_telemetry::HistogramSnapshot::default();
    let mut depth = dcs_telemetry::HistogramSnapshot::default();
    let (mut gets, mut puts, mut misses, mut busy, mut moved) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for s in shards {
        let m = s.metrics();
        read.merge(&m.read_latency.snapshot());
        write.merge(&m.write_latency.snapshot());
        miss.merge(&m.miss_latency.snapshot());
        depth.merge(&s.mailbox().stats().depth);
        gets += m.gets.load(Ordering::Relaxed);
        puts += m.puts.load(Ordering::Relaxed);
        misses += m.misses_submitted.load(Ordering::Relaxed);
        busy += m.busy_rejections.load(Ordering::Relaxed);
        moved += m.moved_redirects.load(Ordering::Relaxed);
    }
    // Placement visibility: map version + shape on every scrape. The
    // per-range heat counters (`rebalance.range_heat.*`) arrive through
    // the global registry snapshot above.
    let map = router.map().load();
    snap.counters.insert("server.map_epoch".into(), map.epoch());
    snap.counters
        .insert("server.map_ranges".into(), map.ranges() as u64);
    snap.counters.insert("server.moved_redirects".into(), moved);
    snap.histograms
        .insert("server.read_latency_nanos".into(), read);
    snap.histograms
        .insert("server.write_latency_nanos".into(), write);
    snap.histograms
        .insert("server.miss_latency_nanos".into(), miss);
    snap.histograms.insert("server.mailbox_depth".into(), depth);
    snap.counters.insert("server.gets".into(), gets);
    snap.counters.insert("server.puts".into(), puts);
    snap.counters
        .insert("server.misses_submitted".into(), misses);
    snap.counters.insert("server.busy_rejections".into(), busy);
    snap.to_json()
}

fn report_proto_error(state: &ConnState, e: &ProtoError) {
    if !state.dead.load(Ordering::Relaxed) {
        let bytes = encode_to_vec(&Frame::Response {
            id: 0,
            resp: Response::Err(format!("protocol error: {e}")),
        });
        let _ = state.outbox.send(bytes);
    }
}

fn write_loop(stream: TcpStream, state: &Arc<ConnState>) {
    let mut stream = stream;
    let mut batch: Vec<Vec<u8>> = Vec::new();
    let mut wire: Vec<u8> = Vec::with_capacity(64 * 1024);
    while state.outbox.recv_batch(256, &mut batch) {
        wire.clear();
        for frame in batch.drain(..) {
            wire.extend_from_slice(&frame);
        }
        if stream.write_all(&wire).is_err() {
            state.dead.store(true, Ordering::SeqCst);
            break;
        }
    }
    // Either the outbox closed (drain complete) or the socket died; stop
    // accepting replies and let the peer see EOF.
    state.dead.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(Shutdown::Write);
}
