//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! ┌────────┬──────┬────────────┬─────────┬──────────┬─────────┐
//! │ magic  │ kind │ request id │ len     │ checksum │ payload │
//! │ u32 le │ u8   │ u64 le     │ u32 le  │ u64 le   │ len B   │
//! └────────┴──────┴────────────┴─────────┴──────────┴─────────┘
//! ```
//!
//! * `magic` is [`MAGIC`] (`b"DCS1"`); anything else is a framing error.
//! * `kind` is an opcode ([`Request`]) or response tag ([`Response`]).
//! * `request id` is chosen by the client and echoed verbatim in the
//!   response, which is what makes **pipelining** work: a client may have
//!   any number of requests in flight per connection and match responses
//!   by id in whatever order the server completes them.
//! * `checksum` is FNV-1a over the payload (same convention as the TC WAL
//!   and the LSS). A mismatch is a transport-corruption error.
//! * `len` is bounded by [`MAX_PAYLOAD`]; oversized frames are rejected
//!   *before* any allocation, so a hostile length can't OOM the peer.
//!
//! Inside payloads, keys are `u16`-length-prefixed and values
//! `u32`-length-prefixed. Decoding is incremental: [`decode_frame`] returns
//! `Ok(None)` on a partial buffer and only consumes whole frames, so a TCP
//! reader can append bytes and re-poll without framing state of its own.

use crate::statsblock::StatsPayload;

/// Frame magic: `b"DCS1"`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"DCS1");

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 4 + 8;

/// Upper bound on a frame payload. Chosen to fit any realistic record plus
/// slack; decoders reject bigger lengths before allocating.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// FNV-1a, the frame checksum (shared convention with the TC WAL / LSS).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point read.
    Get {
        /// Target key.
        key: Vec<u8>,
    },
    /// Upsert.
    Put {
        /// Target key.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Delete.
    Delete {
        /// Target key.
        key: Vec<u8>,
    },
    /// Count up to `limit` records from `start`.
    Scan {
        /// First key of the range.
        start: Vec<u8>,
        /// Maximum records counted.
        limit: u32,
    },
    /// Read-modify-write: append `value` to the current value (missing
    /// treated as empty) and write the result back, atomically at the
    /// owning shard.
    Rmw {
        /// Target key.
        key: Vec<u8>,
        /// Bytes appended by the modification.
        value: Vec<u8>,
    },
    /// Scrape the server's telemetry: answered with a
    /// [`Response::Stats`] JSON registry snapshot. Handled at the
    /// connection (never routed to a shard), so a live server can be
    /// observed even when every shard mailbox is saturated.
    Stats {
        /// Snapshot-format version the client speaks; the server
        /// rejects versions it does not know ([`STATS_VERSION`]).
        version: u8,
    },
}

/// The STATS snapshot-format version this build speaks. v2 framed the
/// response as tagged, epoch-stamped sub-blocks (see
/// [`crate::statsblock`]); v1's single opaque JSON string is gone.
pub const STATS_VERSION: u8 = 2;

impl Request {
    /// The key that routes this request to a shard.
    pub fn routing_key(&self) -> &[u8] {
        match self {
            Request::Get { key }
            | Request::Put { key, .. }
            | Request::Delete { key }
            | Request::Rmw { key, .. } => key,
            Request::Scan { start, .. } => start,
            // STATS is connection-level; it never routes to a shard.
            Request::Stats { .. } => &[],
        }
    }

    /// Whether this request mutates the store (and therefore rides the
    /// group-commit path).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Put { .. } | Request::Delete { .. } | Request::Rmw { .. }
        )
    }

    /// Short label for metrics and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Get { .. } => "get",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Scan { .. } => "scan",
            Request::Rmw { .. } => "rmw",
            Request::Stats { .. } => "stats",
        }
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Read result: `Some(value)` or a miss.
    Value(Option<Vec<u8>>),
    /// Write acknowledged (durable per the server's group-commit policy).
    Ok,
    /// Scan result: records counted.
    Count(u64),
    /// The owning shard's mailbox is past its high-water mark; the request
    /// was **not** executed. Explicit backpressure instead of unbounded
    /// queueing — retry later.
    Busy,
    /// The server failed to execute the request.
    Err(String),
    /// Telemetry snapshot: tagged sub-blocks (registry, MRC, ...), each
    /// stamped with the partition-map epoch it was captured under. See
    /// [`crate::statsblock`].
    Stats(StatsPayload),
    /// The key's range no longer lives on the shard this request reached
    /// — it moved under a newer partition-map epoch (or is mid-handoff).
    /// The request was **not** executed; resubmit it and the server will
    /// route through the current map. `epoch` lets the client distinguish
    /// progress from churn across retries; `shard` names the new owner
    /// for observability.
    Moved {
        /// Partition-map epoch the redirect is valid for.
        epoch: u64,
        /// Shard owning (or receiving) the key under that epoch.
        shard: u32,
    },
}

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DELETE: u8 = 0x03;
const OP_SCAN: u8 = 0x04;
const OP_RMW: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const RE_VALUE: u8 = 0x81;
const RE_OK: u8 = 0x82;
const RE_COUNT: u8 = 0x83;
const RE_BUSY: u8 = 0x84;
const RE_ERR: u8 = 0x85;
const RE_STATS: u8 = 0x86;
const RE_MOVED: u8 = 0x87;

/// Why a buffer failed to decode. All of these are fatal for the
/// connection: once framing is lost there is no way to resynchronize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame did not start with [`MAGIC`].
    BadMagic(u32),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload checksum mismatch.
    BadChecksum {
        /// Checksum carried by the header.
        expected: u64,
        /// Checksum computed over the received payload.
        actual: u64,
    },
    /// Unknown `kind` byte.
    UnknownKind(u8),
    /// A STATS request speaking a snapshot-format version this build
    /// does not know.
    UnknownStatsVersion(u8),
    /// The payload was shorter than its own internal length prefixes claim.
    Truncated,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            ProtoError::BadChecksum { expected, actual } => {
                write!(f, "payload checksum {actual:#x} != header {expected:#x}")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::UnknownStatsVersion(v) => {
                write!(
                    f,
                    "unknown STATS version {v} (this build speaks {STATS_VERSION})"
                )
            }
            ProtoError::Truncated => write!(f, "payload truncated mid-field"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client request.
    Request {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// The operation.
        req: Request,
    },
    /// A server response.
    Response {
        /// Id of the request this answers.
        id: u64,
        /// The outcome.
        resp: Response,
    },
}

fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    debug_assert!(key.len() <= u16::MAX as usize, "key too long for wire");
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

pub(crate) fn put_val(out: &mut Vec<u8>, val: &[u8]) {
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(val);
}

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over a raw payload (sub-block codecs decode through the
    /// same bounds-checked reader the frame decoder uses).
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(ProtoError::Truncated)?;
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        match self.take(1)? {
            &[b] => Ok(b),
            _ => Err(ProtoError::Truncated),
        }
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        match self.take(2)? {
            &[a, b] => Ok(u16::from_le_bytes([a, b])),
            _ => Err(ProtoError::Truncated),
        }
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        match self.take(4)? {
            &[a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => Err(ProtoError::Truncated),
        }
    }
    pub(crate) fn u64(&mut self) -> Result<u64, ProtoError> {
        match self.take(8)? {
            &[a, b, c, d, e, f, g, h] => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => Err(ProtoError::Truncated),
        }
    }
    fn key(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    pub(crate) fn val(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_PAYLOAD {
            return Err(ProtoError::Oversized(n as u32));
        }
        Ok(self.take(n)?.to_vec())
    }
    pub(crate) fn done(&self) -> Result<(), ProtoError> {
        // Trailing garbage means the peer and we disagree about the layout;
        // treat it like truncation (framing is unreliable either way).
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Truncated)
        }
    }
}

/// Append `frame` to `out` in wire format.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let (kind, id) = match frame {
        Frame::Request { id, req } => (
            match req {
                Request::Get { .. } => OP_GET,
                Request::Put { .. } => OP_PUT,
                Request::Delete { .. } => OP_DELETE,
                Request::Scan { .. } => OP_SCAN,
                Request::Rmw { .. } => OP_RMW,
                Request::Stats { .. } => OP_STATS,
            },
            *id,
        ),
        Frame::Response { id, resp } => (
            match resp {
                Response::Value(_) => RE_VALUE,
                Response::Ok => RE_OK,
                Response::Count(_) => RE_COUNT,
                Response::Busy => RE_BUSY,
                Response::Err(_) => RE_ERR,
                Response::Stats(_) => RE_STATS,
                Response::Moved { .. } => RE_MOVED,
            },
            *id,
        ),
    };
    let mut payload = Vec::new();
    match frame {
        Frame::Request { req, .. } => match req {
            Request::Get { key } | Request::Delete { key } => put_key(&mut payload, key),
            Request::Put { key, value } | Request::Rmw { key, value } => {
                put_key(&mut payload, key);
                put_val(&mut payload, value);
            }
            Request::Scan { start, limit } => {
                put_key(&mut payload, start);
                payload.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Stats { version } => payload.push(*version),
        },
        Frame::Response { resp, .. } => match resp {
            Response::Value(v) => match v {
                Some(v) => {
                    payload.push(1);
                    put_val(&mut payload, v);
                }
                None => payload.push(0),
            },
            Response::Ok | Response::Busy => {}
            Response::Count(n) => payload.extend_from_slice(&n.to_le_bytes()),
            Response::Err(msg) => put_val(&mut payload, msg.as_bytes()),
            Response::Stats(blocks) => blocks.encode(&mut payload),
            Response::Moved { epoch, shard } => {
                payload.extend_from_slice(&epoch.to_le_bytes());
                payload.extend_from_slice(&shard.to_le_bytes());
            }
        },
    }
    debug_assert!(payload.len() <= MAX_PAYLOAD, "frame payload too large");
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Encode a frame into a fresh buffer.
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out);
    out
}

/// Little-endian u32 at `at`, if the slice is long enough.
fn le_u32(buf: &[u8], at: usize) -> Option<u32> {
    match buf.get(at..at.checked_add(4)?)? {
        &[a, b, c, d] => Some(u32::from_le_bytes([a, b, c, d])),
        _ => None,
    }
}

/// Little-endian u64 at `at`, if the slice is long enough.
fn le_u64(buf: &[u8], at: usize) -> Option<u64> {
    match buf.get(at..at.checked_add(8)?)? {
        &[a, b, c, d, e, f, g, h] => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => None,
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a whole frame was decoded; the caller
///   should drop `consumed` bytes from the front of `buf`.
/// * `Ok(None)` — `buf` holds only a partial frame; read more bytes.
/// * `Err(_)` — the stream is corrupt; the connection cannot continue.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let magic = le_u32(buf, 0).ok_or(ProtoError::Truncated)?;
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let kind = *buf.get(4).ok_or(ProtoError::Truncated)?;
    let id = le_u64(buf, 5).ok_or(ProtoError::Truncated)?;
    let len = le_u32(buf, 13).ok_or(ProtoError::Truncated)?;
    // Reject hostile lengths before touching (or allocating for) the
    // payload.
    if len as usize > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let expected = le_u64(buf, 17).ok_or(ProtoError::Truncated)?;
    let payload = buf.get(HEADER_LEN..total).ok_or(ProtoError::Truncated)?;
    let actual = fnv64(payload);
    if actual != expected {
        return Err(ProtoError::BadChecksum { expected, actual });
    }
    let mut c = Cursor::new(payload);
    let frame = match kind {
        OP_GET => Frame::Request {
            id,
            req: Request::Get { key: c.key()? },
        },
        OP_PUT => Frame::Request {
            id,
            req: Request::Put {
                key: c.key()?,
                value: c.val()?,
            },
        },
        OP_DELETE => Frame::Request {
            id,
            req: Request::Delete { key: c.key()? },
        },
        OP_SCAN => Frame::Request {
            id,
            req: Request::Scan {
                start: c.key()?,
                limit: c.u32()?,
            },
        },
        OP_RMW => Frame::Request {
            id,
            req: Request::Rmw {
                key: c.key()?,
                value: c.val()?,
            },
        },
        OP_STATS => {
            let version = c.u8()?;
            if version != STATS_VERSION {
                return Err(ProtoError::UnknownStatsVersion(version));
            }
            Frame::Request {
                id,
                req: Request::Stats { version },
            }
        }
        RE_VALUE => {
            let present = c.u8()?;
            let v = match present {
                0 => None,
                1 => Some(c.val()?),
                _ => return Err(ProtoError::Truncated),
            };
            Frame::Response {
                id,
                resp: Response::Value(v),
            }
        }
        RE_OK => Frame::Response {
            id,
            resp: Response::Ok,
        },
        RE_COUNT => Frame::Response {
            id,
            resp: Response::Count(c.u64()?),
        },
        RE_BUSY => Frame::Response {
            id,
            resp: Response::Busy,
        },
        RE_ERR => Frame::Response {
            id,
            resp: Response::Err(String::from_utf8_lossy(&c.val()?).into_owned()),
        },
        RE_STATS => Frame::Response {
            id,
            resp: Response::Stats(StatsPayload::decode(&mut c)?),
        },
        RE_MOVED => Frame::Response {
            id,
            resp: Response::Moved {
                epoch: c.u64()?,
                shard: c.u32()?,
            },
        },
        other => return Err(ProtoError::UnknownKind(other)),
    };
    c.done()?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statsblock::{StatsBlock, BLOCK_VERSION, SB_MRC, SB_REGISTRY};

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Request {
                id: 1,
                req: Request::Get { key: b"k".to_vec() },
            },
            Frame::Request {
                id: u64::MAX,
                req: Request::Put {
                    key: b"key".to_vec(),
                    value: vec![0xAB; 300],
                },
            },
            Frame::Request {
                id: 3,
                req: Request::Delete { key: vec![] },
            },
            Frame::Request {
                id: 4,
                req: Request::Scan {
                    start: b"usr:0000".to_vec(),
                    limit: 100,
                },
            },
            Frame::Request {
                id: 5,
                req: Request::Rmw {
                    key: b"k".to_vec(),
                    value: b"suffix".to_vec(),
                },
            },
            Frame::Response {
                id: 6,
                resp: Response::Value(Some(b"v".to_vec())),
            },
            Frame::Response {
                id: 7,
                resp: Response::Value(None),
            },
            Frame::Response {
                id: 8,
                resp: Response::Ok,
            },
            Frame::Response {
                id: 9,
                resp: Response::Count(42),
            },
            Frame::Response {
                id: 10,
                resp: Response::Busy,
            },
            Frame::Response {
                id: 11,
                resp: Response::Err("boom".into()),
            },
            Frame::Request {
                id: 12,
                req: Request::Stats {
                    version: STATS_VERSION,
                },
            },
            Frame::Response {
                id: 13,
                resp: Response::Stats(StatsPayload {
                    blocks: vec![
                        StatsBlock {
                            tag: SB_REGISTRY,
                            version: BLOCK_VERSION,
                            epoch: 3,
                            json: "{\"counters\":{}}".into(),
                        },
                        StatsBlock {
                            tag: SB_MRC,
                            version: BLOCK_VERSION,
                            epoch: 3,
                            json: "{\"consumers\":[]}".into(),
                        },
                    ],
                }),
            },
            Frame::Response {
                id: 14,
                resp: Response::Moved {
                    epoch: u64::MAX,
                    shard: 3,
                },
            },
        ]
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        for f in all_frames() {
            let bytes = encode_to_vec(&f);
            let (back, used) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!(back, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for f in all_frames() {
            encode_frame(&f, &mut buf);
        }
        let mut decoded = Vec::new();
        let mut pos = 0;
        while let Some((f, used)) = decode_frame(&buf[pos..]).unwrap() {
            decoded.push(f);
            pos += used;
        }
        assert_eq!(decoded, all_frames());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn partial_buffers_ask_for_more() {
        let bytes = encode_to_vec(&all_frames()[1]);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_to_vec(&all_frames()[0]);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bytes), Err(ProtoError::BadMagic(_))));
    }

    #[test]
    fn oversized_length_rejected_without_payload() {
        // Header claims a 2 GiB payload; only the header is present. The
        // decoder must reject from the header alone (no allocation, no
        // waiting for 2 GiB that will never arrive).
        let mut bytes = encode_to_vec(&all_frames()[0]);
        bytes[13..17].copy_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
        bytes.truncate(HEADER_LEN);
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn corrupt_payload_rejected_by_checksum() {
        let mut bytes = encode_to_vec(&all_frames()[1]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::BadChecksum { .. })
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = encode_to_vec(&all_frames()[0]);
        bytes[4] = 0x7E;
        // Fixing up nothing else: kind is covered by neither length nor
        // checksum, so this is the exact wire corruption UnknownKind guards.
        assert!(matches!(
            decode_frame(&bytes),
            Err(ProtoError::UnknownKind(0x7E))
        ));
    }

    #[test]
    fn internal_truncation_rejected() {
        // A PUT whose key length prefix claims more bytes than the payload
        // holds, with a recomputed (valid) checksum: the frame layer is
        // intact but the body is inconsistent.
        let mut payload = Vec::new();
        payload.extend_from_slice(&100u16.to_le_bytes());
        payload.extend_from_slice(b"short");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(0x02);
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(decode_frame(&bytes), Err(ProtoError::Truncated));
    }

    #[test]
    fn stats_unknown_version_rejected() {
        // An otherwise well-formed STATS frame speaking version 9: the
        // frame layer (magic, length, checksum) is intact, so the
        // rejection is the version check itself.
        let payload = vec![9u8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(0x06);
        bytes.extend_from_slice(&21u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::UnknownStatsVersion(9))
        );
    }

    #[test]
    fn stats_requests_route_nowhere_and_do_not_write() {
        let req = Request::Stats {
            version: STATS_VERSION,
        };
        assert!(req.routing_key().is_empty());
        assert!(!req.is_write());
        assert_eq!(req.kind_name(), "stats");
    }

    #[test]
    fn moved_frame_truncation_is_incomplete_or_truncated() {
        // Every proper prefix of a MOVED frame either asks for more bytes
        // (cut inside the header/payload) — never a panic, never a bogus
        // decode.
        let bytes = encode_to_vec(&Frame::Response {
            id: 77,
            resp: Response::Moved {
                epoch: 0x0102_0304_0506_0708,
                shard: 9,
            },
        });
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete"
            );
        }
        // A MOVED payload short of its fixed 12 bytes, checksum recomputed:
        // the frame layer is intact but the body is truncated mid-field.
        let payload = 5u64.to_le_bytes()[..6].to_vec();
        let mut short = Vec::new();
        short.extend_from_slice(&MAGIC.to_le_bytes());
        short.push(0x87);
        short.extend_from_slice(&77u64.to_le_bytes());
        short.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        short.extend_from_slice(&fnv64(&payload).to_le_bytes());
        short.extend_from_slice(&payload);
        assert_eq!(decode_frame(&short), Err(ProtoError::Truncated));
    }

    #[test]
    fn moved_frame_payload_bitflips_rejected_by_checksum() {
        let bytes = encode_to_vec(&Frame::Response {
            id: 78,
            resp: Response::Moved {
                epoch: 42,
                shard: 1,
            },
        });
        // Flip each payload bit in turn: the epoch and shard fields are
        // checksummed, so no corruption can smuggle in a wrong redirect.
        for byte in HEADER_LEN..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    matches!(decode_frame(&corrupt), Err(ProtoError::BadChecksum { .. })),
                    "byte {byte} bit {bit} must fail the checksum"
                );
            }
        }
    }

    #[test]
    fn moved_frame_trailing_garbage_rejected() {
        // A MOVED payload with extra bytes past the epoch + shard fields,
        // checksum recomputed: layout disagreement, not a valid frame.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(0xEE);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(0x87);
        bytes.extend_from_slice(&79u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(decode_frame(&bytes), Err(ProtoError::Truncated));
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Valid GET payload plus extra bytes, checksum recomputed.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'k');
        payload.extend_from_slice(b"junk");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(0x01);
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(decode_frame(&bytes), Err(ProtoError::Truncated));
    }
}
