//! `BENCH_server.json`: the load generator's machine-readable report.
//!
//! The workspace's serde shim is marker-traits only, so the JSON is emitted
//! by hand — the format below is what CI parses (nonzero throughput gate)
//! and what `EXPERIMENTS.md` cites for the wire-level vs. in-process
//! comparison.

use crate::metrics::{LatencySummary, ShardSnapshot};

/// Per-operation-kind latency/throughput line.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind name (`get`, `put`, `rmw`, `scan`, ...).
    pub kind: String,
    /// Completed operations of this kind.
    pub count: u64,
    /// BUSY rejections observed for this kind.
    pub busy: u64,
    /// Errors observed for this kind.
    pub errors: u64,
    /// End-to-end latency summary (client-side; open loop measures from
    /// the scheduled arrival, so coordinated omission is included).
    pub latency: LatencySummary,
}

/// The full report written to `BENCH_server.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Backend name (`caching`, `bwtree`, `masstree`, `lsm`).
    pub backend: String,
    /// `open` or `closed`.
    pub mode: String,
    /// Shards serving.
    pub shards: usize,
    /// Client connections.
    pub connections: usize,
    /// Records loaded before the measured run.
    pub records: u64,
    /// Value payload bytes.
    pub value_len: usize,
    /// Open-loop target rate (ops/s; 0 for closed loop).
    pub target_rate: f64,
    /// Operations issued during the measured run.
    pub ops_issued: u64,
    /// Operations answered (any response, including BUSY/error).
    pub ops_completed: u64,
    /// Wall-clock seconds of the measured run.
    pub duration_secs: f64,
    /// Completed (non-BUSY, non-error) ops per second.
    pub throughput_ops_per_sec: f64,
    /// Per-kind breakdown.
    pub ops: Vec<OpReport>,
    /// Per-shard server-side counters at shutdown.
    pub shard_snapshots: Vec<ShardSnapshot>,
    /// Writes acknowledged by the server during the run.
    pub acked_writes: u64,
    /// Distinct acked keys re-read from the backends after drain shutdown.
    pub verified_keys: u64,
    /// Acked keys missing after shutdown — must be zero.
    pub missing_keys: u64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".into()
    }
}

fn latency_json(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        l.count,
        num(l.mean_nanos / 1000.0),
        num(l.p50_nanos / 1000.0),
        num(l.p95_nanos / 1000.0),
        num(l.p99_nanos / 1000.0),
        num(l.max_nanos as f64 / 1000.0),
    )
}

impl BenchReport {
    /// Serialize to a JSON document.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| {
                format!(
                    "    {{\"kind\": \"{}\", \"count\": {}, \"busy\": {}, \"errors\": {}, \"latency\": {}}}",
                    esc(&o.kind),
                    o.count,
                    o.busy,
                    o.errors,
                    latency_json(&o.latency)
                )
            })
            .collect();
        let shards: Vec<String> = self
            .shard_snapshots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "    {{\"shard\": {}, \"ops\": {}, \"busy_rejections\": {}, \"batches\": {}, \"mean_batch\": {}, \"max_batch\": {}, \"queue_depth_high_water\": {}, \"group_commits\": {}, \"group_committed_records\": {}, \"read_latency\": {}, \"write_latency\": {}}}",
                    i,
                    s.total_ops(),
                    s.busy_rejections,
                    s.batches,
                    num(if s.batches == 0 { 0.0 } else { s.batched_ops as f64 / s.batches as f64 }),
                    s.max_batch,
                    s.depth_high_water,
                    s.group_commits,
                    s.group_committed_records,
                    latency_json(&s.read_latency),
                    latency_json(&s.write_latency),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"server\",\n  \"backend\": \"{}\",\n  \"mode\": \"{}\",\n  \"shards\": {},\n  \"connections\": {},\n  \"records\": {},\n  \"value_len\": {},\n  \"target_rate\": {},\n  \"ops_issued\": {},\n  \"ops_completed\": {},\n  \"duration_secs\": {},\n  \"throughput_ops_per_sec\": {},\n  \"ops\": [\n{}\n  ],\n  \"shards_detail\": [\n{}\n  ],\n  \"verification\": {{\"acked_writes\": {}, \"verified_keys\": {}, \"missing_keys\": {}}}\n}}\n",
            esc(&self.backend),
            esc(&self.mode),
            self.shards,
            self.connections,
            self.records,
            self.value_len,
            num(self.target_rate),
            self.ops_issued,
            self.ops_completed,
            num(self.duration_secs),
            num(self.throughput_ops_per_sec),
            ops.join(",\n"),
            shards.join(",\n"),
            self.acked_writes,
            self.verified_keys,
            self.missing_keys,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_wellformed_enough() {
        let report = BenchReport {
            backend: "caching".into(),
            mode: "open".into(),
            shards: 4,
            connections: 2,
            records: 1000,
            value_len: 100,
            target_rate: 50_000.0,
            ops_issued: 10,
            ops_completed: 10,
            duration_secs: 1.5,
            throughput_ops_per_sec: 6.667,
            ops: vec![OpReport {
                kind: "get".into(),
                count: 10,
                busy: 1,
                errors: 0,
                latency: LatencySummary::default(),
            }],
            shard_snapshots: vec![ShardSnapshot::default()],
            acked_writes: 5,
            verified_keys: 5,
            missing_keys: 0,
        };
        let json = report.to_json();
        // Balanced braces/brackets and the fields CI greps for.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"throughput_ops_per_sec\": 6.667"));
        assert!(json.contains("\"missing_keys\": 0"));
        assert!(json.contains("\"kind\": \"get\""));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_sanitized() {
        assert_eq!(num(f64::NAN), "0.0");
        assert_eq!(num(f64::INFINITY), "0.0");
    }
}
