//! `BENCH_server.json`: the load generator's machine-readable report.
//!
//! The workspace's serde shim is marker-traits only, so the JSON is emitted
//! by hand — the format below is what CI parses (nonzero throughput gate)
//! and what `EXPERIMENTS.md` cites for the wire-level vs. in-process
//! comparison.

use crate::metrics::{LatencySummary, ShardSnapshot};

/// Achieved-io-depth histogram aggregated across the shards' devices.
///
/// A blocking read path pins this at depth 1; the async engine's parked
/// misses and speculative batch reads push it higher — this is the
/// report's direct evidence of device-level concurrency.
#[derive(Debug, Clone, Default)]
pub struct IoDepthReport {
    /// I/Os sampled across all shard devices.
    pub samples: u64,
    /// Mean achieved depth.
    pub mean: f64,
    /// Deepest concurrency observed on any shard device.
    pub max: u64,
    /// `(depth, count)` pairs for the non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// Aggregated miss-service accounting across shards.
#[derive(Debug, Clone, Default)]
pub struct MissServiceReport {
    /// GETs that needed a device fetch.
    pub misses: u64,
    /// Most misses parked concurrently on any one shard.
    pub parked_peak: usize,
    /// Miss-service latency. Counts and means are exact sums/weighted
    /// means over the shards; the percentiles are the worst shard's
    /// (a conservative upper bound — power-of-two histograms cannot be
    /// merged after summarization).
    pub latency: LatencySummary,
}

impl MissServiceReport {
    /// Aggregate the per-shard snapshots' miss accounting.
    pub fn from_snapshots(shards: &[ShardSnapshot]) -> Self {
        let mut out = MissServiceReport::default();
        let mut weighted_mean = 0.0;
        for s in shards {
            out.misses += s.misses;
            out.parked_peak = out.parked_peak.max(s.parked_peak);
            let l = &s.miss_latency;
            out.latency.count += l.count;
            weighted_mean += l.mean_nanos * l.count as f64;
            out.latency.p50_nanos = out.latency.p50_nanos.max(l.p50_nanos);
            out.latency.p95_nanos = out.latency.p95_nanos.max(l.p95_nanos);
            out.latency.p99_nanos = out.latency.p99_nanos.max(l.p99_nanos);
            out.latency.max_nanos = out.latency.max_nanos.max(l.max_nanos);
        }
        if out.latency.count > 0 {
            out.latency.mean_nanos = weighted_mean / out.latency.count as f64;
        }
        out
    }
}

/// Dynamic-placement accounting: the final partition map's shape, what
/// the rebalancer did during the run, and how evenly the shards ended up
/// sharing the executed operations — the report's direct evidence for
/// (or against) the hot-shard kill.
#[derive(Debug, Clone, Default)]
pub struct PlacementReport {
    /// Whether the background rebalancer ran.
    pub rebalance_enabled: bool,
    /// Final partition-map epoch (0 = never changed).
    pub map_epoch: u64,
    /// Ranges in the final map.
    pub map_ranges: usize,
    /// Range migrations executed.
    pub moves: u64,
    /// Range splits executed.
    pub splits: u64,
    /// Range merges executed.
    pub merges: u64,
    /// Records copied/replayed by migrations.
    pub migrated_records: u64,
    /// Requests answered `MOVED` across all shards.
    pub moved_redirects: u64,
    /// Executed ops per shard (server-side counters).
    pub shard_ops: Vec<u64>,
    /// Hottest/coldest shard op ratio (coldest clamped to 1 op). 1.0 is
    /// a perfect spread; a Zipfian skew without rebalancing runs ~10x.
    pub shard_op_spread: f64,
}

impl PlacementReport {
    /// The hottest/coldest ratio of `ops` (coldest clamped to 1).
    pub fn spread_of(ops: &[u64]) -> f64 {
        let max = ops.iter().max().copied().unwrap_or(0);
        let min = ops.iter().min().copied().unwrap_or(0);
        max as f64 / min.max(1) as f64
    }
}

/// One per-term cost breakdown in the paper's algebra (rent + execution),
/// in catalog dollars with the lifetime factor dropped as everywhere else.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostTerms {
    /// DRAM rent over the run.
    pub dram_rent: f64,
    /// Flash rent over the run.
    pub flash_rent: f64,
    /// Processor cost of the MM operations.
    pub mm_exec: f64,
    /// Processor + I/O-capability cost of the SS operations.
    pub ss_exec: f64,
}

impl CostTerms {
    /// Sum of the four terms.
    pub fn total(&self) -> f64 {
        self.dram_rent + self.flash_rent + self.mm_exec + self.ss_exec
    }

    /// True when every term of `self` and `other` agrees within `tol`
    /// relative (with a small absolute floor so two near-zero terms —
    /// e.g. flash rent on an in-memory backend — always reconcile).
    pub fn reconciles_with(&self, other: &CostTerms, tol: f64) -> bool {
        let close = |a: f64, b: f64| {
            let scale = a.abs().max(b.abs());
            (a - b).abs() <= tol * scale + 1e-15
        };
        close(self.dram_rent, other.dram_rent)
            && close(self.flash_rent, other.flash_rent)
            && close(self.mm_exec, other.mm_exec)
            && close(self.ss_exec, other.ss_exec)
    }
}

/// The unified telemetry block: exact cost-attribution counts from the
/// process-wide ledger, the per-term costs they price out to, and the
/// cost model's own `price_run` over the same profile. `reconciled`
/// asserts the two derivations agree per-term within 10% — the attribution
/// funnel feeding `dcs_costmodel::accounting` is wired, not drifting.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Root-span sampling rate during the run (permille).
    pub sampling_permille: u32,
    /// Root spans seen / actually traced / events dropped to ring bounds.
    pub roots_seen: u64,
    /// Root spans that recorded events.
    pub roots_sampled: u64,
    /// Span events dropped to per-thread ring bounds.
    pub events_dropped: u64,
    /// Where the Chrome/Perfetto trace was written ("" = not requested).
    pub trace_out: String,
    /// Measured MM operations (ledger delta over the run).
    pub mm_ops: u64,
    /// Measured SS reads.
    pub ss_reads: u64,
    /// Measured SS writes.
    pub ss_writes: u64,
    /// Measured WAL durability barriers.
    pub wal_barriers: u64,
    /// Measured background maintenance actions.
    pub maintenance_ops: u64,
    /// DRAM occupancy fed to the rent terms (bytes).
    pub avg_dram_bytes: f64,
    /// Flash occupancy fed to the rent terms (bytes).
    pub avg_flash_bytes: f64,
    /// Per-term costs priced directly from the ledger counts.
    pub measured: CostTerms,
    /// Per-term costs from `dcs_costmodel::accounting::price_run`.
    pub modeled: CostTerms,
    /// Every term of `measured` within 10% of `modeled`.
    pub reconciled: bool,
    /// `trace.dropped_spans` registry counter at the end of the run:
    /// span events lost to per-thread ring bounds. CI asserts 0 for the
    /// sampled telemetry run.
    pub trace_dropped_spans: u64,
}

/// One consumer's measured miss-ratio curve and its marginal pricing.
#[derive(Debug, Clone, Default)]
pub struct MrcConsumerReport {
    /// Profiler name (`mrc.record_cache`, `mrc.page_cache`, `mrc.lsm`).
    pub consumer: String,
    /// Accesses observed (before sampling).
    pub accesses: u64,
    /// Accesses past the SHARDS hash threshold.
    pub sampled: u64,
    /// Configured spatial sampling rate.
    pub sample_rate: f64,
    /// Mean entity size over the sampled accesses.
    pub mean_entity_bytes: f64,
    /// `(cache_bytes, miss_ratio)` points, bytes ascending.
    pub points: Vec<(f64, f64)>,
    /// Execution rent saved per extra byte at the current budget.
    pub marginal_value_per_byte: f64,
    /// DRAM price per byte from the catalog.
    pub dram_price_per_byte: f64,
    /// `marginal_value_per_byte - dram_price_per_byte`.
    pub net_per_byte: f64,
    /// Largest curve budget whose marginal byte still pays for itself.
    pub recommended_bytes: f64,
}

/// The `mrc` report block: per-consumer miss-ratio curves fused with the
/// cost catalog (`--mrc`).
#[derive(Debug, Clone, Default)]
pub struct MrcReport {
    /// Whether `--mrc` was requested.
    pub enabled: bool,
    /// Memory budget the marginal pricing was evaluated at (bytes).
    pub budget_bytes: f64,
    /// Where the flight-recorder dump was written ("" = none).
    pub flight_out: String,
    /// Anomaly triggers the flight recorder fired during the run.
    pub triggers: Vec<String>,
    /// Per-consumer curves.
    pub consumers: Vec<MrcConsumerReport>,
}

/// Per-operation-kind latency/throughput line.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operation kind name (`get`, `put`, `rmw`, `scan`, ...).
    pub kind: String,
    /// Completed operations of this kind.
    pub count: u64,
    /// BUSY rejections observed for this kind.
    pub busy: u64,
    /// Errors observed for this kind.
    pub errors: u64,
    /// End-to-end latency summary (client-side; open loop measures from
    /// the scheduled arrival, so coordinated omission is included).
    pub latency: LatencySummary,
}

/// The full report written to `BENCH_server.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Backend name (`caching`, `bwtree`, `masstree`, `lsm`).
    pub backend: String,
    /// `open` or `closed`.
    pub mode: String,
    /// Cache-miss servicing discipline (`sync` or `async`).
    pub miss_mode: String,
    /// Injected wall-clock device read latency (nanoseconds; 0 = none).
    pub device_latency_nanos: u64,
    /// Shards serving.
    pub shards: usize,
    /// Client connections.
    pub connections: usize,
    /// Records loaded before the measured run.
    pub records: u64,
    /// Value payload bytes.
    pub value_len: usize,
    /// Open-loop target rate (ops/s; 0 for closed loop).
    pub target_rate: f64,
    /// Operations issued during the measured run.
    pub ops_issued: u64,
    /// Operations answered (any response, including BUSY/error).
    pub ops_completed: u64,
    /// Wall-clock seconds of the measured run.
    pub duration_secs: f64,
    /// Completed (non-BUSY, non-error) ops per second.
    pub throughput_ops_per_sec: f64,
    /// Per-kind breakdown.
    pub ops: Vec<OpReport>,
    /// Per-shard server-side counters at shutdown.
    pub shard_snapshots: Vec<ShardSnapshot>,
    /// Achieved-io-depth histogram across shard devices.
    pub io_depth: IoDepthReport,
    /// Aggregated miss-service accounting.
    pub miss_service: MissServiceReport,
    /// Unified telemetry: span tracing stats plus measured-vs-modeled
    /// cost attribution in the paper's terms.
    pub telemetry: TelemetryReport,
    /// Miss-ratio curves + marginal cost-per-byte per memory consumer.
    pub mrc: MrcReport,
    /// Dynamic placement: final map shape, rebalancer actions, per-shard
    /// op spread.
    pub placement: PlacementReport,
    /// Writes acknowledged by the server during the run.
    pub acked_writes: u64,
    /// Distinct acked keys re-read from the backends after drain shutdown.
    pub verified_keys: u64,
    /// Acked keys missing after shutdown — must be zero.
    pub missing_keys: u64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".into()
    }
}

/// Scientific notation for cost terms — catalog dollars are far below the
/// fixed three decimals `num` keeps.
fn sci(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "0.0".into()
    }
}

/// Ratios (miss ratios, sampling rates) need more precision than `num`'s
/// three decimals: adjacent MRC points can differ in the fourth decimal
/// and the CI monotonicity gate compares them.
fn format_ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".into()
    }
}

fn cost_terms_json(t: &CostTerms) -> String {
    format!(
        "{{\"dram_rent\": {}, \"flash_rent\": {}, \"mm_exec\": {}, \"ss_exec\": {}, \"total\": {}}}",
        sci(t.dram_rent),
        sci(t.flash_rent),
        sci(t.mm_exec),
        sci(t.ss_exec),
        sci(t.total()),
    )
}

fn latency_json(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        l.count,
        num(l.mean_nanos / 1000.0),
        num(l.p50_nanos / 1000.0),
        num(l.p95_nanos / 1000.0),
        num(l.p99_nanos / 1000.0),
        num(l.max_nanos as f64 / 1000.0),
    )
}

impl BenchReport {
    /// Serialize to a JSON document.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| {
                format!(
                    "    {{\"kind\": \"{}\", \"count\": {}, \"busy\": {}, \"errors\": {}, \"latency\": {}}}",
                    esc(&o.kind),
                    o.count,
                    o.busy,
                    o.errors,
                    latency_json(&o.latency)
                )
            })
            .collect();
        let shards: Vec<String> = self
            .shard_snapshots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "    {{\"shard\": {}, \"ops\": {}, \"busy_rejections\": {}, \"batches\": {}, \"mean_batch\": {}, \"max_batch\": {}, \"queue_depth_high_water\": {}, \"group_commits\": {}, \"group_committed_records\": {}, \"misses\": {}, \"parked_peak\": {}, \"read_latency\": {}, \"write_latency\": {}, \"miss_service\": {}}}",
                    i,
                    s.total_ops(),
                    s.busy_rejections,
                    s.batches,
                    num(if s.batches == 0 { 0.0 } else { s.batched_ops as f64 / s.batches as f64 }),
                    s.max_batch,
                    s.depth_high_water,
                    s.group_commits,
                    s.group_committed_records,
                    s.misses,
                    s.parked_peak,
                    latency_json(&s.read_latency),
                    latency_json(&s.write_latency),
                    latency_json(&s.miss_latency),
                )
            })
            .collect();
        let depth_buckets: Vec<String> = self
            .io_depth
            .buckets
            .iter()
            .map(|(d, c)| format!("[{d}, {c}]"))
            .collect();
        let io_depth = format!(
            "{{\"samples\": {}, \"mean\": {}, \"max\": {}, \"buckets\": [{}]}}",
            self.io_depth.samples,
            num(self.io_depth.mean),
            self.io_depth.max,
            depth_buckets.join(", "),
        );
        let miss_service = format!(
            "{{\"misses\": {}, \"parked_peak\": {}, \"latency\": {}}}",
            self.miss_service.misses,
            self.miss_service.parked_peak,
            latency_json(&self.miss_service.latency),
        );
        let p = &self.placement;
        let shard_ops: Vec<String> = p.shard_ops.iter().map(|n| n.to_string()).collect();
        let placement = format!(
            "{{\"rebalance_enabled\": {}, \"map_epoch\": {}, \"map_ranges\": {}, \"moves\": {}, \"splits\": {}, \"merges\": {}, \"migrated_records\": {}, \"moved_redirects\": {}, \"shard_ops\": [{}], \"shard_op_spread\": {}}}",
            p.rebalance_enabled,
            p.map_epoch,
            p.map_ranges,
            p.moves,
            p.splits,
            p.merges,
            p.migrated_records,
            p.moved_redirects,
            shard_ops.join(", "),
            num(p.shard_op_spread),
        );
        let t = &self.telemetry;
        let telemetry = format!(
            "{{\n    \"sampling_permille\": {},\n    \"spans\": {{\"roots_seen\": {}, \"roots_sampled\": {}, \"events_dropped\": {}}},\n    \"trace_dropped_spans\": {},\n    \"trace_out\": \"{}\",\n    \"cost_counts\": {{\"mm_ops\": {}, \"ss_reads\": {}, \"ss_writes\": {}, \"wal_barriers\": {}, \"maintenance_ops\": {}}},\n    \"avg_dram_bytes\": {},\n    \"avg_flash_bytes\": {},\n    \"cost_attribution\": {{\n      \"measured\": {},\n      \"modeled\": {},\n      \"reconciled_within_10pct\": {}\n    }}\n  }}",
            t.sampling_permille,
            t.roots_seen,
            t.roots_sampled,
            t.events_dropped,
            t.trace_dropped_spans,
            esc(&t.trace_out),
            t.mm_ops,
            t.ss_reads,
            t.ss_writes,
            t.wal_barriers,
            t.maintenance_ops,
            num(t.avg_dram_bytes),
            num(t.avg_flash_bytes),
            cost_terms_json(&t.measured),
            cost_terms_json(&t.modeled),
            t.reconciled,
        );
        let mrc_consumers: Vec<String> = self
            .mrc
            .consumers
            .iter()
            .map(|c| {
                let points: Vec<String> = c
                    .points
                    .iter()
                    .map(|(b, m)| format!("[{}, {}]", num(*b), format_ratio(*m)))
                    .collect();
                format!(
                    "      {{\"consumer\": \"{}\", \"accesses\": {}, \"sampled\": {}, \"sample_rate\": {}, \"mean_entity_bytes\": {}, \"points\": [{}], \"marginal\": {{\"value_per_byte\": {}, \"dram_price_per_byte\": {}, \"net_per_byte\": {}}}, \"recommended_bytes\": {}}}",
                    esc(&c.consumer),
                    c.accesses,
                    c.sampled,
                    format_ratio(c.sample_rate),
                    num(c.mean_entity_bytes),
                    points.join(", "),
                    sci(c.marginal_value_per_byte),
                    sci(c.dram_price_per_byte),
                    sci(c.net_per_byte),
                    num(c.recommended_bytes),
                )
            })
            .collect();
        let triggers: Vec<String> = self
            .mrc
            .triggers
            .iter()
            .map(|t| format!("\"{}\"", esc(t)))
            .collect();
        let consumers_block = if mrc_consumers.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n    ]", mrc_consumers.join(",\n"))
        };
        let mrc = format!(
            "{{\n    \"enabled\": {},\n    \"budget_bytes\": {},\n    \"flight_out\": \"{}\",\n    \"triggers\": [{}],\n    \"consumers\": {}\n  }}",
            self.mrc.enabled,
            num(self.mrc.budget_bytes),
            esc(&self.mrc.flight_out),
            triggers.join(", "),
            consumers_block,
        );
        format!(
            "{{\n  \"bench\": \"server\",\n  \"backend\": \"{}\",\n  \"mode\": \"{}\",\n  \"miss_mode\": \"{}\",\n  \"device_latency_nanos\": {},\n  \"shards\": {},\n  \"connections\": {},\n  \"records\": {},\n  \"value_len\": {},\n  \"target_rate\": {},\n  \"ops_issued\": {},\n  \"ops_completed\": {},\n  \"duration_secs\": {},\n  \"throughput_ops_per_sec\": {},\n  \"io_depth\": {},\n  \"miss_service\": {},\n  \"placement\": {},\n  \"telemetry\": {},\n  \"mrc\": {},\n  \"ops\": [\n{}\n  ],\n  \"shards_detail\": [\n{}\n  ],\n  \"verification\": {{\"acked_writes\": {}, \"verified_keys\": {}, \"missing_keys\": {}}}\n}}\n",
            esc(&self.backend),
            esc(&self.mode),
            esc(&self.miss_mode),
            self.device_latency_nanos,
            self.shards,
            self.connections,
            self.records,
            self.value_len,
            num(self.target_rate),
            self.ops_issued,
            self.ops_completed,
            num(self.duration_secs),
            num(self.throughput_ops_per_sec),
            io_depth,
            miss_service,
            placement,
            telemetry,
            mrc,
            ops.join(",\n"),
            shards.join(",\n"),
            self.acked_writes,
            self.verified_keys,
            self.missing_keys,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_wellformed_enough() {
        let report = BenchReport {
            backend: "caching".into(),
            mode: "open".into(),
            miss_mode: "async".into(),
            device_latency_nanos: 200_000,
            shards: 4,
            connections: 2,
            records: 1000,
            value_len: 100,
            target_rate: 50_000.0,
            ops_issued: 10,
            ops_completed: 10,
            duration_secs: 1.5,
            throughput_ops_per_sec: 6.667,
            ops: vec![OpReport {
                kind: "get".into(),
                count: 10,
                busy: 1,
                errors: 0,
                latency: LatencySummary::default(),
            }],
            shard_snapshots: vec![ShardSnapshot::default()],
            io_depth: IoDepthReport {
                samples: 100,
                mean: 2.5,
                max: 8,
                buckets: vec![(1, 60), (4, 40)],
            },
            miss_service: MissServiceReport {
                misses: 7,
                parked_peak: 3,
                latency: LatencySummary::default(),
            },
            telemetry: TelemetryReport {
                sampling_permille: 10,
                roots_seen: 1000,
                roots_sampled: 10,
                events_dropped: 0,
                trace_out: "trace.json".into(),
                mm_ops: 900,
                ss_reads: 80,
                ss_writes: 20,
                wal_barriers: 5,
                maintenance_ops: 3,
                avg_dram_bytes: 1.0e6,
                avg_flash_bytes: 2.0e6,
                measured: CostTerms {
                    dram_rent: 1.0e-9,
                    flash_rent: 2.0e-10,
                    mm_exec: 3.0e-8,
                    ss_exec: 4.0e-7,
                },
                modeled: CostTerms {
                    dram_rent: 1.0e-9,
                    flash_rent: 2.0e-10,
                    mm_exec: 3.0e-8,
                    ss_exec: 4.0e-7,
                },
                reconciled: true,
                trace_dropped_spans: 0,
            },
            mrc: MrcReport {
                enabled: true,
                budget_bytes: 4.0e6,
                flight_out: "flight.json".into(),
                triggers: vec!["p95 regression".into()],
                consumers: vec![MrcConsumerReport {
                    consumer: "mrc.record_cache".into(),
                    accesses: 10_000,
                    sampled: 100,
                    sample_rate: 0.01,
                    mean_entity_bytes: 108.0,
                    points: vec![(1.0e6, 0.42), (2.0e6, 0.1234)],
                    marginal_value_per_byte: 2.0e-8,
                    dram_price_per_byte: 5.0e-9,
                    net_per_byte: 1.5e-8,
                    recommended_bytes: 2.0e6,
                }],
            },
            placement: PlacementReport {
                rebalance_enabled: true,
                map_epoch: 3,
                map_ranges: 6,
                moves: 2,
                splits: 1,
                merges: 0,
                migrated_records: 1234,
                moved_redirects: 17,
                shard_ops: vec![100, 80, 90, 95],
                shard_op_spread: 1.25,
            },
            acked_writes: 5,
            verified_keys: 5,
            missing_keys: 0,
        };
        let json = report.to_json();
        // Balanced braces/brackets and the fields CI greps for.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"throughput_ops_per_sec\": 6.667"));
        assert!(json.contains("\"missing_keys\": 0"));
        assert!(json.contains("\"kind\": \"get\""));
        assert!(json.contains("\"miss_mode\": \"async\""));
        assert!(json.contains("\"io_depth\": {\"samples\": 100"));
        assert!(json.contains("\"buckets\": [[1, 60], [4, 40]]"));
        assert!(json.contains("\"miss_service\": {\"misses\": 7, \"parked_peak\": 3"));
        assert!(json.contains("\"sampling_permille\": 10"));
        assert!(json.contains("\"reconciled_within_10pct\": true"));
        assert!(json.contains("\"cost_counts\": {\"mm_ops\": 900"));
        assert!(json.contains("\"mm_exec\": 3.000000e-8"));
        assert!(json.contains("\"placement\": {\"rebalance_enabled\": true, \"map_epoch\": 3"));
        assert!(json.contains("\"shard_ops\": [100, 80, 90, 95]"));
        assert!(json.contains("\"shard_op_spread\": 1.250"));
        assert!(json.contains("\"trace_dropped_spans\": 0"));
        assert!(json.contains("\"enabled\": true"));
        assert!(json.contains("\"consumer\": \"mrc.record_cache\""));
        assert!(json.contains("\"points\": [[1000000.000, 0.420000], [2000000.000, 0.123400]]"));
        assert!(json.contains("\"net_per_byte\": 1.500000e-8"));
        assert!(json.contains("\"triggers\": [\"p95 regression\"]"));
        assert!(json.contains("\"flight_out\": \"flight.json\""));
        assert!(json.contains("\"recommended_bytes\": 2000000.000"));
    }

    #[test]
    fn spread_handles_degenerate_shard_counts() {
        assert_eq!(PlacementReport::spread_of(&[]), 0.0);
        assert_eq!(PlacementReport::spread_of(&[10, 10]), 1.0);
        assert_eq!(PlacementReport::spread_of(&[100, 10]), 10.0);
        // A completely idle shard clamps to 1 op instead of dividing by 0.
        assert_eq!(PlacementReport::spread_of(&[50, 0]), 50.0);
    }

    #[test]
    fn cost_terms_reconcile_within_tolerance() {
        let a = CostTerms {
            dram_rent: 1.0,
            flash_rent: 0.0,
            mm_exec: 10.0,
            ss_exec: 100.0,
        };
        // 5% off on every nonzero term: reconciles at 10%, not at 1%.
        let b = CostTerms {
            dram_rent: 1.05,
            flash_rent: 0.0,
            mm_exec: 10.5,
            ss_exec: 105.0,
        };
        assert!(a.reconciles_with(&b, 0.10));
        assert!(!a.reconciles_with(&b, 0.01));
        // Two zero terms always reconcile (absolute floor).
        let z = CostTerms::default();
        assert!(z.reconciles_with(&CostTerms::default(), 0.10));
        assert!((a.total() - 111.0).abs() < 1e-12);
    }

    #[test]
    fn miss_service_aggregates_conservatively() {
        let a = ShardSnapshot {
            misses: 10,
            parked_peak: 2,
            miss_latency: LatencySummary {
                count: 10,
                mean_nanos: 100.0,
                p50_nanos: 90.0,
                p95_nanos: 150.0,
                p99_nanos: 180.0,
                max_nanos: 200,
            },
            ..ShardSnapshot::default()
        };
        let b = ShardSnapshot {
            misses: 30,
            parked_peak: 5,
            miss_latency: LatencySummary {
                count: 30,
                mean_nanos: 300.0,
                p50_nanos: 280.0,
                p95_nanos: 350.0,
                p99_nanos: 390.0,
                max_nanos: 400,
            },
            ..ShardSnapshot::default()
        };
        let agg = MissServiceReport::from_snapshots(&[a, b]);
        assert_eq!(agg.misses, 40);
        assert_eq!(agg.parked_peak, 5);
        assert_eq!(agg.latency.count, 40);
        // Weighted mean: (10*100 + 30*300) / 40 = 250.
        assert!((agg.latency.mean_nanos - 250.0).abs() < 1e-9);
        // Percentiles: the worst shard's.
        assert_eq!(agg.latency.p95_nanos, 350.0);
        assert_eq!(agg.latency.max_nanos, 400);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_sanitized() {
        assert_eq!(num(f64::NAN), "0.0");
        assert_eq!(num(f64::INFINITY), "0.0");
    }
}
