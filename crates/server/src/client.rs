//! `dcs-client`: pooled, pipelined connections to a `dcs-server`.
//!
//! Each connection has a mutex-guarded write half (senders interleave whole
//! frames) and a reader thread that matches response frames to waiting
//! callers by request id — so any number of requests can be in flight per
//! connection and responses may return out of order. [`Client::submit`]
//! returns a [`Ticket`] immediately; [`Ticket::wait`] blocks for that one
//! response. If a connection dies (EOF, I/O error, undecodable frame),
//! every in-flight ticket on it fails with [`ClientError::ConnectionClosed`]
//! rather than hanging — the kill-mid-pipeline contract.

use crate::protocol::{decode_frame, encode_to_vec, Frame, Request, Response};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure (connect/write).
    Io(String),
    /// The connection closed with this request still unanswered.
    ConnectionClosed,
    /// The server answered, but with a frame that makes no sense for the
    /// request (e.g. a COUNT for a GET).
    UnexpectedResponse,
    /// The server rejected the request with BUSY (shard mailbox full).
    Busy,
    /// The key's range moved (or is moving) to another shard; the request
    /// was not executed. Resubmitting routes it by the server's live map.
    Moved {
        /// Map epoch the redirect is valid for.
        epoch: u64,
        /// Shard owning (or receiving) the key.
        shard: u32,
    },
    /// The server reported an execution error.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::ConnectionClosed => write!(f, "connection closed with request in flight"),
            ClientError::UnexpectedResponse => write!(f, "response kind does not match request"),
            ClientError::Busy => write!(f, "server busy"),
            ClientError::Moved { epoch, shard } => {
                write!(f, "moved to shard {shard} (map epoch {epoch})")
            }
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One-shot response slot a ticket waits on.
struct Slot {
    state: Mutex<Option<Result<Response, ClientError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Response, ClientError>) {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some(result);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> Result<Response, ClientError> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

struct Conn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    next_id: AtomicU64,
    dead: AtomicBool,
}

impl Conn {
    /// Fail every in-flight request; called when the read side dies.
    fn poison(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let drained: Vec<Arc<Slot>> = self
            .pending
            .lock()
            .unwrap()
            .drain()
            .map(|(_, s)| s)
            .collect();
        for slot in drained {
            slot.fill(Err(ClientError::ConnectionClosed));
        }
    }
}

/// A pending response. `wait` consumes the ticket and blocks until the
/// response (or the connection's demise) arrives.
pub struct Ticket {
    slot: Arc<Slot>,
    /// The request id carried on the wire.
    pub id: u64,
}

impl Ticket {
    /// Block for the response.
    pub fn wait(self) -> Result<Response, ClientError> {
        self.slot.wait()
    }
}

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connections in the pool (requests round-robin across them).
    pub connections: usize,
    /// Synchronous convenience ops retry BUSY this many times before
    /// surfacing [`ClientError::Busy`]. Each retry backs off
    /// exponentially with jitter (see [`ClientConfig::backoff_base_micros`]).
    pub busy_retries: usize,
    /// Synchronous convenience ops resubmit after `MOVED` this many
    /// times before surfacing [`ClientError::Moved`]. Redirect chases are
    /// bounded so a flapping map cannot trap a caller forever.
    pub moved_retries: usize,
    /// First backoff delay in microseconds; doubles per consecutive
    /// rejection up to [`ClientConfig::backoff_cap_micros`], with equal
    /// jitter (uniform in `[delay/2, delay]`) so synchronized retriers
    /// don't re-stampede the same shard in lockstep.
    pub backoff_base_micros: u64,
    /// Backoff ceiling in microseconds.
    pub backoff_cap_micros: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connections: 2,
            busy_retries: 1000,
            moved_retries: 64,
            backoff_base_micros: 20,
            backoff_cap_micros: 2_000,
        }
    }
}

/// A pool of pipelined connections to one server.
pub struct Client {
    conns: Vec<Arc<Conn>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    rr: AtomicUsize,
    busy_retries: usize,
    moved_retries: usize,
    backoff_base_micros: u64,
    backoff_cap_micros: u64,
    /// Highest map epoch seen in a `MOVED` reply — the client's cached
    /// view of placement progress. Routing itself stays server-side (the
    /// connection reader routes by the live map), so the epoch is what a
    /// remote client can usefully cache: it distinguishes progress
    /// (higher epoch, keep chasing) from churn.
    known_epoch: AtomicU64,
}

impl Client {
    /// Connect `config.connections` sockets to `addr`.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Client, ClientError> {
        assert!(config.connections > 0, "need at least one connection");
        let mut conns = Vec::with_capacity(config.connections);
        let mut readers = Vec::with_capacity(config.connections);
        for i in 0..config.connections {
            let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
            stream.set_nodelay(true).ok();
            let read_half = stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?;
            let conn = Arc::new(Conn {
                writer: Mutex::new(stream),
                pending: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                dead: AtomicBool::new(false),
            });
            let rc = conn.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("dcs-client-rd-{i}"))
                    .spawn(move || client_read_loop(read_half, &rc))
                    .map_err(|e| ClientError::Io(e.to_string()))?,
            );
            conns.push(conn);
        }
        Ok(Client {
            conns,
            readers: Mutex::new(readers),
            rr: AtomicUsize::new(0),
            busy_retries: config.busy_retries,
            moved_retries: config.moved_retries,
            backoff_base_micros: config.backoff_base_micros.max(1),
            backoff_cap_micros: config.backoff_cap_micros.max(1),
            known_epoch: AtomicU64::new(0),
        })
    }

    /// Pipeline a request on the next live connection; returns immediately.
    pub fn submit(&self, req: Request) -> Result<Ticket, ClientError> {
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.conns.len() {
            let conn = &self.conns[(start + i) % self.conns.len()];
            if conn.dead.load(Ordering::SeqCst) {
                continue;
            }
            return self.submit_on(conn, req);
        }
        Err(ClientError::ConnectionClosed)
    }

    fn submit_on(&self, conn: &Arc<Conn>, req: Request) -> Result<Ticket, ClientError> {
        let id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new());
        // Register before writing: the response can race the write return.
        conn.pending.lock().unwrap().insert(id, slot.clone());
        let bytes = encode_to_vec(&Frame::Request { id, req });
        let write = {
            let mut w = conn.writer.lock().unwrap();
            w.write_all(&bytes)
        };
        if let Err(e) = write {
            conn.pending.lock().unwrap().remove(&id);
            conn.poison();
            return Err(ClientError::Io(e.to_string()));
        }
        Ok(Ticket { slot, id })
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        self.retry_busy(
            || match self.submit(Request::Get { key: key.to_vec() })?.wait()? {
                Response::Value(v) => Ok(v),
                other => Self::unexpected(other),
            },
        )
    }

    /// Durable upsert (acked only after the server's group commit).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        self.retry_busy(|| {
            match self
                .submit(Request::Put {
                    key: key.to_vec(),
                    value: value.to_vec(),
                })?
                .wait()?
            {
                Response::Ok => Ok(()),
                other => Self::unexpected(other),
            }
        })
    }

    /// Durable delete.
    pub fn delete(&self, key: &[u8]) -> Result<(), ClientError> {
        self.retry_busy(
            || match self.submit(Request::Delete { key: key.to_vec() })?.wait()? {
                Response::Ok => Ok(()),
                other => Self::unexpected(other),
            },
        )
    }

    /// Range scan: count of records in `[start, ..)` up to `limit`.
    pub fn scan(&self, start: &[u8], limit: u32) -> Result<u64, ClientError> {
        self.retry_busy(|| {
            match self
                .submit(Request::Scan {
                    start: start.to_vec(),
                    limit,
                })?
                .wait()?
            {
                Response::Count(n) => Ok(n),
                other => Self::unexpected(other),
            }
        })
    }

    /// Scrape the server's telemetry snapshot, merged to one JSON
    /// document (`{"stats_epoch": N, "registry": {...}, "mrc": {...}}`).
    /// Answered on the connection itself, so it works even when every
    /// shard is BUSY. A scrape whose sub-blocks straddle a partition-map
    /// epoch (it raced a rebalance commit) is retried once; a second
    /// skewed capture is returned as-is — the caller sees the freshest
    /// epoch's honest pieces rather than an error during heavy churn.
    pub fn stats(&self) -> Result<String, ClientError> {
        let mut payload = self.stats_payload()?;
        if payload.epoch_skew() {
            payload = self.stats_payload()?;
        }
        Ok(payload.merged_json())
    }

    /// One raw STATS scrape, sub-blocks unmerged.
    pub fn stats_payload(&self) -> Result<crate::statsblock::StatsPayload, ClientError> {
        match self
            .submit(Request::Stats {
                version: crate::protocol::STATS_VERSION,
            })?
            .wait()?
        {
            Response::Stats(payload) => Ok(payload),
            other => Self::unexpected(other),
        }
    }

    /// Read-modify-write: atomically append `value` to the stored value.
    pub fn rmw(&self, key: &[u8], value: &[u8]) -> Result<(), ClientError> {
        self.retry_busy(|| {
            match self
                .submit(Request::Rmw {
                    key: key.to_vec(),
                    value: value.to_vec(),
                })?
                .wait()?
            {
                Response::Ok => Ok(()),
                other => Self::unexpected(other),
            }
        })
    }

    fn unexpected<T>(resp: Response) -> Result<T, ClientError> {
        match resp {
            Response::Busy => Err(ClientError::Busy),
            Response::Moved { epoch, shard } => Err(ClientError::Moved { epoch, shard }),
            Response::Err(m) => Err(ClientError::Server(m)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Highest map epoch this client has seen in a `MOVED` reply (0 if
    /// it has never been redirected).
    pub fn known_map_epoch(&self) -> u64 {
        self.known_epoch.load(Ordering::Relaxed)
    }

    /// Exponential backoff with equal jitter: `base * 2^(attempt-1)`
    /// capped, then uniform in `[delay/2, delay]`. Jitter comes from a
    /// per-call xorshift seeded off the virtual clock, so retriers that
    /// were rejected together spread out instead of re-colliding.
    fn backoff(&self, attempt: usize, rng: &mut u64) -> std::time::Duration {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let delay = self
            .backoff_base_micros
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_micros)
            .max(1);
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        std::time::Duration::from_micros(delay / 2 + *rng % (delay / 2 + 1))
    }

    fn retry_busy<T>(
        &self,
        mut op: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut busy_tries = 0;
        let mut moved_tries = 0;
        let mut rng = dcs_telemetry::now_nanos() | 1;
        loop {
            match op() {
                Err(ClientError::Busy) if busy_tries < self.busy_retries => {
                    busy_tries += 1;
                    // The shard is saturated; back off (exponentially,
                    // jittered) instead of hammering the mailbox.
                    std::thread::sleep(self.backoff(busy_tries, &mut rng));
                }
                Err(ClientError::Moved { epoch, .. }) if moved_tries < self.moved_retries => {
                    moved_tries += 1;
                    self.known_epoch.fetch_max(epoch, Ordering::Relaxed);
                    // Resubmitting routes by the server's live map; a
                    // short jittered pause lets an in-flight epoch
                    // install land instead of bouncing off the freeze
                    // window again.
                    std::thread::sleep(self.backoff(moved_tries, &mut rng));
                }
                other => return other,
            }
        }
    }

    /// Close every connection and join the reader threads. In-flight
    /// tickets fail with [`ClientError::ConnectionClosed`].
    pub fn close(&self) {
        for conn in &self.conns {
            if let Ok(w) = conn.writer.lock() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<_> = self.readers.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.close();
    }
}

/// The wire client is itself a [`dcs_workload::KvStore`], so `Runner` and
/// every in-process harness can drive a server over TCP unchanged.
impl dcs_workload::KvStore for Client {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, dcs_workload::StoreFailure> {
        self.get(key)
            .map_err(|e| dcs_workload::StoreFailure(e.to_string()))
    }
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), dcs_workload::StoreFailure> {
        self.put(&key, &value)
            .map_err(|e| dcs_workload::StoreFailure(e.to_string()))
    }
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), dcs_workload::StoreFailure> {
        self.delete(&key)
            .map_err(|e| dcs_workload::StoreFailure(e.to_string()))
    }
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, dcs_workload::StoreFailure> {
        self.scan(start, limit.min(u32::MAX as usize) as u32)
            .map(|n| n as usize)
            .map_err(|e| dcs_workload::StoreFailure(e.to_string()))
    }
}

fn client_read_loop(mut stream: TcpStream, conn: &Arc<Conn>) {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut tmp = [0u8; 64 * 1024];
    let mut consumed = 0usize;
    'io: loop {
        match stream.read(&mut tmp) {
            Ok(0) | Err(_) => break 'io,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
        }
        loop {
            match decode_frame(&buf[consumed..]) {
                Ok(Some((Frame::Response { id, resp }, used))) => {
                    consumed += used;
                    let slot = conn.pending.lock().unwrap().remove(&id);
                    if let Some(slot) = slot {
                        slot.fill(Ok(resp));
                    }
                    // id 0 is the server's "framing broken" notice — no
                    // ticket carries it; the connection is about to close
                    // and poison() will fail the rest.
                }
                Ok(Some((Frame::Request { .. }, _))) | Err(_) => break 'io,
                Ok(None) => break,
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
            consumed = 0;
        }
    }
    conn.poison();
}
