//! Synchronization facade, re-exported from the workspace-shared
//! `dcs-syncshim`: `std::sync` in normal builds, the `dcs-check`
//! instrumented shims when the `check` feature is on (the feature forwards
//! to `dcs-syncshim/check`).
//!
//! Only the **mailbox** and the shard's pending-miss bookkeeping route
//! through this facade — the pieces of the serving layer whose
//! interleavings (concurrent enqueue vs. drain vs. close, submit vs. poll)
//! are worth exploring deterministically. The TCP plumbing uses real OS
//! threads and blocking I/O and is exercised by integration tests, not the
//! scheduler.
//!
//! Both `Mutex` flavours are std-shaped (`lock() -> LockResult<..>`), so
//! call sites compile unchanged. Blocking differs: the normal build parks
//! on a `Condvar`, while the check build — where parking the only runnable
//! OS thread would deadlock the scheduler — spins cooperatively through
//! [`yield_thread`], each iteration a schedule point.

pub use dcs_syncshim::stdlike::Mutex;

/// Cooperative yield for the check build's wait loops: a schedule point
/// inside an execution. The normal build parks on condvars instead and
/// never spins, so this only exists under the feature.
#[cfg(feature = "check")]
pub use dcs_syncshim::yield_thread;
