//! Synchronization facade: `std::sync` in normal builds, the `dcs-check`
//! instrumented shims when the `check` feature is on.
//!
//! Only the **mailbox** routes through this facade — it is the one piece of
//! the serving layer whose interleavings (concurrent enqueue vs. drain vs.
//! close) are worth exploring deterministically. The TCP plumbing uses real
//! OS threads and blocking I/O and is exercised by integration tests, not
//! the scheduler.
//!
//! Both `Mutex` flavours are std-shaped (`lock() -> LockResult<..>`), so
//! call sites compile unchanged. Blocking differs: the normal build parks
//! on a `Condvar`, while the check build — where parking the only runnable
//! OS thread would deadlock the scheduler — spins cooperatively through
//! [`yield_thread`], each iteration a schedule point.

#[cfg(feature = "check")]
pub use dcs_check::sync::Mutex;

#[cfg(not(feature = "check"))]
pub use std::sync::Mutex;

/// Cooperative yield for the checker build's wait loops: a schedule point
/// inside an execution. The normal build parks on condvars instead and
/// never spins, so this only exists under the feature.
#[cfg(feature = "check")]
pub fn yield_thread() {
    dcs_check::thread::yield_now();
}
