//! Wire-level load generator for `dcs-server`.
//!
//! Starts a sharded server over a chosen backend, drives it through the
//! pipelined TCP client in **closed-loop** (N threads, one request each in
//! flight) or **open-loop** mode (requests issued on an arrival schedule
//! from `dcs_workload::Arrivals`, latency measured from the *scheduled*
//! arrival so coordinated omission is not hidden), then performs a
//! drain-and-flush shutdown and verifies that every acknowledged write is
//! still readable from the backends. Emits `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p dcs-server --bin loadgen -- \
//!     --backend caching --mode open --rate 50000
//! ```

use dcs_core::{BackendKind, BackendOpts};
use dcs_costmodel::accounting::{price_run, RunProfile};
use dcs_costmodel::mrc_cost::{marginal_at, recommended_bytes, MrcCurvePoint};
use dcs_costmodel::HardwareCatalog;
use dcs_rebalance::{PartitionMap, PolicyConfig};
use dcs_server::mailbox::Mailbox;
use dcs_server::metrics::LatencyHistogram;
use dcs_server::protocol::{Request, Response};
use dcs_server::report::{
    BenchReport, CostTerms, IoDepthReport, MissServiceReport, MrcConsumerReport, MrcReport,
    OpReport, PlacementReport, TelemetryReport,
};
use dcs_server::shard::{MissMode, Partitioner};
use dcs_server::{
    Client, ClientConfig, RebalanceConfig, Server, ServerConfig, ShardBackend, Ticket,
};
use dcs_workload::{keys, Arrivals, KeyDist, OpKind, OpMix, WorkloadSpec};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    backend: BackendKind,
    mode: String,
    rate: f64,
    ops: u64,
    records: u64,
    shards: usize,
    conns: usize,
    threads: usize,
    value_len: usize,
    workload: String,
    key_dist: String,
    theta: f64,
    rebalance: bool,
    rebalance_tick_ms: u64,
    seed: u64,
    out: String,
    miss_mode: MissMode,
    device_latency: u64,
    memory_budget: Option<usize>,
    trace_out: Option<String>,
    trace_sample: u32,
    mrc: bool,
    flight_out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            backend: BackendKind::Caching,
            mode: "closed".into(),
            rate: 50_000.0,
            ops: 100_000,
            records: 20_000,
            shards: 4,
            conns: 4,
            threads: 4,
            value_len: 100,
            workload: "mixed".into(),
            key_dist: "default".into(),
            theta: 0.99,
            rebalance: false,
            rebalance_tick_ms: 20,
            seed: 42,
            out: "BENCH_server.json".into(),
            miss_mode: MissMode::Async,
            device_latency: 0,
            memory_budget: None,
            trace_out: None,
            trace_sample: 10,
            mrc: false,
            flight_out: "FLIGHT_server.json".into(),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!(
                "loadgen: wire-level load generator for dcs-server\n\
                 --backend caching|bwtree|masstree|lsm   (default caching)\n\
                 --mode closed|open|inproc               (default closed;\n\
                    inproc skips the wire and drives the backends directly\n\
                    for the wire-overhead comparison)\n\
                 --rate OPS_PER_SEC                      (open loop; default 50000)\n\
                 --ops N                                 (default 100000)\n\
                 --records N                             (default 20000)\n\
                 --shards N                              (default 4)\n\
                 --conns N                               (default 4)\n\
                 --threads N                             (closed loop; default 4)\n\
                 --value-len BYTES                       (default 100)\n\
                 --workload mixed|a|b|c|d|e|f            (default mixed)\n\
                 --key-dist default|uniform|zipfian      (default default: keep\n\
                    the workload's own distribution; otherwise override it)\n\
                 --theta T                               (default 0.99; Zipfian\n\
                    skew for --key-dist zipfian)\n\
                 --rebalance on|off                      (default off; run the\n\
                    background range rebalancer against shard heat)\n\
                 --rebalance-tick-ms MS                  (default 20)\n\
                 --seed N                                (default 42)\n\
                 --out PATH                              (default BENCH_server.json)\n\
                 --miss-mode sync|async                  (default async; how a\n\
                    shard services cache misses on async-capable backends)\n\
                 --device-latency NANOS                  (default 0; injected\n\
                    wall-clock latency per device read)\n\
                 --memory-budget BYTES                   (caching backend only;\n\
                    shrink to force a cold cache and real misses)\n\
                 --trace-out PATH                        (write a Chrome/Perfetto\n\
                    trace of the sampled spans after the run)\n\
                 --trace-sample PERMILLE                 (default 10; root-span\n\
                    sampling rate, 0..=1000. 1000 traces every request)\n\
                 --mrc on|off                            (default off; report\n\
                    per-consumer miss-ratio curves fused with the cost\n\
                    catalog, and write a flight-recorder dump)\n\
                 --flight-out PATH                       (default\n\
                    FLIGHT_server.json; where --mrc writes the dump)"
            );
            std::process::exit(0);
        }
        let value = argv.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        match flag {
            "--backend" => {
                args.backend = BackendKind::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown backend '{value}'");
                    std::process::exit(2);
                })
            }
            "--mode" => args.mode = value.clone(),
            "--rate" => args.rate = value.parse().expect("--rate"),
            "--ops" => args.ops = value.parse().expect("--ops"),
            "--records" => args.records = value.parse().expect("--records"),
            "--shards" => args.shards = value.parse().expect("--shards"),
            "--conns" => args.conns = value.parse().expect("--conns"),
            "--threads" => args.threads = value.parse().expect("--threads"),
            "--value-len" => args.value_len = value.parse().expect("--value-len"),
            "--workload" => args.workload = value.clone(),
            "--key-dist" => args.key_dist = value.clone(),
            "--theta" => args.theta = value.parse().expect("--theta"),
            "--rebalance" => {
                args.rebalance = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("--rebalance must be on or off, got '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--rebalance-tick-ms" => {
                args.rebalance_tick_ms = value.parse().expect("--rebalance-tick-ms")
            }
            "--seed" => args.seed = value.parse().expect("--seed"),
            "--out" => args.out = value.clone(),
            "--miss-mode" => {
                args.miss_mode = MissMode::parse(value).unwrap_or_else(|| {
                    eprintln!("--miss-mode must be sync or async, got '{value}'");
                    std::process::exit(2);
                })
            }
            "--device-latency" => args.device_latency = value.parse().expect("--device-latency"),
            "--memory-budget" => args.memory_budget = Some(value.parse().expect("--memory-budget")),
            "--trace-out" => args.trace_out = Some(value.clone()),
            "--trace-sample" => args.trace_sample = value.parse().expect("--trace-sample"),
            "--mrc" => {
                args.mrc = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("--mrc must be on or off, got '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--flight-out" => args.flight_out = value.clone(),
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(args.shards > 0 && args.conns > 0 && args.threads > 0);
    assert!(
        args.mode == "open" || args.mode == "closed" || args.mode == "inproc",
        "--mode must be open, closed, or inproc"
    );
    assert!(
        matches!(args.key_dist.as_str(), "default" | "uniform" | "zipfian"),
        "--key-dist must be default, uniform, or zipfian"
    );
    args
}

const KINDS: [&str; 4] = ["get", "put", "rmw", "scan"];
const K_GET: usize = 0;
const K_PUT: usize = 1;
const K_RMW: usize = 2;
const K_SCAN: usize = 3;

/// Client-side per-kind accounting.
#[derive(Default)]
struct KindStats {
    count: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    hist: LatencyHistogram,
}

struct Harness {
    stats: [KindStats; 4],
    /// Key ids whose writes the server acknowledged (ack ⇒ durable).
    acked: Mutex<HashSet<u64>>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            stats: Default::default(),
            acked: Mutex::new(HashSet::new()),
        }
    }

    /// Account one finished request.
    fn settle(
        &self,
        kind: usize,
        key_id: u64,
        outcome: &Result<Response, dcs_server::ClientError>,
        latency: Duration,
    ) {
        let s = &self.stats[kind];
        match outcome {
            Ok(Response::Busy) => {
                s.busy.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Err(_)) | Err(_) => {
                s.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {
                s.count.fetch_add(1, Ordering::Relaxed);
                s.hist.record(latency.as_nanos() as u64);
                if kind == K_PUT || kind == K_RMW {
                    self.acked.lock().unwrap().insert(key_id);
                }
            }
        }
    }
}

fn spec_for(args: &Args) -> WorkloadSpec {
    let mut spec = if args.workload == "mixed" {
        // A serving-flavored blend exercising every opcode: reads dominate,
        // writes ride the group-commit path, RMWs stress shard atomicity,
        // short scans cross shard boundaries.
        WorkloadSpec {
            record_count: args.records,
            key_dist: KeyDist::zipfian(0.99),
            mix: OpMix::new(vec![
                (OpKind::Read, 0.50),
                (OpKind::Update, 0.25),
                (OpKind::ReadModifyWrite, 0.15),
                (OpKind::Scan { limit: 10 }, 0.10),
            ]),
            value_len: args.value_len,
            seed: args.seed,
        }
    } else {
        let c = args.workload.chars().next().unwrap_or('b');
        WorkloadSpec::ycsb(c, args.records, args.value_len, args.seed)
    };
    // --key-dist overrides whatever the workload preset picked, so the
    // same op mix can be replayed with and without skew (the rebalancing
    // A/B in CI drives a Zipfian hot shard this way).
    match args.key_dist.as_str() {
        "uniform" => spec.key_dist = KeyDist::Uniform,
        "zipfian" => spec.key_dist = KeyDist::zipfian(args.theta),
        _ => {}
    }
    spec
}

fn request_for(op: &dcs_workload::Operation) -> (usize, Request) {
    let key = keys::encode(op.key_id).to_vec();
    match op.kind {
        OpKind::Read => (K_GET, Request::Get { key }),
        OpKind::Update | OpKind::Insert | OpKind::BlindUpdate => (
            K_PUT,
            Request::Put {
                key,
                value: op.value.clone(),
            },
        ),
        OpKind::ReadModifyWrite => (
            K_RMW,
            Request::Rmw {
                key,
                value: op.value.clone(),
            },
        ),
        OpKind::Scan { limit } => (
            K_SCAN,
            Request::Scan {
                start: key,
                limit: u32::from(limit),
            },
        ),
    }
}

/// Pipelined bulk load; every load put must be acknowledged.
fn load_phase(client: &Client, spec: &WorkloadSpec, harness: &Harness) {
    let window = 512;
    let mut inflight: std::collections::VecDeque<(u64, Ticket)> = Default::default();
    let drain = |q: &mut std::collections::VecDeque<(u64, Ticket)>, to: usize| {
        while q.len() > to {
            let (id, ticket) = q.pop_front().unwrap();
            match ticket.wait() {
                Ok(Response::Ok) => {
                    harness.acked.lock().unwrap().insert(id);
                }
                Ok(Response::Busy) => {
                    // Overloaded during load: fall back to the synchronous
                    // retrying path so the load set stays complete.
                    let key = keys::encode(id);
                    client
                        .put(&key, &keys::value_for(id, 0, spec.value_len))
                        .expect("load put");
                    harness.acked.lock().unwrap().insert(id);
                }
                other => panic!("load put failed: {other:?}"),
            }
        }
    };
    for (key, value) in spec.load_set() {
        let id = keys::decode(&key).expect("load key");
        let ticket = client
            .submit(Request::Put { key, value })
            .expect("load submit");
        inflight.push_back((id, ticket));
        drain(&mut inflight, window);
    }
    drain(&mut inflight, 0);
}

fn run_closed(
    args: &Args,
    client: &Arc<Client>,
    spec: &WorkloadSpec,
    harness: &Arc<Harness>,
) -> u64 {
    let per_thread = args.ops / args.threads as u64;
    let mut handles = Vec::new();
    for t in 0..args.threads {
        let client = client.clone();
        let harness = harness.clone();
        let mut spec = spec.clone();
        spec.seed = spec.seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9);
        handles.push(std::thread::spawn(move || {
            let mut gen = spec.generator();
            for _ in 0..per_thread {
                let op = gen.next_op();
                let (kind, req) = request_for(&op);
                let start = Instant::now();
                let outcome = client.submit(req).map(|t| t.wait()).and_then(|r| r);
                harness.settle(kind, op.key_id, &outcome, start.elapsed());
            }
        }));
    }
    for h in handles {
        h.join().expect("closed-loop worker");
    }
    per_thread * args.threads as u64
}

struct OpenJob {
    scheduled: Instant,
    kind: usize,
    key_id: u64,
    ticket: Result<Ticket, dcs_server::ClientError>,
}

fn run_open(args: &Args, client: &Arc<Client>, spec: &WorkloadSpec, harness: &Arc<Harness>) -> u64 {
    let completions: Arc<Mailbox<OpenJob>> = Arc::new(Mailbox::new(usize::MAX >> 1));
    let mut reapers = Vec::new();
    for _ in 0..2 {
        let completions = completions.clone();
        let harness = harness.clone();
        reapers.push(std::thread::spawn(move || {
            let mut batch = Vec::new();
            while completions.recv_batch(256, &mut batch) {
                for job in batch.drain(..) {
                    let outcome = job.ticket.and_then(|t| t.wait());
                    // Open loop: latency runs from the *scheduled* arrival,
                    // so queueing delay from a saturated server is charged
                    // to the operation (no coordinated omission).
                    let latency = job.scheduled.elapsed();
                    harness.settle(job.kind, job.key_id, &outcome, latency);
                }
            }
        }));
    }
    let mut arrivals = Arrivals::poisson(args.rate, args.seed ^ 0xA11);
    let mut gen = spec.generator();
    let t0 = Instant::now();
    let mut offset = Duration::ZERO;
    for _ in 0..args.ops {
        offset += Duration::from_nanos(arrivals.next_gap());
        loop {
            let elapsed = t0.elapsed();
            if elapsed >= offset {
                break;
            }
            let remain = offset - elapsed;
            if remain > Duration::from_millis(2) {
                std::thread::sleep(remain - Duration::from_millis(1));
            } else {
                std::hint::spin_loop();
            }
        }
        let op = gen.next_op();
        let (kind, req) = request_for(&op);
        let job = OpenJob {
            scheduled: t0 + offset,
            kind,
            key_id: op.key_id,
            ticket: client.submit(req),
        };
        if completions.send(job).is_err() {
            panic!("completion queue refused a job");
        }
    }
    completions.close();
    for r in reapers {
        r.join().expect("reaper");
    }
    args.ops
}

/// The in-process baseline for the wire-overhead comparison: the same
/// generator and closed-loop thread structure, but operations call the
/// shard-routed backends directly — no protocol, sockets, mailboxes, or
/// group commit.
fn run_inproc(
    args: &Args,
    backends: &[Arc<dyn dcs_workload::KvStore + Send + Sync>],
    partitioner: &Partitioner,
    spec: &WorkloadSpec,
    harness: &Arc<Harness>,
) -> u64 {
    let per_thread = args.ops / args.threads as u64;
    std::thread::scope(|scope| {
        for t in 0..args.threads {
            let harness = harness.clone();
            let mut spec = spec.clone();
            spec.seed = spec.seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9);
            scope.spawn(move || {
                let mut gen = spec.generator();
                for _ in 0..per_thread {
                    let op = gen.next_op();
                    let key = keys::encode(op.key_id).to_vec();
                    let store = &backends[partitioner.shard_of(&key)];
                    let start = Instant::now();
                    let (kind, outcome) = match op.kind {
                        OpKind::Read => (K_GET, store.kv_get(&key).map(Response::Value)),
                        OpKind::Update | OpKind::Insert | OpKind::BlindUpdate => {
                            (K_PUT, store.kv_put(key, op.value).map(|()| Response::Ok))
                        }
                        OpKind::ReadModifyWrite => (
                            K_RMW,
                            store.kv_get(&key).and_then(|cur| {
                                let mut v = cur.unwrap_or_default();
                                v.extend_from_slice(&op.value);
                                store.kv_put(key, v).map(|()| Response::Ok)
                            }),
                        ),
                        OpKind::Scan { limit } => (
                            K_SCAN,
                            store
                                .kv_scan(&key, limit as usize)
                                .map(|n| Response::Count(n as u64)),
                        ),
                    };
                    let outcome =
                        outcome.map_err(|e| dcs_server::ClientError::Server(e.to_string()));
                    harness.settle(kind, op.key_id, &outcome, start.elapsed());
                }
            });
        }
    });
    per_thread * args.threads as u64
}

fn main() {
    let args = parse_args();
    let t_main = Instant::now();
    dcs_telemetry::set_sampling_permille(args.trace_sample);
    let spec = spec_for(&args);
    eprintln!(
        "loadgen: backend={} mode={} shards={} conns={} records={} ops={}",
        args.backend.name(),
        args.mode,
        args.shards,
        args.conns,
        args.records,
        args.ops
    );

    let built = args.backend.build_shards_with(
        args.shards,
        BackendOpts {
            memory_budget: args.memory_budget,
            wall_read_latency: args.device_latency,
        },
    );
    let backends: Vec<Arc<dyn dcs_workload::KvStore + Send + Sync>> =
        built.iter().map(|b| b.kv.clone()).collect();
    let partitioner = if args.shards == 1 {
        Partitioner::single()
    } else {
        Partitioner::from_splits(keys::range_splits(args.records, args.shards))
    };
    let harness = Arc::new(Harness::new());

    // Flight-recorder pacing: the recorder is passive, so a side thread
    // ticks the global ring every 25ms while the run is in flight
    // (every_n = 10 ⇒ a frame roughly every 250ms, ring bounded at 32).
    // The serving path never touches it.
    let flight_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flight_ticker = args.mrc.then(|| {
        dcs_telemetry::flight().configure(dcs_telemetry::FlightConfig::default());
        let stop = flight_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                dcs_telemetry::flight().tick();
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    });

    let (issued, duration, shard_snapshots, cost_before, final_map) = if args.mode == "inproc" {
        // In-process baseline: same workload, no wire. Load directly.
        for (key, value) in spec.load_set() {
            let id = keys::decode(&key).expect("load key");
            backends[partitioner.shard_of(&key)]
                .kv_put(key, value)
                .expect("load put");
            harness.acked.lock().unwrap().insert(id);
        }
        eprintln!("loadgen: loaded {} records (in-process)", args.records);
        let cost_before = dcs_telemetry::ledger().totals();
        let run_start = Instant::now();
        let issued = run_inproc(&args, &backends, &partitioner, &spec, &harness);
        let map: Option<Arc<PartitionMap>> = None;
        (issued, run_start.elapsed(), Vec::new(), cost_before, map)
    } else {
        let config = ServerConfig {
            shard: dcs_server::ShardConfig {
                miss_mode: args.miss_mode,
                ..dcs_server::ShardConfig::default()
            },
            rebalance: RebalanceConfig {
                enabled: args.rebalance,
                tick_ms: args.rebalance_tick_ms,
                policy: PolicyConfig {
                    est_records: args.records,
                    ..PolicyConfig::default()
                },
                ..RebalanceConfig::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::start_with(
            built
                .iter()
                .map(|b| ShardBackend {
                    kv: b.kv.clone(),
                    async_kv: b.async_kv.clone(),
                })
                .collect(),
            partitioner.clone(),
            config,
        )
        .expect("start server");
        let client = Arc::new(
            Client::connect(
                server.addr(),
                ClientConfig {
                    connections: args.conns,
                    ..ClientConfig::default()
                },
            )
            .expect("connect"),
        );

        load_phase(&client, &spec, &harness);
        eprintln!("loadgen: loaded {} records", args.records);

        let cost_before = dcs_telemetry::ledger().totals();
        let run_start = Instant::now();
        let issued = match args.mode.as_str() {
            "open" => run_open(&args, &client, &spec, &harness),
            _ => run_closed(&args, &client, &spec, &harness),
        };
        let duration = run_start.elapsed();

        client.close();
        // Snapshot placement before teardown: post-run verification must
        // look up each key through the *final* map, since the rebalancer
        // may have migrated ranges off their seed shard mid-run.
        let final_map = server.router().map().load();
        let report = server.shutdown();
        (
            issued,
            duration,
            report.shards,
            cost_before,
            Some(final_map),
        )
    };
    flight_stop.store(true, Ordering::Relaxed);
    if let Some(h) = flight_ticker {
        h.join().expect("flight ticker");
    }
    // Ledger delta over the measured run (shutdown flush included: the
    // drain is work the run caused). Gauges are the post-run occupancy.
    let cost = dcs_telemetry::ledger().totals().delta(&cost_before);

    // Verification: after the drain-and-flush shutdown, every write the
    // server acknowledged must still be readable from the backends.
    let acked = harness.acked.lock().unwrap();
    let mut missing = 0u64;
    for &id in acked.iter() {
        let key = keys::encode(id);
        let shard = match &final_map {
            Some(map) => map.shard_of(&key),
            None => partitioner.shard_of(&key),
        };
        match backends[shard].kv_get(&key) {
            Ok(Some(_)) => {}
            _ => missing += 1,
        }
    }

    let completed: u64 = harness
        .stats
        .iter()
        .map(|s| s.count.load(Ordering::Relaxed))
        .sum();
    let throughput = completed as f64 / duration.as_secs_f64().max(1e-9);
    // Aggregate the achieved-io-depth histograms across shard devices
    // (the in-memory comparators have no device and report zeros).
    let mut depth = dcs_telemetry::HistogramSnapshot::default();
    for b in &built {
        if let Some(device) = &b.device {
            depth.merge(&device.stats().io_depth);
        }
    }
    let io_depth = IoDepthReport {
        samples: depth.count,
        mean: depth.mean(),
        max: depth.max,
        buckets: depth.nonzero_buckets(),
    };
    let miss_service = MissServiceReport::from_snapshots(&shard_snapshots);

    // Export the sampled-span timeline before summarizing it, so the
    // trace stats in the report describe what the file contains.
    if let Some(path) = &args.trace_out {
        std::fs::write(path, dcs_telemetry::export_chrome_json()).expect("write trace");
        eprintln!("loadgen: wrote span trace -> {path}");
    }
    let tstats = dcs_telemetry::trace_stats();

    // Price the measured run twice: per-term directly from the ledger
    // counts, and through the cost model's own `price_run` over the same
    // profile. Agreement (the `reconciled` flag, 10% per-term) certifies
    // the attribution funnel feeds `dcs_costmodel::accounting` without
    // drift — every bump site accounted once, none double-counted.
    let hw = HardwareCatalog::paper();
    let secs = duration.as_secs_f64();
    let measured = CostTerms {
        dram_rent: cost.dram_bytes as f64 * hw.dram_per_byte * secs,
        flash_rent: cost.flash_bytes as f64 * hw.flash_per_byte * secs,
        mm_exec: cost.mm_ops as f64 * hw.mm_exec_cost(),
        ss_exec: cost.ss_ops() as f64 * hw.ss_exec_cost(),
    };
    let profile = RunProfile {
        duration_secs: secs,
        avg_dram_bytes: cost.dram_bytes as f64,
        avg_flash_bytes: cost.flash_bytes as f64,
        mm_ops: cost.mm_ops,
        ss_ops: cost.ss_ops(),
    };
    let priced = price_run(&hw, &profile);
    let modeled = CostTerms {
        dram_rent: priced.dram_rent,
        flash_rent: priced.flash_rent,
        mm_exec: priced.mm_exec,
        ss_exec: priced.ss_exec,
    };
    let telemetry = TelemetryReport {
        sampling_permille: dcs_telemetry::sampling_permille(),
        roots_seen: tstats.roots_seen,
        roots_sampled: tstats.roots_sampled,
        events_dropped: tstats.dropped,
        trace_out: args.trace_out.clone().unwrap_or_default(),
        mm_ops: cost.mm_ops,
        ss_reads: cost.ss_reads,
        ss_writes: cost.ss_writes,
        wal_barriers: cost.wal_barriers,
        maintenance_ops: cost.maintenance_ops,
        avg_dram_bytes: cost.dram_bytes as f64,
        avg_flash_bytes: cost.flash_bytes as f64,
        measured,
        modeled,
        reconciled: measured.reconciles_with(&modeled, 0.10),
        trace_dropped_spans: dcs_telemetry::global()
            .counter("trace.dropped_spans")
            .value(),
    };
    let registry = dcs_telemetry::global();
    let shard_ops: Vec<u64> = shard_snapshots.iter().map(|s| s.total_ops()).collect();
    let placement = PlacementReport {
        rebalance_enabled: args.rebalance,
        map_epoch: final_map.as_ref().map_or(0, |m| m.epoch()),
        map_ranges: final_map.as_ref().map_or(0, |m| m.ranges()),
        moves: registry.counter("rebalance.moves").value(),
        splits: registry.counter("rebalance.splits").value(),
        merges: registry.counter("rebalance.merges").value(),
        migrated_records: registry.counter("rebalance.migrated_records").value(),
        moved_redirects: shard_snapshots.iter().map(|s| s.moved_redirects).sum(),
        shard_op_spread: PlacementReport::spread_of(&shard_ops),
        shard_ops,
    };
    let mrc_report = if args.mrc {
        // Post-run anomaly detection: fire the flight recorder so the
        // dump's final frame lands at the moment of detection, then
        // write the ring unconditionally (CI ships it as an artifact
        // whether or not anything tripped).
        let flight = dcs_telemetry::flight();
        let total_busy: u64 = harness
            .stats
            .iter()
            .map(|s| s.busy.load(Ordering::Relaxed))
            .sum();
        if total_busy.saturating_mul(100) > issued.max(1) {
            flight.trigger("busy spike");
        }
        let get = harness.stats[K_GET].hist.summary();
        if get.count > 0 && get.p95_nanos > 10.0 * get.p50_nanos.max(1.0) {
            flight.trigger("p95 regression");
        }
        if !telemetry.reconciled {
            flight.trigger("cost reconciliation failure");
        }
        std::fs::write(&args.flight_out, flight.dump_json()).expect("write flight dump");
        eprintln!("loadgen: wrote flight-recorder dump -> {}", args.flight_out);

        // Fuse each consumer's measured curve with the cost catalog.
        // The access rate spans the whole process (load + run): the
        // profilers count from process start, so dividing by the run
        // window alone would overstate the rent the cache saves.
        let elapsed = t_main.elapsed().as_secs_f64().max(1e-9);
        let budget = args.memory_budget.map_or(0.0, |b| b as f64);
        let consumers = dcs_telemetry::mrc()
            .snapshots()
            .iter()
            .map(|s| {
                let curve: Vec<MrcCurvePoint> = s
                    .points
                    .iter()
                    .map(|p| MrcCurvePoint {
                        bytes: p.bytes,
                        miss_ratio: p.miss_ratio,
                    })
                    .collect();
                let access_rate = s.accesses as f64 / elapsed;
                // Price the marginal byte at the configured budget, or at
                // the full measured working set when none was given.
                let eval_budget = if budget > 0.0 {
                    budget
                } else {
                    curve.last().map_or(0.0, |p| p.bytes)
                };
                let at = marginal_at(&hw, access_rate, &curve, eval_budget);
                MrcConsumerReport {
                    consumer: s.consumer.clone(),
                    accesses: s.accesses,
                    sampled: s.sampled,
                    sample_rate: s.sample_rate,
                    mean_entity_bytes: s.mean_entity_bytes,
                    points: s.points.iter().map(|p| (p.bytes, p.miss_ratio)).collect(),
                    marginal_value_per_byte: at.map_or(0.0, |p| p.marginal_value_per_byte),
                    dram_price_per_byte: hw.dram_per_byte,
                    net_per_byte: at.map_or(0.0, |p| p.net_per_byte()),
                    recommended_bytes: recommended_bytes(&hw, access_rate, &curve),
                }
            })
            .collect();
        MrcReport {
            enabled: true,
            budget_bytes: budget,
            flight_out: args.flight_out.clone(),
            triggers: flight.triggers(),
            consumers,
        }
    } else {
        MrcReport::default()
    };
    let bench = BenchReport {
        backend: args.backend.name().into(),
        mode: args.mode.clone(),
        miss_mode: args.miss_mode.name().into(),
        device_latency_nanos: args.device_latency,
        shards: args.shards,
        connections: args.conns,
        records: args.records,
        value_len: args.value_len,
        target_rate: if args.mode == "open" { args.rate } else { 0.0 },
        ops_issued: issued,
        ops_completed: completed,
        duration_secs: duration.as_secs_f64(),
        throughput_ops_per_sec: throughput,
        ops: KINDS
            .iter()
            .zip(harness.stats.iter())
            .map(|(name, s)| OpReport {
                kind: (*name).into(),
                count: s.count.load(Ordering::Relaxed),
                busy: s.busy.load(Ordering::Relaxed),
                errors: s.errors.load(Ordering::Relaxed),
                latency: s.hist.summary(),
            })
            .collect(),
        shard_snapshots,
        io_depth,
        miss_service,
        placement,
        telemetry,
        mrc: mrc_report,
        acked_writes: acked.len() as u64,
        verified_keys: acked.len() as u64 - missing,
        missing_keys: missing,
    };
    std::fs::write(&args.out, bench.to_json()).expect("write report");

    let p99_get = bench.ops[K_GET].latency.p99_nanos / 1000.0;
    let p99_put = bench.ops[K_PUT].latency.p99_nanos / 1000.0;
    eprintln!(
        "loadgen: {completed}/{issued} ops in {:.2}s = {throughput:.0} ops/s \
         (get p99 {p99_get:.0}us, put p99 {p99_put:.0}us); \
         acked {} verified {} missing {missing} -> {}",
        duration.as_secs_f64(),
        acked.len(),
        acked.len() as u64 - missing,
        args.out
    );

    if missing > 0 {
        eprintln!("loadgen: FAIL — {missing} acknowledged writes lost");
        std::process::exit(1);
    }
    if completed == 0 || throughput <= 0.0 {
        eprintln!("loadgen: FAIL — no completed operations");
        std::process::exit(1);
    }
}
