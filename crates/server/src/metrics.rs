//! Per-shard serving metrics: op counts, batch sizes, queue depth, and
//! latency histograms with percentile extraction.
//!
//! The latency histogram is the workspace-shared
//! [`dcs_telemetry::Histogram`] — this module used to carry its own
//! power-of-two copy, one of the two duplicates `dcs-telemetry`
//! replaced. Recording is one atomic increment; percentile queries
//! interpolate within the winning bucket and clamp to the observed max
//! (the bias fix lives in the shared crate, pinned there against an
//! exact-sorted reference).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The shared histogram, recording nanoseconds here.
pub use dcs_telemetry::Histogram as LatencyHistogram;
/// Percentile summary extracted from a [`LatencyHistogram`].
pub use dcs_telemetry::HistogramSummary as LatencySummary;

/// Live counters for one shard. All fields are updated by the shard worker
/// and its feeding connections; `snapshot` is safe any time.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Reads (GET) served.
    pub gets: AtomicU64,
    /// Upserts (PUT) applied.
    pub puts: AtomicU64,
    /// Deletes applied.
    pub deletes: AtomicU64,
    /// Scans served.
    pub scans: AtomicU64,
    /// Read-modify-writes applied.
    pub rmws: AtomicU64,
    /// Requests refused with BUSY at this shard's mailbox.
    pub busy_rejections: AtomicU64,
    /// Requests answered `MOVED` because the current partition map says
    /// another shard owns (or is receiving) the key.
    pub moved_redirects: AtomicU64,
    /// Batches drained from the mailbox.
    pub batches: AtomicU64,
    /// Operations across all drained batches.
    pub batched_ops: AtomicU64,
    /// Largest single batch.
    pub max_batch: AtomicUsize,
    /// Group commits issued (one WAL flush each).
    pub group_commits: AtomicU64,
    /// Write records carried by those group commits.
    pub group_committed_records: AtomicU64,
    /// GETs that missed the cache and went to the device (async submit
    /// returned a pending token).
    pub misses_submitted: AtomicU64,
    /// Most misses parked concurrently (async miss mode only; a blocking
    /// shard never holds more than one).
    pub parked_peak: AtomicUsize,
    /// Read-class latency (GET/SCAN), mailbox-entry to reply.
    pub read_latency: LatencyHistogram,
    /// Write-class latency (PUT/DELETE/RMW), mailbox-entry to reply — this
    /// includes the group-commit flush wait.
    pub write_latency: LatencyHistogram,
    /// Miss-service latency: mailbox-entry to reply for GETs that needed a
    /// device fetch. `read_latency` keeps only the memory-served requests,
    /// so the two histograms are the paper's hit vs. miss split.
    pub miss_latency: LatencyHistogram,
}

/// Point-in-time copy of a shard's counters, with latency summaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSnapshot {
    /// GETs served.
    pub gets: u64,
    /// PUTs applied.
    pub puts: u64,
    /// Deletes applied.
    pub deletes: u64,
    /// Scans served.
    pub scans: u64,
    /// RMWs applied.
    pub rmws: u64,
    /// BUSY rejections at the mailbox.
    pub busy_rejections: u64,
    /// Requests answered `MOVED` (stale-routed under the current map).
    pub moved_redirects: u64,
    /// Batches drained.
    pub batches: u64,
    /// Ops across drained batches.
    pub batched_ops: u64,
    /// Largest batch.
    pub max_batch: usize,
    /// Mailbox depth high-water mark.
    pub depth_high_water: usize,
    /// Group commits (WAL flushes).
    pub group_commits: u64,
    /// Records across group commits.
    pub group_committed_records: u64,
    /// GETs that went to the device.
    pub misses: u64,
    /// Most misses parked concurrently.
    pub parked_peak: usize,
    /// Read-class latency summary (memory-served requests only).
    pub read_latency: LatencySummary,
    /// Write-class latency summary.
    pub write_latency: LatencySummary,
    /// Miss-service latency summary (device-served GETs).
    pub miss_latency: LatencySummary,
}

impl ShardMetrics {
    /// Mean ops per drained batch.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            0.0
        } else {
            self.batched_ops.load(Ordering::Relaxed) as f64 / b as f64
        }
    }

    /// Copy the counters out (depth high-water supplied by the mailbox).
    pub fn snapshot(&self, depth_high_water: usize) -> ShardSnapshot {
        ShardSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            rmws: self.rmws.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            moved_redirects: self.moved_redirects.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            depth_high_water,
            group_commits: self.group_commits.load(Ordering::Relaxed),
            group_committed_records: self.group_committed_records.load(Ordering::Relaxed),
            misses: self.misses_submitted.load(Ordering::Relaxed),
            parked_peak: self.parked_peak.load(Ordering::Relaxed),
            read_latency: self.read_latency.summary(),
            write_latency: self.write_latency.summary(),
            miss_latency: self.miss_latency.summary(),
        }
    }
}

impl ShardSnapshot {
    /// All operations executed by this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.scans + self.rmws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_order_and_bound() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1 µs .. 1 ms
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.p50_nanos <= s.p95_nanos && s.p95_nanos <= s.p99_nanos);
        assert!(s.p99_nanos <= s.max_nanos as f64);
        assert_eq!(s.max_nanos, 1_000_000);
        // p50 of a uniform 1µs..1ms spread lands around 500µs; power-of-two
        // buckets bound the error to the bucket width.
        assert!(
            (260_000.0..=1_000_000.0).contains(&s.p50_nanos),
            "p50 {}",
            s.p50_nanos
        );
    }

    #[test]
    fn shard_snapshot_totals() {
        let m = ShardMetrics::default();
        m.gets.store(5, Ordering::Relaxed);
        m.puts.store(3, Ordering::Relaxed);
        m.rmws.store(2, Ordering::Relaxed);
        let s = m.snapshot(7);
        assert_eq!(s.total_ops(), 10);
        assert_eq!(s.depth_high_water, 7);
    }
}
