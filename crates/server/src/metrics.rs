//! Per-shard serving metrics: op counts, batch sizes, queue depth, and
//! latency histograms with percentile extraction.
//!
//! Latencies land in power-of-two nanosecond buckets (64 of them cover
//! 1 ns ..= ~18 s), so recording is one atomic increment and percentile
//! queries interpolate within the winning bucket — bounded error (< 2× at
//! the bucket edge, far less with interpolation), zero allocation, safe to
//! share across threads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const BUCKETS: usize = 64;

/// A concurrent, fixed-footprint latency histogram over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// Percentile summary extracted from a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_nanos: f64,
    /// Median.
    pub p50_nanos: f64,
    /// 95th percentile.
    pub p95_nanos: f64,
    /// 99th percentile.
    pub p99_nanos: f64,
    /// Largest single sample.
    pub max_nanos: u64,
}

impl LatencyHistogram {
    /// A fresh histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, nanos: u64) {
        let bucket = (64 - nanos.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Nanoseconds at quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the winning power-of-two bucket. 0 with no samples.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 1u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let frac = (rank - seen) as f64 / c as f64;
                // Interpolating toward the bucket's upper edge can pass the
                // largest sample actually seen; never report beyond it.
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.min(self.max_nanos.load(Ordering::Relaxed) as f64);
            }
            seen += c;
        }
        self.max_nanos.load(Ordering::Relaxed) as f64
    }

    /// Extract the percentile summary.
    pub fn summary(&self) -> LatencySummary {
        let count = self.total.load(Ordering::Relaxed);
        LatencySummary {
            count,
            mean_nanos: if count == 0 {
                0.0
            } else {
                self.sum_nanos.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Live counters for one shard. All fields are updated by the shard worker
/// and its feeding connections; `snapshot` is safe any time.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Reads (GET) served.
    pub gets: AtomicU64,
    /// Upserts (PUT) applied.
    pub puts: AtomicU64,
    /// Deletes applied.
    pub deletes: AtomicU64,
    /// Scans served.
    pub scans: AtomicU64,
    /// Read-modify-writes applied.
    pub rmws: AtomicU64,
    /// Requests refused with BUSY at this shard's mailbox.
    pub busy_rejections: AtomicU64,
    /// Batches drained from the mailbox.
    pub batches: AtomicU64,
    /// Operations across all drained batches.
    pub batched_ops: AtomicU64,
    /// Largest single batch.
    pub max_batch: AtomicUsize,
    /// Group commits issued (one WAL flush each).
    pub group_commits: AtomicU64,
    /// Write records carried by those group commits.
    pub group_committed_records: AtomicU64,
    /// GETs that missed the cache and went to the device (async submit
    /// returned a pending token).
    pub misses_submitted: AtomicU64,
    /// Most misses parked concurrently (async miss mode only; a blocking
    /// shard never holds more than one).
    pub parked_peak: AtomicUsize,
    /// Read-class latency (GET/SCAN), mailbox-entry to reply.
    pub read_latency: LatencyHistogram,
    /// Write-class latency (PUT/DELETE/RMW), mailbox-entry to reply — this
    /// includes the group-commit flush wait.
    pub write_latency: LatencyHistogram,
    /// Miss-service latency: mailbox-entry to reply for GETs that needed a
    /// device fetch. `read_latency` keeps only the memory-served requests,
    /// so the two histograms are the paper's hit vs. miss split.
    pub miss_latency: LatencyHistogram,
}

/// Point-in-time copy of a shard's counters, with latency summaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSnapshot {
    /// GETs served.
    pub gets: u64,
    /// PUTs applied.
    pub puts: u64,
    /// Deletes applied.
    pub deletes: u64,
    /// Scans served.
    pub scans: u64,
    /// RMWs applied.
    pub rmws: u64,
    /// BUSY rejections at the mailbox.
    pub busy_rejections: u64,
    /// Batches drained.
    pub batches: u64,
    /// Ops across drained batches.
    pub batched_ops: u64,
    /// Largest batch.
    pub max_batch: usize,
    /// Mailbox depth high-water mark.
    pub depth_high_water: usize,
    /// Group commits (WAL flushes).
    pub group_commits: u64,
    /// Records across group commits.
    pub group_committed_records: u64,
    /// GETs that went to the device.
    pub misses: u64,
    /// Most misses parked concurrently.
    pub parked_peak: usize,
    /// Read-class latency summary (memory-served requests only).
    pub read_latency: LatencySummary,
    /// Write-class latency summary.
    pub write_latency: LatencySummary,
    /// Miss-service latency summary (device-served GETs).
    pub miss_latency: LatencySummary,
}

impl ShardMetrics {
    /// Mean ops per drained batch.
    pub fn mean_batch(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            0.0
        } else {
            self.batched_ops.load(Ordering::Relaxed) as f64 / b as f64
        }
    }

    /// Copy the counters out (depth high-water supplied by the mailbox).
    pub fn snapshot(&self, depth_high_water: usize) -> ShardSnapshot {
        ShardSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            rmws: self.rmws.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            depth_high_water,
            group_commits: self.group_commits.load(Ordering::Relaxed),
            group_committed_records: self.group_committed_records.load(Ordering::Relaxed),
            misses: self.misses_submitted.load(Ordering::Relaxed),
            parked_peak: self.parked_peak.load(Ordering::Relaxed),
            read_latency: self.read_latency.summary(),
            write_latency: self.write_latency.summary(),
            miss_latency: self.miss_latency.summary(),
        }
    }
}

impl ShardSnapshot {
    /// All operations executed by this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.scans + self.rmws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_order_and_bound() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1 µs .. 1 ms
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.p50_nanos <= s.p95_nanos && s.p95_nanos <= s.p99_nanos);
        assert!(s.p99_nanos <= s.max_nanos as f64);
        assert_eq!(s.max_nanos, 1_000_000);
        // p50 of a uniform 1µs..1ms spread lands around 500µs; power-of-two
        // buckets bound the error to the bucket width.
        assert!(
            (260_000.0..=1_000_000.0).contains(&s.p50_nanos),
            "p50 {}",
            s.p50_nanos
        );
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn extreme_samples_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn shard_snapshot_totals() {
        let m = ShardMetrics::default();
        m.gets.store(5, Ordering::Relaxed);
        m.puts.store(3, Ordering::Relaxed);
        m.rmws.store(2, Ordering::Relaxed);
        let s = m.snapshot(7);
        assert_eq!(s.total_ops(), 10);
        assert_eq!(s.depth_high_water, 7);
    }
}
