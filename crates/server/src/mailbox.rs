//! Bounded MPSC mailboxes with explicit backpressure.
//!
//! Each shard owns one [`Mailbox`]. Senders (connection readers) never
//! block: past the capacity high-water mark [`Mailbox::send`] returns
//! [`SendError::Busy`] and the connection answers the client with a BUSY
//! frame instead of queueing unboundedly — overload is pushed back to the
//! client, where an open-loop load generator can observe it, rather than
//! hidden in growing queues and timeouts.
//!
//! The acceptance contract the `dcs-check` scenario verifies: once `send`
//! returns `Ok`, the item **will** be drained — [`Mailbox::close`] stops new
//! arrivals but [`Mailbox::recv_batch`] keeps returning queued items until
//! the mailbox is empty, and only then reports termination.

use crate::sync::Mutex;
use std::collections::VecDeque;

/// Why a send was refused. The item is handed back in both cases.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The queue is at capacity; the receiver is not keeping up. Explicit
    /// backpressure — the caller should answer BUSY, not wait.
    Busy(T),
    /// The mailbox was closed (server shutting down).
    Closed(T),
}

impl<T> SendError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Busy(t) | SendError::Closed(t) => t,
        }
    }
}

/// Counters for one mailbox's lifetime. The queue-depth distribution is
/// the shared [`dcs_telemetry`] histogram (one sample per accepted item,
/// recording the depth it landed at) — this struct used to track only a
/// hand-rolled high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Items accepted by `send`.
    pub accepted: u64,
    /// Items handed to the receiver.
    pub drained: u64,
    /// Sends refused with `Busy`.
    pub rejected_busy: u64,
    /// Sends refused with `Closed`.
    pub rejected_closed: u64,
    /// Queue-depth distribution, sampled at each accept.
    pub depth: dcs_telemetry::HistogramSnapshot,
}

impl MailboxStats {
    /// Deepest queue observed at any accept.
    pub fn depth_high_water(&self) -> usize {
        self.depth.max as usize
    }
}

#[derive(Default)]
struct Counters {
    accepted: u64,
    drained: u64,
    rejected_busy: u64,
    rejected_closed: u64,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
    stats: Counters,
}

/// A bounded multi-producer queue drained in batches by one shard worker.
pub struct Mailbox<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Depth-at-accept samples. Atomic (outside the queue mutex's state)
    /// but recorded under the lock so each sample matches one accept.
    depth: dcs_telemetry::Histogram,
    #[cfg(not(feature = "check"))]
    notempty: std::sync::Condvar,
}

impl<T> Mailbox<T> {
    /// A mailbox refusing sends past `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
                stats: Counters::default(),
            }),
            capacity,
            depth: dcs_telemetry::Histogram::new(),
            #[cfg(not(feature = "check"))]
            notempty: std::sync::Condvar::new(),
        }
    }

    /// Enqueue without blocking. `Ok` is an acceptance guarantee: the item
    /// will be drained even if the mailbox closes immediately after.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            inner.stats.rejected_closed += 1;
            return Err(SendError::Closed(item));
        }
        if inner.queue.len() >= self.capacity {
            inner.stats.rejected_busy += 1;
            return Err(SendError::Busy(item));
        }
        inner.queue.push_back(item);
        inner.stats.accepted += 1;
        self.depth.record(inner.queue.len() as u64);
        drop(inner);
        #[cfg(not(feature = "check"))]
        self.notempty.notify_one();
        Ok(())
    }

    /// Drain up to `max` items into `out`, blocking while the mailbox is
    /// open and empty. Returns `false` only when the mailbox is closed
    /// **and** fully drained — the receiver's signal to flush and exit.
    pub fn recv_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        debug_assert!(max > 0);
        // Normal build: park on the condvar. Check build: the scheduler
        // serializes threads, so park would deadlock — spin cooperatively,
        // each iteration a schedule point.
        #[cfg(not(feature = "check"))]
        {
            // LINT: allow(effect-panic): a poisoned mailbox means a sibling
            // shard thread already aborted; crash loudly rather than serve
            // from a torn queue.
            let mut inner = self.inner.lock().unwrap();
            loop {
                if !inner.queue.is_empty() {
                    Self::take(&mut inner, max, out);
                    return true;
                }
                if inner.closed {
                    return false;
                }
                // LINT: allow(effect-block): the drain loop parks here only
                // when no misses are in flight and the queue is empty — the
                // async-shard guarantee is "never block *with work parked*",
                // and run_async switches to try_recv_batch in that state.
                // LINT: allow(effect-panic): poisoning, as above.
                inner = self.notempty.wait(inner).unwrap();
            }
        }
        #[cfg(feature = "check")]
        loop {
            {
                // LINT: allow(effect-panic): poisoned-mailbox abort, as above.
                let mut inner = self.inner.lock().unwrap();
                if !inner.queue.is_empty() {
                    Self::take(&mut inner, max, out);
                    return true;
                }
                if inner.closed {
                    return false;
                }
            }
            crate::sync::yield_thread();
        }
    }

    /// Drain up to `max` items without blocking. Returns `true` if the
    /// mailbox can still produce items later (open, or closed but
    /// non-empty).
    pub fn try_recv_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        // LINT: allow(effect-panic): poisoned-mailbox abort, same rationale
        // as `recv_batch` above.
        let mut inner = self.inner.lock().unwrap();
        if !inner.queue.is_empty() {
            Self::take(&mut inner, max, out);
        }
        !(inner.closed && inner.queue.is_empty())
    }

    fn take(inner: &mut Inner<T>, max: usize, out: &mut Vec<T>) {
        let n = inner.queue.len().min(max);
        out.extend(inner.queue.drain(..n));
        inner.stats.drained += n as u64;
    }

    /// Stop accepting new items. Already-accepted items remain and will be
    /// drained; receivers observe termination only once the queue is empty.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        #[cfg(not(feature = "check"))]
        self.notempty.notify_all();
    }

    /// Whether `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity (backpressure high-water mark).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MailboxStats {
        let inner = self.inner.lock().unwrap();
        MailboxStats {
            accepted: inner.stats.accepted,
            drained: inner.stats.drained,
            rejected_busy: inner.stats.rejected_busy,
            rejected_closed: inner.stats.rejected_closed,
            depth: self.depth.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let mb = Mailbox::new(8);
        for i in 0..5 {
            mb.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(mb.recv_batch(16, &mut out));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn busy_past_high_water() {
        let mb = Mailbox::new(2);
        mb.send(1).unwrap();
        mb.send(2).unwrap();
        assert_eq!(mb.send(3), Err(SendError::Busy(3)));
        assert_eq!(mb.stats().rejected_busy, 1);
        // Draining frees capacity again.
        let mut out = Vec::new();
        mb.try_recv_batch(1, &mut out);
        mb.send(3).unwrap();
    }

    #[test]
    fn close_refuses_new_but_drains_accepted() {
        let mb = Mailbox::new(4);
        mb.send("a").unwrap();
        mb.send("b").unwrap();
        mb.close();
        assert_eq!(mb.send("c"), Err(SendError::Closed("c")));
        let mut out = Vec::new();
        assert!(mb.recv_batch(1, &mut out), "accepted items still drain");
        assert!(mb.recv_batch(1, &mut out));
        assert!(!mb.recv_batch(1, &mut out), "then terminal");
        assert_eq!(out, vec!["a", "b"]);
        let s = mb.stats();
        assert_eq!(s.accepted, s.drained);
    }

    #[test]
    fn batch_size_respected() {
        let mb = Mailbox::new(64);
        for i in 0..10 {
            mb.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(mb.recv_batch(4, &mut out));
        assert_eq!(out.len(), 4);
        assert_eq!(mb.len(), 6);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let mb = Arc::new(Mailbox::new(4));
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            assert!(mb2.recv_batch(8, &mut out));
            out
        });
        // Give the receiver a chance to park first.
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.send(7u32).unwrap();
        assert_eq!(t.join().unwrap(), vec![7]);
    }

    #[test]
    fn blocking_recv_wakes_on_close() {
        let mb = Arc::new(Mailbox::<u32>::new(4));
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            mb2.recv_batch(8, &mut out)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.close();
        assert!(!t.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Mailbox::<u8>::new(0);
    }
}
