//! Shard-per-thread request execution with write batching and group
//! commit.
//!
//! The key space is **range-partitioned** by a [`Partitioner`]: shard `i`
//! owns `[split[i-1], split[i])` and serves it from its own backend store
//! instance (shared-nothing — no cross-shard locks on the data path).
//! A connection reader routes each request to the owning shard's bounded
//! [`Mailbox`]; the shard worker drains the mailbox in batches and:
//!
//! 1. executes reads immediately (replying as it goes),
//! 2. applies writes to the backend but **defers their replies**,
//! 3. appends all of the batch's redo records to the shard's TC WAL with
//!    one [`RecoveryLog::commit_batch`] — a single durability barrier —
//! 4. then releases the deferred write acks.
//!
//! So a write is acknowledged only once it is durable, yet `batch_max`
//! writes share one barrier: group commit. Scans that exhaust the owning
//! shard's range continue read-only into higher shards' stores (weakly
//! consistent across the boundary, exactly like a scan racing concurrent
//! writers on a single store).

use crate::mailbox::{Mailbox, SendError};
use crate::metrics::ShardMetrics;
use crate::protocol::{Request, Response};
use bytes::Bytes;
use dcs_tc::{LogRecord, RecoveryLog};
use dcs_workload::KvStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a shard posts a finished request's response.
///
/// Implemented by the server's per-connection state; tests substitute a
/// collecting sink. Implementations must never block: the shard worker
/// calls this on its only thread.
pub trait ReplySink: Send + Sync {
    /// Deliver the response for request `id`.
    fn deliver(&self, id: u64, resp: Response);
}

/// One routed request waiting in a shard mailbox.
pub struct Mail {
    /// Client request id (echoed in the response frame).
    pub id: u64,
    /// The decoded operation.
    pub req: Request,
    /// Where the response goes.
    pub reply: Arc<dyn ReplySink>,
    /// When the request entered the mailbox (latency measurement origin).
    pub enqueued: Instant,
}

/// Lexicographic range partitioning of the key space.
///
/// `splits` are the shard boundaries: shard 0 owns keys below `splits[0]`,
/// shard `i` owns `[splits[i-1], splits[i])`, the last shard owns the tail.
#[derive(Debug, Clone)]
pub struct Partitioner {
    splits: Vec<Vec<u8>>,
}

impl Partitioner {
    /// A single shard owning everything.
    pub fn single() -> Self {
        Partitioner { splits: Vec::new() }
    }

    /// Partition at explicit, strictly ascending split keys
    /// (`splits.len() + 1` shards).
    pub fn from_splits(splits: Vec<Vec<u8>>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "split keys must be strictly ascending"
        );
        Partitioner { splits }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    /// The smallest key shard `i` owns (empty key for shard 0).
    pub fn lower_bound(&self, i: usize) -> &[u8] {
        if i == 0 {
            b""
        } else {
            &self.splits[i - 1]
        }
    }
}

/// Per-shard tunables.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Mailbox capacity: the backpressure high-water mark.
    pub mailbox_capacity: usize,
    /// Most operations drained (and group-committed) per batch.
    pub batch_max: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            mailbox_capacity: 1024,
            batch_max: 64,
        }
    }
}

/// One shard: a key range, its backend store, its mailbox, its WAL.
pub struct Shard {
    /// Shard index within the server.
    pub index: usize,
    mailbox: Mailbox<Mail>,
    metrics: ShardMetrics,
    backend: Arc<dyn KvStore + Send + Sync>,
    /// All shards' backends, for read-only scan continuation.
    all_backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>>,
    partitioner: Arc<Partitioner>,
    wal: Arc<RecoveryLog>,
    /// Per-shard redo timestamp (monotone within the shard's WAL).
    wal_ts: AtomicU64,
    batch_max: usize,
}

impl Shard {
    /// Assemble a shard. `backends[index]` is this shard's own store.
    pub fn new(
        index: usize,
        config: &ShardConfig,
        backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>>,
        partitioner: Arc<Partitioner>,
        wal: Arc<RecoveryLog>,
    ) -> Self {
        Shard {
            index,
            mailbox: Mailbox::new(config.mailbox_capacity),
            metrics: ShardMetrics::default(),
            backend: backends[index].clone(),
            all_backends: backends,
            partitioner,
            wal,
            wal_ts: AtomicU64::new(1),
            batch_max: config.batch_max.max(1),
        }
    }

    /// The shard's mailbox (senders route requests here).
    pub fn mailbox(&self) -> &Mailbox<Mail> {
        &self.mailbox
    }

    /// The shard's live metrics.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// The shard's WAL.
    pub fn wal(&self) -> &Arc<RecoveryLog> {
        &self.wal
    }

    /// Route `mail` into the mailbox, answering BUSY / shutdown errors
    /// directly on rejection.
    pub fn offer(&self, mail: Mail) {
        match self.mailbox.send(mail) {
            Ok(()) => {}
            Err(SendError::Busy(mail)) => {
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                mail.reply.deliver(mail.id, Response::Busy);
            }
            Err(SendError::Closed(mail)) => {
                mail.reply
                    .deliver(mail.id, Response::Err("server shutting down".into()));
            }
        }
    }

    /// The worker loop: drain batches until the mailbox is closed *and*
    /// empty, then issue a final WAL barrier. Run on a dedicated thread.
    pub fn run(&self) {
        let mut batch: Vec<Mail> = Vec::with_capacity(self.batch_max);
        while self.mailbox.recv_batch(self.batch_max, &mut batch) {
            self.process_batch(&mut batch);
        }
        // Drained after close: one last barrier so every acknowledged write
        // is durable before the server reports shutdown complete.
        let _ = self.wal.commit_batch(&[]);
    }

    fn process_batch(&self, batch: &mut Vec<Mail>) {
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .batched_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.metrics
            .max_batch
            .fetch_max(batch.len(), Ordering::Relaxed);
        let mut wal_records: Vec<LogRecord> = Vec::new();
        let mut deferred: Vec<(Mail, Response)> = Vec::new();
        for mail in batch.drain(..) {
            match &mail.req {
                Request::Get { key } => {
                    self.metrics.gets.fetch_add(1, Ordering::Relaxed);
                    let resp = match self.backend.kv_get(key) {
                        Ok(v) => Response::Value(v),
                        Err(e) => Response::Err(e.to_string()),
                    };
                    self.reply_read(mail, resp);
                }
                Request::Scan { start, limit } => {
                    self.metrics.scans.fetch_add(1, Ordering::Relaxed);
                    let resp = match self.scan_from(start, *limit as usize) {
                        Ok(n) => Response::Count(n as u64),
                        Err(e) => Response::Err(e),
                    };
                    self.reply_read(mail, resp);
                }
                Request::Put { key, value } => {
                    self.metrics.puts.fetch_add(1, Ordering::Relaxed);
                    let resp = match self.backend.kv_put(key.clone(), value.clone()) {
                        Ok(()) => {
                            wal_records.push(self.redo(key, Some(value)));
                            Response::Ok
                        }
                        Err(e) => Response::Err(e.to_string()),
                    };
                    deferred.push((mail, resp));
                }
                Request::Delete { key } => {
                    self.metrics.deletes.fetch_add(1, Ordering::Relaxed);
                    let resp = match self.backend.kv_delete(key.clone()) {
                        Ok(()) => {
                            wal_records.push(self.redo(key, None));
                            Response::Ok
                        }
                        Err(e) => Response::Err(e.to_string()),
                    };
                    deferred.push((mail, resp));
                }
                Request::Rmw { key, value } => {
                    self.metrics.rmws.fetch_add(1, Ordering::Relaxed);
                    // Atomic at the shard: the worker is the only writer of
                    // this key range, so read-append-write cannot race.
                    let resp = match self.backend.kv_get(key) {
                        Ok(cur) => {
                            let mut new = cur.unwrap_or_default();
                            new.extend_from_slice(value);
                            match self.backend.kv_put(key.clone(), new.clone()) {
                                Ok(()) => {
                                    wal_records.push(self.redo(key, Some(&new)));
                                    Response::Ok
                                }
                                Err(e) => Response::Err(e.to_string()),
                            }
                        }
                        Err(e) => Response::Err(e.to_string()),
                    };
                    deferred.push((mail, resp));
                }
            }
        }
        // Group commit: one barrier covers every write in the batch. Only
        // then are the write acks released — an acked write is durable.
        if !wal_records.is_empty() {
            self.metrics.group_commits.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .group_committed_records
                .fetch_add(wal_records.len() as u64, Ordering::Relaxed);
            if let Err(e) = self.wal.commit_batch(&wal_records) {
                let msg = format!("group commit failed: {e}");
                for (mail, _) in deferred.drain(..) {
                    let id = mail.id;
                    mail.reply.deliver(id, Response::Err(msg.clone()));
                }
            }
        }
        for (mail, resp) in deferred {
            self.metrics
                .write_latency
                .record(mail.enqueued.elapsed().as_nanos() as u64);
            mail.reply.deliver(mail.id, resp);
        }
    }

    fn reply_read(&self, mail: Mail, resp: Response) {
        self.metrics
            .read_latency
            .record(mail.enqueued.elapsed().as_nanos() as u64);
        mail.reply.deliver(mail.id, resp);
    }

    fn redo(&self, key: &[u8], value: Option<&[u8]>) -> LogRecord {
        LogRecord {
            ts: self.wal_ts.fetch_add(1, Ordering::Relaxed),
            key: Bytes::copy_from_slice(key),
            value: value.map(Bytes::copy_from_slice),
        }
    }

    /// Count up to `limit` records from `start`, continuing read-only into
    /// higher shards when this shard's range runs out.
    fn scan_from(&self, start: &[u8], limit: usize) -> Result<usize, String> {
        let mut remaining = limit;
        let mut count = 0usize;
        let first = self.partitioner.shard_of(start).max(self.index);
        for s in first..self.all_backends.len() {
            if remaining == 0 {
                break;
            }
            let from: &[u8] = if s == first {
                start
            } else {
                self.partitioner.lower_bound(s)
            };
            let n = self.all_backends[s]
                .kv_scan(from, remaining)
                .map_err(|e| e.to_string())?;
            count += n;
            remaining = remaining.saturating_sub(n);
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_workload::StoreFailure;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    #[derive(Default)]
    struct MapStore(Mutex<BTreeMap<Vec<u8>, Vec<u8>>>);

    impl KvStore for MapStore {
        fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
            Ok(self.0.lock().unwrap().get(key).cloned())
        }
        fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().remove(&key);
            Ok(())
        }
        fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
            Ok(self
                .0
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(limit)
                .count())
        }
    }

    #[derive(Default)]
    struct CollectSink(Mutex<Vec<(u64, Response)>>);

    impl ReplySink for CollectSink {
        fn deliver(&self, id: u64, resp: Response) {
            self.0.lock().unwrap().push((id, resp));
        }
    }

    type SharedBackends = Arc<Vec<Arc<dyn KvStore + Send + Sync>>>;

    fn two_shards() -> (Arc<Shard>, Arc<Shard>, SharedBackends) {
        let backends: SharedBackends = Arc::new(vec![
            Arc::new(MapStore::default()),
            Arc::new(MapStore::default()),
        ]);
        let part = Arc::new(Partitioner::from_splits(vec![b"m".to_vec()]));
        let cfg = ShardConfig::default();
        let s0 = Arc::new(Shard::new(
            0,
            &cfg,
            backends.clone(),
            part.clone(),
            Arc::new(RecoveryLog::in_memory()),
        ));
        let s1 = Arc::new(Shard::new(
            1,
            &cfg,
            backends.clone(),
            part,
            Arc::new(RecoveryLog::in_memory()),
        ));
        (s0, s1, backends)
    }

    fn mail(id: u64, req: Request, sink: &Arc<CollectSink>) -> Mail {
        Mail {
            id,
            req,
            reply: sink.clone() as Arc<dyn ReplySink>,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn partitioner_routes_ranges() {
        let p = Partitioner::from_splits(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of(b""), 0);
        assert_eq!(p.shard_of(b"f"), 0);
        assert_eq!(p.shard_of(b"g"), 1, "split key belongs to the right");
        assert_eq!(p.shard_of(b"o"), 1);
        assert_eq!(p.shard_of(b"p"), 2);
        assert_eq!(p.shard_of(b"zzz"), 2);
        assert_eq!(p.lower_bound(0), b"");
        assert_eq!(p.lower_bound(2), b"p");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_splits_panic() {
        let _ = Partitioner::from_splits(vec![b"z".to_vec(), b"a".to_vec()]);
    }

    #[test]
    fn batch_executes_and_group_commits() {
        let (s0, _s1, backends) = two_shards();
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            1,
            Request::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(
            2,
            Request::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(3, Request::Get { key: b"a".to_vec() }, &sink));
        s0.mailbox().close();
        s0.run();
        let replies = sink.0.lock().unwrap();
        // Reads reply inline, writes after the group commit; all three
        // answered.
        assert_eq!(replies.len(), 3);
        assert!(replies
            .iter()
            .any(|(id, r)| *id == 3 && *r == Response::Value(Some(b"1".to_vec()))));
        assert!(replies.iter().filter(|(_, r)| *r == Response::Ok).count() == 2);
        // One batch, one group commit carrying both writes, both in the WAL.
        assert_eq!(s0.metrics().group_commits.load(Ordering::Relaxed), 1);
        assert_eq!(
            s0.metrics().group_committed_records.load(Ordering::Relaxed),
            2
        );
        assert_eq!(s0.wal().len(), 2);
        assert_eq!(backends[0].kv_get(b"a").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn rmw_appends_atomically() {
        let (s0, _s1, backends) = two_shards();
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            1,
            Request::Put {
                key: b"k".to_vec(),
                value: b"ab".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(
            2,
            Request::Rmw {
                key: b"k".to_vec(),
                value: b"cd".to_vec(),
            },
            &sink,
        ));
        s0.mailbox().close();
        s0.run();
        assert_eq!(backends[0].kv_get(b"k").unwrap(), Some(b"abcd".to_vec()));
        // The RMW's WAL record carries the merged value (redo-complete).
        let records = s0.wal().records_from(0);
        assert_eq!(records.last().unwrap().value.as_deref(), Some(&b"abcd"[..]));
    }

    #[test]
    fn scan_continues_across_shards() {
        let (s0, s1, backends) = two_shards();
        // 3 keys below the "m" split, 3 above.
        for k in [b"a", b"b", b"c"] {
            backends[0].kv_put(k.to_vec(), b"v".to_vec()).unwrap();
        }
        for k in [b"p", b"q", b"r"] {
            backends[1].kv_put(k.to_vec(), b"v".to_vec()).unwrap();
        }
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            9,
            Request::Scan {
                start: b"b".to_vec(),
                limit: 4,
            },
            &sink,
        ));
        s0.mailbox().close();
        s0.run();
        // b, c from shard 0, then p, q from shard 1.
        assert_eq!(sink.0.lock().unwrap()[0], (9, Response::Count(4)));
        // A scan routed to the tail shard stays there.
        let sink2 = Arc::new(CollectSink::default());
        s1.offer(mail(
            10,
            Request::Scan {
                start: b"q".to_vec(),
                limit: 10,
            },
            &sink2,
        ));
        s1.mailbox().close();
        s1.run();
        assert_eq!(sink2.0.lock().unwrap()[0], (10, Response::Count(2)));
    }

    #[test]
    fn busy_and_closed_answered_not_dropped() {
        let backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>> =
            Arc::new(vec![Arc::new(MapStore::default())]);
        let cfg = ShardConfig {
            mailbox_capacity: 1,
            batch_max: 8,
        };
        let shard = Shard::new(
            0,
            &cfg,
            backends,
            Arc::new(Partitioner::single()),
            Arc::new(RecoveryLog::in_memory()),
        );
        let sink = Arc::new(CollectSink::default());
        shard.offer(mail(1, Request::Get { key: b"k".to_vec() }, &sink));
        shard.offer(mail(2, Request::Get { key: b"k".to_vec() }, &sink));
        assert_eq!(sink.0.lock().unwrap().as_slice(), &[(2, Response::Busy)]);
        assert_eq!(shard.metrics().busy_rejections.load(Ordering::Relaxed), 1);
        shard.mailbox().close();
        shard.offer(mail(3, Request::Get { key: b"k".to_vec() }, &sink));
        assert!(matches!(sink.0.lock().unwrap()[1], (3, Response::Err(_))));
        shard.run();
        // The accepted request was still served after close.
        assert_eq!(sink.0.lock().unwrap().len(), 3);
    }
}
