//! Shard-per-thread request execution with write batching and group
//! commit.
//!
//! The key space is **range-partitioned** by a [`Partitioner`]: shard `i`
//! owns `[split[i-1], split[i])` and serves it from its own backend store
//! instance (shared-nothing — no cross-shard locks on the data path).
//! A connection reader routes each request to the owning shard's bounded
//! [`Mailbox`]; the shard worker drains the mailbox in batches and:
//!
//! 1. executes reads immediately (replying as it goes),
//! 2. applies writes to the backend but **defers their replies**,
//! 3. appends all of the batch's redo records to the shard's TC WAL with
//!    one [`RecoveryLog::commit_batch`] — a single durability barrier —
//! 4. then releases the deferred write acks.
//!
//! So a write is acknowledged only once it is durable, yet `batch_max`
//! writes share one barrier: group commit. Scans that exhaust the owning
//! shard's range continue read-only into higher shards' stores (weakly
//! consistent across the boundary, exactly like a scan racing concurrent
//! writers on a single store).

use crate::mailbox::{Mailbox, SendError};
use crate::metrics::ShardMetrics;
use crate::protocol::{Request, Response};
use bytes::Bytes;
use dcs_rebalance::{PartitionMap, Router, TailEntry, WriteAdmission};
use dcs_tc::{LogRecord, RecoveryLog};
use dcs_workload::{AsyncGet, AsyncKvStore, CompletedGet, KvStore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a shard posts a finished request's response.
///
/// Implemented by the server's per-connection state; tests substitute a
/// collecting sink. Implementations must never block: the shard worker
/// calls this on its only thread.
pub trait ReplySink: Send + Sync {
    /// Deliver the response for request `id`.
    fn deliver(&self, id: u64, resp: Response);
}

/// One routed request waiting in a shard mailbox.
pub struct Mail {
    /// Client request id (echoed in the response frame).
    pub id: u64,
    /// The decoded operation.
    pub req: Request,
    /// Where the response goes.
    pub reply: Arc<dyn ReplySink>,
    /// When the request entered the mailbox, in virtual-clock nanos
    /// (`dcs_telemetry::now_nanos`) — the latency measurement origin,
    /// on the same timeline the spans are recorded against.
    pub enqueued: u64,
}

/// Lexicographic range partitioning of the key space.
///
/// `splits` are the shard boundaries: shard 0 owns keys below `splits[0]`,
/// shard `i` owns `[splits[i-1], splits[i])`, the last shard owns the tail.
#[derive(Debug, Clone)]
pub struct Partitioner {
    splits: Vec<Vec<u8>>,
}

impl Partitioner {
    /// A single shard owning everything.
    pub fn single() -> Self {
        Partitioner { splits: Vec::new() }
    }

    /// Partition at explicit, strictly ascending split keys
    /// (`splits.len() + 1` shards).
    pub fn from_splits(splits: Vec<Vec<u8>>) -> Self {
        assert!(
            splits.iter().zip(splits.iter().skip(1)).all(|(a, b)| a < b),
            "split keys must be strictly ascending"
        );
        Partitioner { splits }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    /// The smallest key shard `i` owns (empty key for shard 0).
    pub fn lower_bound(&self, i: usize) -> &[u8] {
        i.checked_sub(1)
            .and_then(|j| self.splits.get(j))
            .map_or(b"".as_slice(), |s| s.as_slice())
    }

    /// The split keys (the epoch-0 partition map is built from these).
    pub fn splits(&self) -> &[Vec<u8>] {
        &self.splits
    }
}

/// How a shard services GETs that miss the in-memory cache and need a
/// device fetch (only meaningful when the backend provides an
/// [`AsyncKvStore`] handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissMode {
    /// The shard worker stalls on each miss until its fetch completes —
    /// the classic blocking read path. Every request queued behind the
    /// miss waits out the device latency.
    Sync,
    /// Misses are submitted to the device and the requesting mail is
    /// *parked* in a per-shard pending-miss table; the worker keeps
    /// draining its mailbox (serving hits) and acks parked requests out
    /// of order, by request id, as their fetches complete.
    #[default]
    Async,
}

impl MissMode {
    /// Parse a CLI name (`sync` / `async`).
    pub fn parse(name: &str) -> Option<MissMode> {
        match name.to_ascii_lowercase().as_str() {
            "sync" => Some(MissMode::Sync),
            "async" => Some(MissMode::Async),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            MissMode::Sync => "sync",
            MissMode::Async => "async",
        }
    }
}

/// Per-shard tunables.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Mailbox capacity: the backpressure high-water mark.
    pub mailbox_capacity: usize,
    /// Most operations drained (and group-committed) per batch.
    pub batch_max: usize,
    /// Cache-miss servicing discipline for async-capable backends.
    pub miss_mode: MissMode,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            mailbox_capacity: 1024,
            batch_max: 64,
            miss_mode: MissMode::default(),
        }
    }
}

/// One shard: a key range, its backend store, its mailbox, its WAL.
pub struct Shard {
    /// Shard index within the server.
    pub index: usize,
    mailbox: Mailbox<Mail>,
    metrics: ShardMetrics,
    backend: Arc<dyn KvStore + Send + Sync>,
    /// Non-blocking submit/poll handle over the same store, when it has
    /// one. GETs route through it (hits answer inline, misses go to the
    /// device) under either [`MissMode`].
    async_backend: Option<Arc<dyn AsyncKvStore + Send + Sync>>,
    miss_mode: MissMode,
    /// All shards' backends, for read-only scan continuation.
    all_backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>>,
    /// The shared placement surface: versioned map, per-shard write
    /// gates, per-range heat. Every write admission and every read's
    /// ownership check goes through it. Defaults to a private router
    /// whose epoch-0 map mirrors the static [`Partitioner`]; the server
    /// swaps in its shared one with [`Shard::with_router`].
    router: Arc<Router>,
    wal: Arc<RecoveryLog>,
    /// Per-shard redo timestamp (monotone within the shard's WAL).
    wal_ts: AtomicU64,
    batch_max: usize,
}

impl Shard {
    /// Assemble a shard. `backends[index]` is this shard's own store.
    pub fn new(
        index: usize,
        config: &ShardConfig,
        backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>>,
        partitioner: Arc<Partitioner>,
        wal: Arc<RecoveryLog>,
    ) -> Self {
        let router = Arc::new(Router::new(
            PartitionMap::contiguous(partitioner.splits().to_vec()),
            backends.len(),
        ));
        Shard {
            index,
            mailbox: Mailbox::new(config.mailbox_capacity),
            metrics: ShardMetrics::default(),
            // LINT: allow(panic-path): construction-time config invariant
            // (index < shard count), not wire input.
            backend: backends[index].clone(),
            async_backend: None,
            miss_mode: config.miss_mode,
            all_backends: backends,
            router,
            wal,
            wal_ts: AtomicU64::new(1),
            batch_max: config.batch_max.max(1),
        }
    }

    /// Share the server-wide router (map + gates + heat) instead of the
    /// private epoch-0 one built by [`Shard::new`]. All shards of one
    /// server must share a single router for migration to be coherent.
    pub fn with_router(mut self, router: Arc<Router>) -> Self {
        self.router = router;
        self
    }

    /// The placement surface this shard consults.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// This shard's own backend store (migration copies ranges out of it).
    pub fn kv_backend(&self) -> &Arc<dyn KvStore + Send + Sync> {
        &self.backend
    }

    /// Attach the non-blocking handle over this shard's own store. With
    /// one attached, GETs go submit/poll; [`ShardConfig::miss_mode`]
    /// decides whether a pending miss stalls the worker or is parked.
    pub fn with_async_backend(
        mut self,
        async_backend: Option<Arc<dyn AsyncKvStore + Send + Sync>>,
    ) -> Self {
        self.async_backend = async_backend;
        self
    }

    /// The shard's mailbox (senders route requests here).
    pub fn mailbox(&self) -> &Mailbox<Mail> {
        &self.mailbox
    }

    /// The shard's live metrics.
    pub fn metrics(&self) -> &ShardMetrics {
        &self.metrics
    }

    /// The shard's WAL.
    pub fn wal(&self) -> &Arc<RecoveryLog> {
        &self.wal
    }

    /// Route `mail` into the mailbox, answering BUSY / shutdown errors
    /// directly on rejection.
    pub fn offer(&self, mail: Mail) {
        match self.mailbox.send(mail) {
            Ok(()) => {}
            Err(SendError::Busy(mail)) => {
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                mail.reply.deliver(mail.id, Response::Busy);
            }
            Err(SendError::Closed(mail)) => {
                mail.reply
                    .deliver(mail.id, Response::Err("server shutting down".into()));
            }
        }
    }

    /// The worker loop: drain batches until the mailbox is closed *and*
    /// empty, then issue a final WAL barrier. Run on a dedicated thread.
    pub fn run(&self) {
        if let (Some(ab), MissMode::Async) = (&self.async_backend, self.miss_mode) {
            self.run_async(&ab.clone());
            return;
        }
        let mut batch: Vec<Mail> = Vec::with_capacity(self.batch_max);
        while self.mailbox.recv_batch(self.batch_max, &mut batch) {
            self.process_batch(&mut batch, None);
        }
        // Drained after close: one last barrier so every acknowledged write
        // is durable before the server reports shutdown complete.
        let _ = self.wal.commit_batch(&[]);
    }

    /// The async-miss worker loop. While misses are parked the shard
    /// switches from blocking receives to non-blocking drains interleaved
    /// with completion polls, so a device-bound GET never stops the shard
    /// from serving the requests queued behind it. On shutdown the loop
    /// keeps polling past the closed mailbox until every parked request
    /// has been answered — only then does the final WAL barrier run.
    fn run_async(&self, ab: &Arc<dyn AsyncKvStore + Send + Sync>) {
        let mut batch: Vec<Mail> = Vec::with_capacity(self.batch_max);
        let mut parked: HashMap<u64, Mail> = HashMap::new();
        let mut completions: Vec<CompletedGet> = Vec::new();
        loop {
            let more = if parked.is_empty() {
                self.mailbox.recv_batch(self.batch_max, &mut batch)
            } else {
                self.mailbox.try_recv_batch(self.batch_max, &mut batch)
            };
            let got_mail = !batch.is_empty();
            if got_mail {
                self.process_batch(&mut batch, Some(&mut parked));
                self.metrics
                    .parked_peak
                    .fetch_max(parked.len(), Ordering::Relaxed);
            }
            let mut reaped = 0;
            if !parked.is_empty() {
                completions.clear();
                reaped = ab.kv_poll(&mut completions);
                for c in completions.drain(..) {
                    // Tokens not in the table cannot arise (each shard owns
                    // its store instance and is its only GET submitter),
                    // but losing one here would strand a client forever, so
                    // tolerate and drop rather than panic.
                    if let Some(mail) = parked.remove(&c.token) {
                        self.reply_miss(mail, Self::miss_response(c.result));
                    }
                }
            }
            if parked.is_empty() {
                if !more {
                    break;
                }
            } else if !got_mail && reaped == 0 {
                // Nothing arrived and nothing completed: back off briefly
                // instead of hot-spinning against wall-clock device latency.
                // LINT: allow(effect-block): bounded 20µs idle backoff, not
                // I/O — it caps the poll rate, it cannot stall parked misses
                // (they are already submitted to the device).
                std::thread::sleep(Duration::from_micros(20));
            }
        }
        let _ = self.wal.commit_batch(&[]);
    }

    fn miss_response(result: Result<Option<Vec<u8>>, dcs_workload::StoreFailure>) -> Response {
        match result {
            Ok(v) => Response::Value(v),
            Err(e) => Response::Err(e.to_string()),
        }
    }

    /// Sync miss mode: stall the worker until the one in-flight fetch
    /// completes. This is the blocking baseline the async mode is measured
    /// against — everything queued behind the miss eats the device latency.
    fn await_miss(&self, ab: &Arc<dyn AsyncKvStore + Send + Sync>, token: u64) -> Response {
        let mut completions: Vec<CompletedGet> = Vec::with_capacity(1);
        loop {
            completions.clear();
            if ab.kv_poll(&mut completions) == 0 {
                // LINT: allow(effect-block): sync-mode-only stall — the
                // analysis is path-insensitive, but `process_batch` reaches
                // this call only under `MissMode::Sync`; the async drain
                // loop parks the miss instead of calling `await_miss`.
                std::thread::sleep(Duration::from_micros(5));
                continue;
            }
            for c in completions.drain(..) {
                // Only one miss is ever in flight on this path, so the
                // first completion is ours.
                if c.token == token {
                    return Self::miss_response(c.result);
                }
            }
        }
    }

    fn process_batch(&self, batch: &mut Vec<Mail>, parked: Option<&mut HashMap<u64, Mail>>) {
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .batched_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.metrics
            .max_batch
            .fetch_max(batch.len(), Ordering::Relaxed);
        let mut wal_records: Vec<LogRecord> = Vec::new();
        let mut deferred: Vec<(Mail, Response)> = Vec::new();
        let mut parked = parked;
        for mail in batch.drain(..) {
            match &mail.req {
                Request::Get { key } => {
                    self.metrics.gets.fetch_add(1, Ordering::Relaxed);
                    // Stale-routed under the current map: bounce before
                    // touching the store. Reads never take the write gate
                    // (see dcs-rebalance::migrate) — a frozen range's
                    // source copy is immutable, so serving it stays
                    // linearizable right up to the epoch install.
                    if let Some((epoch, owner)) = self.router.read_misroute(self.index, key) {
                        self.reply_redirect(mail, epoch, owner);
                        continue;
                    }
                    let Some(ab) = &self.async_backend else {
                        let resp = match self.backend.kv_get(key) {
                            Ok(v) => Response::Value(v),
                            Err(e) => Response::Err(e.to_string()),
                        };
                        self.reply_read(mail, resp);
                        continue;
                    };
                    match ab.kv_get_submit(key) {
                        // Memory-served: answer inline, count as a hit.
                        Ok(AsyncGet::Ready(v)) => self.reply_read(mail, Response::Value(v)),
                        Ok(AsyncGet::Pending(token)) => {
                            self.metrics
                                .misses_submitted
                                .fetch_add(1, Ordering::Relaxed);
                            match parked.as_deref_mut() {
                                // Async miss mode: park the mail; the run
                                // loop acks it when the fetch completes.
                                Some(table) => {
                                    table.insert(token, mail);
                                }
                                // Sync miss mode: stall right here.
                                None => {
                                    let resp = self.await_miss(ab, token);
                                    self.reply_miss(mail, resp);
                                }
                            }
                        }
                        Err(e) => self.reply_read(mail, Response::Err(e.to_string())),
                    }
                }
                Request::Scan { start, limit } => {
                    self.metrics.scans.fetch_add(1, Ordering::Relaxed);
                    let resp = match self.scan_from(start, *limit as usize) {
                        Ok(n) => Response::Count(n as u64),
                        Err(e) => Response::Err(e),
                    };
                    self.reply_read(mail, resp);
                }
                Request::Put { key, value } => {
                    self.metrics.puts.fetch_add(1, Ordering::Relaxed);
                    match self.router.admit_write(self.index, key, Some(value)) {
                        WriteAdmission::Moved { epoch, shard } => {
                            self.reply_redirect(mail, epoch, shard);
                        }
                        WriteAdmission::Clear(permit) => {
                            let resp = match self.backend.kv_put(key.clone(), value.clone()) {
                                Ok(()) => {
                                    wal_records.push(self.redo(key, Some(value)));
                                    Response::Ok
                                }
                                Err(e) => Response::Err(e.to_string()),
                            };
                            // The permit pins the migration phase across
                            // the backend apply; release it before the
                            // group-commit wait.
                            drop(permit);
                            deferred.push((mail, resp));
                        }
                    }
                }
                Request::Delete { key } => {
                    self.metrics.deletes.fetch_add(1, Ordering::Relaxed);
                    match self.router.admit_write(self.index, key, None) {
                        WriteAdmission::Moved { epoch, shard } => {
                            self.reply_redirect(mail, epoch, shard);
                        }
                        WriteAdmission::Clear(permit) => {
                            let resp = match self.backend.kv_delete(key.clone()) {
                                Ok(()) => {
                                    wal_records.push(self.redo(key, None));
                                    Response::Ok
                                }
                                Err(e) => Response::Err(e.to_string()),
                            };
                            drop(permit);
                            deferred.push((mail, resp));
                        }
                    }
                }
                // STATS never reaches a shard (the connection reader
                // answers it); a stray one is harmless to refuse.
                Request::Stats { .. } => {
                    self.reply_read(mail, Response::Err("stats not routable".into()));
                }
                Request::Rmw { key, value } => {
                    self.metrics.rmws.fetch_add(1, Ordering::Relaxed);
                    // Atomic at the shard: the worker is the only writer of
                    // this key range, so read-append-write cannot race. The
                    // merged post-image is computed before admission so a
                    // copying migration mirrors the complete value into its
                    // tail, not the delta.
                    let resp = match self.backend.kv_get(key) {
                        Ok(cur) => {
                            let mut new = cur.unwrap_or_default();
                            new.extend_from_slice(value);
                            match self.router.admit_write(self.index, key, Some(&new)) {
                                WriteAdmission::Moved { epoch, shard } => {
                                    self.reply_redirect(mail, epoch, shard);
                                    continue;
                                }
                                WriteAdmission::Clear(permit) => {
                                    let resp = match self.backend.kv_put(key.clone(), new.clone()) {
                                        Ok(()) => {
                                            wal_records.push(self.redo(key, Some(&new)));
                                            Response::Ok
                                        }
                                        Err(e) => Response::Err(e.to_string()),
                                    };
                                    drop(permit);
                                    resp
                                }
                            }
                        }
                        Err(e) => Response::Err(e.to_string()),
                    };
                    deferred.push((mail, resp));
                }
            }
        }
        // Group commit: one barrier covers every write in the batch. Only
        // then are the write acks released — an acked write is durable.
        if !wal_records.is_empty() {
            self.metrics.group_commits.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .group_committed_records
                .fetch_add(wal_records.len() as u64, Ordering::Relaxed);
            if let Err(e) = self.wal.commit_batch(&wal_records) {
                let msg = format!("group commit failed: {e}");
                for (mail, _) in deferred.drain(..) {
                    let id = mail.id;
                    mail.reply.deliver(id, Response::Err(msg.clone()));
                }
            }
        }
        for (mail, resp) in deferred {
            let waited = dcs_telemetry::now_nanos().saturating_sub(mail.enqueued);
            self.metrics.write_latency.record(waited);
            // Write spans carry the WAL class: their latency is dominated by
            // the group-commit barrier they waited on.
            let _span = Self::request_span(&mail.req, dcs_telemetry::CostClass::Wal, waited);
            mail.reply.deliver(mail.id, resp);
        }
    }

    /// Answer a stale-routed request with `MOVED(epoch, shard)`: the
    /// request was not executed; the client should refresh its map and
    /// resubmit toward `shard`.
    fn reply_redirect(&self, mail: Mail, epoch: u64, shard: usize) {
        self.metrics.moved_redirects.fetch_add(1, Ordering::Relaxed);
        mail.reply.deliver(
            mail.id,
            Response::Moved {
                epoch,
                shard: shard as u32,
            },
        );
    }

    fn reply_read(&self, mail: Mail, resp: Response) {
        let waited = dcs_telemetry::now_nanos().saturating_sub(mail.enqueued);
        self.metrics.read_latency.record(waited);
        let _span = Self::request_span(&mail.req, dcs_telemetry::CostClass::Mm, waited);
        mail.reply.deliver(mail.id, resp);
    }

    /// Answer a GET that needed a device fetch, recording its full
    /// mailbox-entry-to-reply time in the miss-service histogram.
    fn reply_miss(&self, mail: Mail, resp: Response) {
        let waited = dcs_telemetry::now_nanos().saturating_sub(mail.enqueued);
        self.metrics.miss_latency.record(waited);
        let _span = dcs_telemetry::span_at(
            "server.get_miss",
            dcs_telemetry::CostClass::SsRead,
            dcs_telemetry::now_nanos().saturating_sub(waited),
        );
        mail.reply.deliver(mail.id, resp);
    }

    /// The per-request root span, backdated to the request's mailbox entry
    /// so the exported trace shows queueing + execution end to end. Store
    /// and device spans recorded on this shard thread during execution fall
    /// inside its time range, which is how the trace viewer nests them.
    fn request_span(
        req: &Request,
        class: dcs_telemetry::CostClass,
        elapsed_nanos: u64,
    ) -> dcs_telemetry::Span {
        let name = match req {
            Request::Get { .. } => "server.get",
            Request::Scan { .. } => "server.scan",
            Request::Put { .. } => "server.put",
            Request::Delete { .. } => "server.delete",
            Request::Rmw { .. } => "server.rmw",
            Request::Stats { .. } => "server.stats",
        };
        dcs_telemetry::span_at(
            name,
            class,
            dcs_telemetry::now_nanos().saturating_sub(elapsed_nanos),
        )
    }

    fn redo(&self, key: &[u8], value: Option<&[u8]>) -> LogRecord {
        LogRecord {
            ts: self.wal_ts.fetch_add(1, Ordering::Relaxed),
            key: Bytes::copy_from_slice(key),
            value: value.map(Bytes::copy_from_slice),
        }
    }

    /// Apply migrated entries (`None` value = delete) to this shard's own
    /// store and WAL under one group commit, returning how many were
    /// applied. Called by the migrator from its own thread while this
    /// shard's worker keeps running: safe because the entries' range is
    /// not yet owned by this shard (the worker refuses writes in it with
    /// `MOVED` until the new map lands), and both the backend store and
    /// the WAL are thread-safe.
    pub fn import(&self, entries: &[TailEntry]) -> Result<u64, String> {
        let mut records: Vec<LogRecord> = Vec::with_capacity(entries.len());
        for (key, value) in entries {
            match value {
                Some(v) => self
                    .backend
                    .kv_put(key.clone(), v.clone())
                    .map_err(|e| e.to_string())?,
                None => self
                    .backend
                    .kv_delete(key.clone())
                    .map_err(|e| e.to_string())?,
            }
            records.push(self.redo(key, value.as_deref()));
        }
        if !records.is_empty() {
            self.wal.commit_batch(&records).map_err(|e| e.to_string())?;
        }
        Ok(records.len() as u64)
    }

    /// Count up to `limit` records from `start`, walking the partition
    /// map's ranges in key order and reading each from its owner's store.
    /// Read-only and weakly consistent across range boundaries, exactly
    /// like a scan racing concurrent writers on a single store. Bounded
    /// per range by the map (not `kv_scan`'s open tail) so the stale
    /// bytes a finished migration leaves at the source are never counted.
    fn scan_from(&self, start: &[u8], limit: usize) -> Result<usize, String> {
        let map = self.router.map().load();
        let mut remaining = limit;
        let mut count = 0usize;
        for r in map.range_of(start)..map.ranges() {
            if remaining == 0 {
                break;
            }
            let Some((lo, hi)) = map.bounds(r) else { break };
            let Some(owner) = map.owner_of_range(r) else {
                break;
            };
            let Some(backend) = self.all_backends.get(owner) else {
                return Err(format!("range {r} owned by unknown shard {owner}"));
            };
            let from: &[u8] = if lo > start { lo } else { start };
            let n = backend
                .kv_range(from, hi, remaining, &mut |_k, _v| {})
                .map_err(|e| e.to_string())?;
            count += n;
            remaining = remaining.saturating_sub(n);
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_workload::StoreFailure;
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Instant;

    #[derive(Default)]
    struct MapStore(Mutex<BTreeMap<Vec<u8>, Vec<u8>>>);

    impl KvStore for MapStore {
        fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
            Ok(self.0.lock().unwrap().get(key).cloned())
        }
        fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().remove(&key);
            Ok(())
        }
        fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
            Ok(self
                .0
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(limit)
                .count())
        }
        fn kv_range(
            &self,
            start: &[u8],
            end: Option<&[u8]>,
            limit: usize,
            visit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<usize, StoreFailure> {
            let m = self.0.lock().unwrap();
            let mut n = 0;
            for (k, v) in m.range(start.to_vec()..) {
                if n == limit || end.is_some_and(|e| k.as_slice() >= e) {
                    break;
                }
                visit(k, v);
                n += 1;
            }
            Ok(n)
        }
    }

    #[derive(Default)]
    struct CollectSink(Mutex<Vec<(u64, Response)>>);

    impl ReplySink for CollectSink {
        fn deliver(&self, id: u64, resp: Response) {
            self.0.lock().unwrap().push((id, resp));
        }
    }

    type SharedBackends = Arc<Vec<Arc<dyn KvStore + Send + Sync>>>;

    fn two_shards() -> (Arc<Shard>, Arc<Shard>, SharedBackends) {
        let backends: SharedBackends = Arc::new(vec![
            Arc::new(MapStore::default()),
            Arc::new(MapStore::default()),
        ]);
        let part = Arc::new(Partitioner::from_splits(vec![b"m".to_vec()]));
        let cfg = ShardConfig::default();
        let s0 = Arc::new(Shard::new(
            0,
            &cfg,
            backends.clone(),
            part.clone(),
            Arc::new(RecoveryLog::in_memory()),
        ));
        let s1 = Arc::new(Shard::new(
            1,
            &cfg,
            backends.clone(),
            part,
            Arc::new(RecoveryLog::in_memory()),
        ));
        (s0, s1, backends)
    }

    fn mail(id: u64, req: Request, sink: &Arc<CollectSink>) -> Mail {
        Mail {
            id,
            req,
            reply: sink.clone() as Arc<dyn ReplySink>,
            enqueued: dcs_telemetry::now_nanos(),
        }
    }

    #[test]
    fn partitioner_routes_ranges() {
        let p = Partitioner::from_splits(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of(b""), 0);
        assert_eq!(p.shard_of(b"f"), 0);
        assert_eq!(p.shard_of(b"g"), 1, "split key belongs to the right");
        assert_eq!(p.shard_of(b"o"), 1);
        assert_eq!(p.shard_of(b"p"), 2);
        assert_eq!(p.shard_of(b"zzz"), 2);
        assert_eq!(p.lower_bound(0), b"");
        assert_eq!(p.lower_bound(2), b"p");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_splits_panic() {
        let _ = Partitioner::from_splits(vec![b"z".to_vec(), b"a".to_vec()]);
    }

    #[test]
    fn batch_executes_and_group_commits() {
        let (s0, _s1, backends) = two_shards();
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            1,
            Request::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(
            2,
            Request::Put {
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(3, Request::Get { key: b"a".to_vec() }, &sink));
        s0.mailbox().close();
        s0.run();
        let replies = sink.0.lock().unwrap();
        // Reads reply inline, writes after the group commit; all three
        // answered.
        assert_eq!(replies.len(), 3);
        assert!(replies
            .iter()
            .any(|(id, r)| *id == 3 && *r == Response::Value(Some(b"1".to_vec()))));
        assert!(replies.iter().filter(|(_, r)| *r == Response::Ok).count() == 2);
        // One batch, one group commit carrying both writes, both in the WAL.
        assert_eq!(s0.metrics().group_commits.load(Ordering::Relaxed), 1);
        assert_eq!(
            s0.metrics().group_committed_records.load(Ordering::Relaxed),
            2
        );
        assert_eq!(s0.wal().len(), 2);
        assert_eq!(backends[0].kv_get(b"a").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn rmw_appends_atomically() {
        let (s0, _s1, backends) = two_shards();
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            1,
            Request::Put {
                key: b"k".to_vec(),
                value: b"ab".to_vec(),
            },
            &sink,
        ));
        s0.offer(mail(
            2,
            Request::Rmw {
                key: b"k".to_vec(),
                value: b"cd".to_vec(),
            },
            &sink,
        ));
        s0.mailbox().close();
        s0.run();
        assert_eq!(backends[0].kv_get(b"k").unwrap(), Some(b"abcd".to_vec()));
        // The RMW's WAL record carries the merged value (redo-complete).
        let records = s0.wal().records_from(0);
        assert_eq!(records.last().unwrap().value.as_deref(), Some(&b"abcd"[..]));
    }

    #[test]
    fn scan_continues_across_shards() {
        let (s0, s1, backends) = two_shards();
        // 3 keys below the "m" split, 3 above.
        for k in [b"a", b"b", b"c"] {
            backends[0].kv_put(k.to_vec(), b"v".to_vec()).unwrap();
        }
        for k in [b"p", b"q", b"r"] {
            backends[1].kv_put(k.to_vec(), b"v".to_vec()).unwrap();
        }
        let sink = Arc::new(CollectSink::default());
        s0.offer(mail(
            9,
            Request::Scan {
                start: b"b".to_vec(),
                limit: 4,
            },
            &sink,
        ));
        s0.mailbox().close();
        s0.run();
        // b, c from shard 0, then p, q from shard 1.
        assert_eq!(sink.0.lock().unwrap()[0], (9, Response::Count(4)));
        // A scan routed to the tail shard stays there.
        let sink2 = Arc::new(CollectSink::default());
        s1.offer(mail(
            10,
            Request::Scan {
                start: b"q".to_vec(),
                limit: 10,
            },
            &sink2,
        ));
        s1.mailbox().close();
        s1.run();
        assert_eq!(sink2.0.lock().unwrap()[0], (10, Response::Count(2)));
    }

    /// Async test double: keys starting with `cold` miss and complete only
    /// after a wall-clock delay; everything else answers inline.
    struct SlowAsyncStore {
        inner: MapStore,
        delay: std::time::Duration,
        next_token: AtomicU64,
        pending: Mutex<Vec<(u64, Vec<u8>, Instant)>>,
    }

    impl SlowAsyncStore {
        fn new(delay: std::time::Duration) -> Self {
            SlowAsyncStore {
                inner: MapStore::default(),
                delay,
                next_token: AtomicU64::new(1),
                pending: Mutex::new(Vec::new()),
            }
        }
    }

    impl KvStore for SlowAsyncStore {
        fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
            self.inner.kv_get(key)
        }
        fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
            self.inner.kv_put(key, value)
        }
        fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
            self.inner.kv_delete(key)
        }
        fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
            self.inner.kv_scan(start, limit)
        }
        fn kv_range(
            &self,
            start: &[u8],
            end: Option<&[u8]>,
            limit: usize,
            visit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<usize, StoreFailure> {
            self.inner.kv_range(start, end, limit, visit)
        }
    }

    impl AsyncKvStore for SlowAsyncStore {
        fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
            if key.starts_with(b"cold") {
                let token = self.next_token.fetch_add(1, Ordering::Relaxed);
                self.pending.lock().unwrap().push((
                    token,
                    key.to_vec(),
                    Instant::now() + self.delay,
                ));
                Ok(AsyncGet::Pending(token))
            } else {
                Ok(AsyncGet::Ready(self.inner.kv_get(key)?))
            }
        }

        fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize {
            let mut pending = self.pending.lock().unwrap();
            let now = Instant::now();
            let mut reaped = 0;
            pending.retain(|(token, key, ready)| {
                if *ready <= now {
                    out.push(CompletedGet {
                        token: *token,
                        result: self.inner.kv_get(key),
                    });
                    reaped += 1;
                    false
                } else {
                    true
                }
            });
            reaped
        }

        fn kv_inflight(&self) -> usize {
            self.pending.lock().unwrap().len()
        }
    }

    fn slow_shard(miss_mode: MissMode, delay_ms: u64) -> (Arc<Shard>, Arc<SlowAsyncStore>) {
        let store = Arc::new(SlowAsyncStore::new(std::time::Duration::from_millis(
            delay_ms,
        )));
        store.kv_put(b"cold1".to_vec(), b"c1".to_vec()).unwrap();
        store.kv_put(b"cold2".to_vec(), b"c2".to_vec()).unwrap();
        store.kv_put(b"hot".to_vec(), b"h".to_vec()).unwrap();
        let backends: SharedBackends = Arc::new(vec![store.clone()]);
        let cfg = ShardConfig {
            miss_mode,
            ..ShardConfig::default()
        };
        let shard = Arc::new(
            Shard::new(
                0,
                &cfg,
                backends,
                Arc::new(Partitioner::single()),
                Arc::new(RecoveryLog::in_memory()),
            )
            .with_async_backend(Some(store.clone())),
        );
        (shard, store)
    }

    #[test]
    fn async_miss_does_not_block_hits() {
        let (shard, _store) = slow_shard(MissMode::Async, 80);
        let sink = Arc::new(CollectSink::default());
        let worker = {
            let shard = shard.clone();
            std::thread::spawn(move || shard.run())
        };
        // A cold GET goes to the (slow) device...
        shard.offer(mail(
            1,
            Request::Get {
                key: b"cold1".to_vec(),
            },
            &sink,
        ));
        // ...and hits queued behind it must be answered while it is parked.
        for id in 2..=5 {
            shard.offer(mail(
                id,
                Request::Get {
                    key: b"hot".to_vec(),
                },
                &sink,
            ));
        }
        let t0 = Instant::now();
        loop {
            {
                let replies = sink.0.lock().unwrap();
                if replies.iter().filter(|(id, _)| *id >= 2).count() == 4 {
                    // All four hits answered; the miss must still be parked.
                    assert!(
                        !replies.iter().any(|(id, _)| *id == 1),
                        "miss answered before its device delay elapsed"
                    );
                    break;
                }
            }
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "hits stuck"
            );
            std::thread::yield_now();
        }
        shard.mailbox().close();
        worker.join().unwrap();
        let replies = sink.0.lock().unwrap();
        assert_eq!(replies.len(), 5);
        // Out-of-order ack: the first-submitted request answered last.
        assert_eq!(replies.last().unwrap().0, 1);
        assert!(replies
            .iter()
            .any(|(id, r)| *id == 1 && *r == Response::Value(Some(b"c1".to_vec()))));
        assert_eq!(shard.metrics().misses_submitted.load(Ordering::Relaxed), 1);
        assert_eq!(shard.metrics().miss_latency.count(), 1);
        assert_eq!(shard.metrics().read_latency.count(), 4);
    }

    #[test]
    fn sync_miss_mode_stalls_in_arrival_order() {
        let (shard, _store) = slow_shard(MissMode::Sync, 10);
        let sink = Arc::new(CollectSink::default());
        shard.offer(mail(
            1,
            Request::Get {
                key: b"cold1".to_vec(),
            },
            &sink,
        ));
        shard.offer(mail(
            2,
            Request::Get {
                key: b"hot".to_vec(),
            },
            &sink,
        ));
        shard.mailbox().close();
        shard.run();
        let replies = sink.0.lock().unwrap();
        // Blocking path: the hit waits out the miss ahead of it.
        assert_eq!(replies[0].0, 1);
        assert_eq!(replies[1].0, 2);
        assert_eq!(shard.metrics().misses_submitted.load(Ordering::Relaxed), 1);
        assert_eq!(shard.metrics().miss_latency.count(), 1);
    }

    #[test]
    fn shutdown_drains_parked_misses() {
        let (shard, store) = slow_shard(MissMode::Async, 40);
        let sink = Arc::new(CollectSink::default());
        shard.offer(mail(
            1,
            Request::Get {
                key: b"cold1".to_vec(),
            },
            &sink,
        ));
        shard.offer(mail(
            2,
            Request::Get {
                key: b"cold2".to_vec(),
            },
            &sink,
        ));
        shard.mailbox().close();
        // run() must keep polling past the closed mailbox until both
        // parked misses are answered.
        shard.run();
        let replies = sink.0.lock().unwrap();
        assert_eq!(replies.len(), 2, "a parked miss was dropped at shutdown");
        assert!(replies
            .iter()
            .any(|(id, r)| *id == 1 && *r == Response::Value(Some(b"c1".to_vec()))));
        assert!(replies
            .iter()
            .any(|(id, r)| *id == 2 && *r == Response::Value(Some(b"c2".to_vec()))));
        assert_eq!(store.kv_inflight(), 0);
        assert_eq!(shard.metrics().parked_peak.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn busy_and_closed_answered_not_dropped() {
        let backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>> =
            Arc::new(vec![Arc::new(MapStore::default())]);
        let cfg = ShardConfig {
            mailbox_capacity: 1,
            batch_max: 8,
            ..ShardConfig::default()
        };
        let shard = Shard::new(
            0,
            &cfg,
            backends,
            Arc::new(Partitioner::single()),
            Arc::new(RecoveryLog::in_memory()),
        );
        let sink = Arc::new(CollectSink::default());
        shard.offer(mail(1, Request::Get { key: b"k".to_vec() }, &sink));
        shard.offer(mail(2, Request::Get { key: b"k".to_vec() }, &sink));
        assert_eq!(sink.0.lock().unwrap().as_slice(), &[(2, Response::Busy)]);
        assert_eq!(shard.metrics().busy_rejections.load(Ordering::Relaxed), 1);
        shard.mailbox().close();
        shard.offer(mail(3, Request::Get { key: b"k".to_vec() }, &sink));
        assert!(matches!(sink.0.lock().unwrap()[1], (3, Response::Err(_))));
        shard.run();
        // The accepted request was still served after close.
        assert_eq!(sink.0.lock().unwrap().len(), 3);
    }
}
