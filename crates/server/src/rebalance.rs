//! The server's side of online rebalancing: the migration engine that
//! moves one range between live shards, and the background policy thread
//! that decides when to split, merge, and move.
//!
//! The mechanism (versioned map, write gates, tail mirroring) lives in
//! `dcs-rebalance`; this module owns the choreography against real
//! shards. [`migrate_range`] is the copy → freeze → replay → install
//! sequence from the `dcs_rebalance::migrate` module docs, executed with
//! [`Shard::kv_backend`] as the copy source and [`Shard::import`] as the
//! target apply (backend + WAL in one group commit). The rebalancer
//! thread ticks on a condvar timeout, turns the monotone per-range heat
//! counters into per-tick EWMA rates, and executes at most one
//! [`Action`] per tick so every map transition stays small and
//! observable.

use crate::shard::Shard;
use dcs_rebalance::{plan, Action, PolicyConfig, RangeLease, Router, TailEntry};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Background rebalancer tunables.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Run the background rebalancer thread at all. Off by default:
    /// static placement remains the baseline the paper's cost ledger is
    /// calibrated against, and the CI gate compares on vs. off.
    pub enabled: bool,
    /// Policy tick interval in milliseconds (wall clock: the rebalancer
    /// paces real migrations, not simulated ones).
    pub tick_ms: u64,
    /// Smoothing factor for the per-range heat EWMA (0 < alpha <= 1;
    /// higher = reacts faster, flaps easier).
    pub ewma_alpha: f64,
    /// The cost-model policy knobs (priced from the paper's hardware
    /// catalog by default).
    pub policy: PolicyConfig,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            tick_ms: 20,
            ewma_alpha: 0.5,
            policy: PolicyConfig::default(),
        }
    }
}

/// What one completed migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// Records copied in the bulk phase.
    pub copied: u64,
    /// Tail writes replayed from the freeze window.
    pub replayed: u64,
    /// Epoch of the map installed at the end.
    pub epoch: u64,
}

/// Move `range` of the current map to shard `target`, online.
///
/// Copy → freeze → replay → install → finish, per the protocol in
/// `dcs_rebalance::migrate`. Writes racing the copy are mirrored into
/// the source gate's tail and replayed last-writer-wins; writes arriving
/// after the freeze bounce with `MOVED(next_epoch, target)`. On any
/// error before the install the gate is disarmed and the map left
/// untouched — the source still owns the range and has every
/// acknowledged write, so aborting is always safe.
pub fn migrate_range(
    router: &Router,
    shards: &[Arc<Shard>],
    range: usize,
    target: usize,
) -> Result<MigrationStats, String> {
    // One span per migration: the copy, replay, and install all bill to
    // it, so a trace shows handoffs as single background Mm intervals.
    let _span = dcs_telemetry::span("rebalance.migrate", dcs_telemetry::CostClass::Mm);
    let map = router.map().load();
    let source = map
        .owner_of_range(range)
        .ok_or_else(|| format!("no range {range} in epoch {}", map.epoch()))?;
    if source == target {
        return Err(format!("range {range} already on shard {target}"));
    }
    let (lo, hi) = map
        .bounds(range)
        .ok_or_else(|| format!("no bounds for range {range}"))?;
    let next = map
        .reassign(range, target)
        .ok_or_else(|| format!("cannot reassign range {range} to shard {target}"))?;
    let src = shards
        .get(source)
        .ok_or_else(|| format!("no source shard {source}"))?;
    let dst = shards
        .get(target)
        .ok_or_else(|| format!("no target shard {target}"))?;
    let gate = router
        .gate(source)
        .ok_or_else(|| format!("no gate for shard {source}"))?
        .clone();
    let lease = RangeLease {
        lo: lo.to_vec(),
        hi: hi.map(<[u8]>::to_vec),
        source,
        target,
        next_epoch: next.epoch(),
    };
    if !gate.begin(lease) {
        return Err(format!("shard {source} already has a migration in flight"));
    }
    // Bulk copy. Started strictly after `begin`, so every write it can
    // miss is in the tail.
    let mut copied: Vec<TailEntry> = Vec::new();
    let copy = src.kv_backend().kv_range(lo, hi, usize::MAX, &mut |k, v| {
        copied.push((k.to_vec(), Some(v.to_vec())));
    });
    if let Err(e) = copy {
        gate.finish();
        return Err(format!("copy failed: {e}"));
    }
    if let Err(e) = dst.import(&copied) {
        gate.finish();
        return Err(format!("bulk import failed: {e}"));
    }
    // Freeze the range and replay the mirrored tail (admission order =
    // source apply order, so last-writer-wins replay converges on the
    // source's final state).
    let Some(tail) = gate.freeze() else {
        gate.finish();
        return Err("gate lost its lease mid-migration".to_string());
    };
    if let Err(e) = dst.import(&tail) {
        gate.finish();
        return Err(format!("tail replay failed: {e}"));
    }
    // Install before finish: a worker that finds the gate empty must be
    // looking at the new map (order argument in dcs-rebalance::migrate).
    let epoch = next.epoch();
    let installed = router.map().install(Arc::new(next));
    gate.finish();
    if !installed {
        return Err("a newer map was installed mid-migration".to_string());
    }
    let moved = (copied.len() + tail.len()) as u64;
    let t = dcs_telemetry::global();
    t.counter("rebalance.moves").incr();
    t.counter("rebalance.migrated_records").add(moved);
    // Paper-cost attribution: each migrated record is one memory-to-
    // memory maintenance transfer; the action itself is one background
    // maintenance op.
    dcs_telemetry::ledger().mm_ops(moved);
    dcs_telemetry::ledger().maintenance_op();
    Ok(MigrationStats {
        copied: copied.len() as u64,
        replayed: tail.len() as u64,
        epoch,
    })
}

/// Pick a data-informed split point for `range`: the median *existing*
/// key in the owner's backend, like a B-tree node split. The policy's
/// byte-midpoint fallback bisects raw keyspace, and for sparse
/// encodings (a 4-byte prefix plus a mostly-zero big-endian id) that
/// spends dozens of epochs carving empty halves before any split
/// actually separates two live keys; the median key halves the real
/// population in one epoch. `None` when the range holds fewer than two
/// keys (nothing to separate).
fn median_split_key(router: &Router, shards: &[Arc<Shard>], range: usize) -> Option<Vec<u8>> {
    let map = router.map().load();
    let (lo, hi) = map.bounds(range)?;
    let owner = map.owner_of_range(range)?;
    let backend = shards.get(owner)?.kv_backend();
    let mut keys: Vec<Vec<u8>> = Vec::new();
    backend
        .kv_range(lo, hi, usize::MAX, &mut |k, _| keys.push(k.to_vec()))
        .ok()?;
    if keys.len() < 2 {
        return None;
    }
    let mid = keys.get(keys.len() / 2)?.clone();
    // keys are sorted and distinct, so keys[>=1] is strictly above lo;
    // double-check both bounds anyway before handing it to the map.
    (mid.as_slice() > lo && hi.is_none_or(|h| mid.as_slice() < h)).then_some(mid)
}

/// Split `range` of the current map at `at` (both halves keep the
/// owner). Purely a map transition — no data moves.
pub fn split_range(router: &Router, range: usize, at: Vec<u8>) -> Result<u64, String> {
    let map = router.map().load();
    let next = map
        .split(range, at)
        .ok_or_else(|| format!("cannot split range {range}"))?;
    let epoch = next.epoch();
    if !router.map().install(Arc::new(next)) {
        return Err("a newer map was installed mid-split".to_string());
    }
    dcs_telemetry::global().counter("rebalance.splits").incr();
    Ok(epoch)
}

/// Merge `range` with its right neighbor (same owner required).
pub fn merge_range(router: &Router, range: usize) -> Result<u64, String> {
    let map = router.map().load();
    let next = map
        .merge(range)
        .ok_or_else(|| format!("cannot merge range {range}"))?;
    let epoch = next.epoch();
    if !router.map().install(Arc::new(next)) {
        return Err("a newer map was installed mid-merge".to_string());
    }
    dcs_telemetry::global().counter("rebalance.merges").incr();
    Ok(epoch)
}

/// Handle to the running rebalancer thread.
pub(crate) struct Rebalancer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Rebalancer {
    /// Spawn the policy loop over `router` and `shards`.
    pub(crate) fn spawn(
        cfg: RebalanceConfig,
        router: Arc<Router>,
        shards: Vec<Arc<Shard>>,
    ) -> std::io::Result<Rebalancer> {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("dcs-rebalance".into())
            .spawn(move || run_loop(&cfg, &router, &shards, &stop2))?;
        Ok(Rebalancer {
            stop,
            thread: Some(thread),
        })
    }

    /// Signal the loop and join it. Idempotent.
    pub(crate) fn stop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            *stopped = true;
            cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One policy iteration per tick: read the monotone heat counters, turn
/// them into per-tick deltas, smooth with an EWMA, ask the policy for at
/// most one action, execute it. A map-epoch change resets the baseline
/// (the counter vector is re-registered per epoch).
fn run_loop(
    cfg: &RebalanceConfig,
    router: &Router,
    shards: &[Arc<Shard>],
    stop: &(Mutex<bool>, Condvar),
) {
    let alpha = cfg.ewma_alpha.clamp(0.01, 1.0);
    let mut prev: Vec<u64> = Vec::new();
    let mut ewma: Vec<f64> = Vec::new();
    let mut prev_epoch = u64::MAX;
    loop {
        {
            let (lock, cv) = stop;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            if !*stopped {
                let (g, _) = cv
                    .wait_timeout(stopped, Duration::from_millis(cfg.tick_ms.max(1)))
                    .unwrap_or_else(|e| e.into_inner());
                stopped = g;
            }
            if *stopped {
                return;
            }
        }
        let map = router.map().load();
        let totals = router.heat().totals(&map);
        if map.epoch() != prev_epoch || prev.len() != totals.len() {
            // New epoch: the range set changed; start a fresh baseline
            // rather than comparing counters across different ranges.
            prev = totals;
            prev_epoch = map.epoch();
            ewma = vec![0.0; prev.len()];
            continue;
        }
        ewma.resize(totals.len(), 0.0);
        for (e, (t, p)) in ewma.iter_mut().zip(totals.iter().zip(prev.iter())) {
            *e = (1.0 - alpha) * *e + alpha * t.saturating_sub(*p) as f64;
        }
        prev = totals;
        let heat: Vec<u64> = ewma.iter().map(|e| *e as u64).collect();
        match plan(&map, &heat, shards.len(), &cfg.policy) {
            Some(Action::Move { range, to }) => {
                if let Err(e) = migrate_range(router, shards, range, to) {
                    dcs_telemetry::global()
                        .counter("rebalance.failed_actions")
                        .incr();
                    let _ = e;
                }
            }
            Some(Action::Split { range, at }) => {
                // Prefer the median live key over the policy's byte
                // midpoint; skip entirely when the range has nothing to
                // separate (splitting off empty halves burns map slots).
                match median_split_key(router, shards, range) {
                    Some(at) => {
                        let _ = split_range(router, range, at);
                    }
                    None => {
                        let _ = at;
                        dcs_telemetry::global()
                            .counter("rebalance.failed_actions")
                            .incr();
                    }
                }
            }
            Some(Action::Merge { range }) => {
                let _ = merge_range(router, range);
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};
    use crate::shard::{Mail, Partitioner, ReplySink, Shard, ShardConfig};
    use dcs_tc::RecoveryLog;
    use dcs_workload::{KvStore, StoreFailure};
    use std::collections::BTreeMap;
    use std::sync::atomic::Ordering;

    #[derive(Default)]
    struct MapStore(Mutex<BTreeMap<Vec<u8>, Vec<u8>>>);

    impl KvStore for MapStore {
        fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
            Ok(self.0.lock().unwrap().get(key).cloned())
        }
        fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().remove(&key);
            Ok(())
        }
        fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
            Ok(self
                .0
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(limit)
                .count())
        }
        fn kv_range(
            &self,
            start: &[u8],
            end: Option<&[u8]>,
            limit: usize,
            visit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<usize, StoreFailure> {
            let m = self.0.lock().unwrap();
            let mut n = 0;
            for (k, v) in m.range(start.to_vec()..) {
                if n == limit || end.is_some_and(|e| k.as_slice() >= e) {
                    break;
                }
                visit(k, v);
                n += 1;
            }
            Ok(n)
        }
    }

    #[derive(Default)]
    struct CollectSink(Mutex<Vec<(u64, Response)>>);

    impl ReplySink for CollectSink {
        fn deliver(&self, id: u64, resp: Response) {
            self.0.lock().unwrap().push((id, resp));
        }
    }

    fn two_shard_fixture() -> (Vec<Arc<Shard>>, Arc<Router>) {
        let backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>> = Arc::new(vec![
            Arc::new(MapStore::default()),
            Arc::new(MapStore::default()),
        ]);
        let part = Arc::new(Partitioner::from_splits(vec![b"m".to_vec()]));
        let cfg = ShardConfig::default();
        let s0 = Arc::new(Shard::new(
            0,
            &cfg,
            backends.clone(),
            part.clone(),
            Arc::new(RecoveryLog::in_memory()),
        ));
        let router = s0.router().clone();
        let s1 = Arc::new(
            Shard::new(1, &cfg, backends, part, Arc::new(RecoveryLog::in_memory()))
                .with_router(router.clone()),
        );
        (vec![s0, s1], router)
    }

    fn mail(id: u64, req: Request, sink: &Arc<CollectSink>) -> Mail {
        Mail {
            id,
            req,
            reply: sink.clone() as Arc<dyn ReplySink>,
            enqueued: dcs_telemetry::now_nanos(),
        }
    }

    #[test]
    fn migrate_moves_every_record_and_installs_epoch() {
        let (shards, router) = two_shard_fixture();
        for i in 0..20u32 {
            let k = format!("a{i:03}").into_bytes();
            shards[0]
                .kv_backend()
                .kv_put(k, format!("v{i}").into_bytes())
                .unwrap();
        }
        // Range 0 = [.., "m") on shard 0; move it to shard 1.
        let stats = migrate_range(&router, &shards, 0, 1).unwrap();
        assert_eq!(stats.copied, 20);
        assert_eq!(stats.replayed, 0);
        let map = router.map().load();
        assert_eq!(map.epoch(), stats.epoch);
        assert_eq!(map.shard_of(b"a000"), 1);
        // The target holds every record (and its WAL does too).
        for i in 0..20u32 {
            let k = format!("a{i:03}").into_bytes();
            assert_eq!(
                shards[1].kv_backend().kv_get(&k).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(shards[1].wal().len(), 20);
        // A second identical move refuses: shard 1 already owns it.
        assert!(migrate_range(&router, &shards, 0, 1).is_err());
    }

    #[test]
    fn writes_racing_the_copy_land_on_the_target() {
        let (shards, router) = two_shard_fixture();
        shards[0]
            .kv_backend()
            .kv_put(b"a1".to_vec(), b"old".to_vec())
            .unwrap();
        // Arm the gate by hand to hold the copying window open, write
        // through the shard's admission path, then run the real
        // migration steps against the already-armed gate.
        let gate = router.gate(0).unwrap().clone();
        let map = router.map().load();
        let next = map.reassign(0, 1).unwrap();
        assert!(gate.begin(RangeLease {
            lo: b"".to_vec(),
            hi: Some(b"m".to_vec()),
            source: 0,
            target: 1,
            next_epoch: next.epoch(),
        }));
        // A write admitted during the copy window: applied at the source
        // AND mirrored into the tail.
        let sink = Arc::new(CollectSink::default());
        shards[0].offer(mail(
            1,
            Request::Put {
                key: b"a1".to_vec(),
                value: b"new".to_vec(),
            },
            &sink,
        ));
        shards[0].mailbox().close();
        shards[0].run();
        assert_eq!(sink.0.lock().unwrap()[0], (1, Response::Ok));
        // Copy (sees "new" or not — either way the tail has it).
        let mut copied: Vec<TailEntry> = Vec::new();
        shards[0]
            .kv_backend()
            .kv_range(b"", Some(b"m"), usize::MAX, &mut |k, v| {
                copied.push((k.to_vec(), Some(v.to_vec())));
            })
            .unwrap();
        shards[1].import(&copied).unwrap();
        let tail = gate.freeze().unwrap();
        assert_eq!(tail.len(), 1, "racing write must be mirrored");
        shards[1].import(&tail).unwrap();
        assert!(router.map().install(Arc::new(next)));
        gate.finish();
        assert_eq!(
            shards[1].kv_backend().kv_get(b"a1").unwrap(),
            Some(b"new".to_vec())
        );
    }

    #[test]
    fn frozen_window_bounces_writes_toward_target() {
        let (shards, router) = two_shard_fixture();
        let gate = router.gate(0).unwrap().clone();
        assert!(gate.begin(RangeLease {
            lo: b"".to_vec(),
            hi: Some(b"m".to_vec()),
            source: 0,
            target: 1,
            next_epoch: 7,
        }));
        let _ = gate.freeze().unwrap();
        let sink = Arc::new(CollectSink::default());
        shards[0].offer(mail(
            1,
            Request::Put {
                key: b"a1".to_vec(),
                value: b"v".to_vec(),
            },
            &sink,
        ));
        shards[0].mailbox().close();
        shards[0].run();
        assert_eq!(
            sink.0.lock().unwrap()[0],
            (1, Response::Moved { epoch: 7, shard: 1 })
        );
        assert_eq!(
            shards[0].metrics().moved_redirects.load(Ordering::Relaxed),
            1
        );
        gate.finish();
    }

    #[test]
    fn split_then_merge_round_trips_the_map() {
        let (_shards, router) = two_shard_fixture();
        let e1 = split_range(&router, 0, b"g".to_vec()).unwrap();
        let map = router.map().load();
        assert_eq!(map.epoch(), e1);
        assert_eq!(map.ranges(), 3);
        let e2 = merge_range(&router, 0).unwrap();
        assert_eq!(e2, e1 + 1);
        assert_eq!(router.map().load().ranges(), 2);
    }
}
