//! Versioned STATS sub-block framing (snapshot format v2).
//!
//! A v1 STATS response was one opaque JSON string. That shape cannot
//! grow (every addition is a silent schema change) and cannot tell a
//! scraper *when* each piece was captured — under an online rebalance
//! the registry totals and the per-shard metrics can straddle a
//! partition-map epoch and silently disagree. v2 frames the response as
//! tagged sub-blocks, each carrying its own version and the
//! partition-map epoch it was captured under:
//!
//! ```text
//! payload := count:u8 (tag:u8 version:u8 epoch:u64 json:val)*
//! ```
//!
//! A scraper merges only blocks whose epochs agree and skips tags it
//! does not know; the client retries once on epoch skew (the capture
//! raced a map change — the second scrape lands in the new epoch). The
//! per-block version lets one block's schema evolve without re-versioning
//! the whole opcode.
//!
//! This module is wire-path code: every decode is bounds-checked and
//! panic-free ([`ProtoError`] on anything malformed), enforced by
//! `dcs-lint`'s `[wire-path]` pass.

use crate::protocol::{put_val, Cursor, ProtoError};

/// Tag of the metrics-registry block
/// ([`dcs_telemetry::RegistrySnapshot::to_json`] shape, plus the
/// server's `server.*` keys).
pub const SB_REGISTRY: u8 = 1;
/// Tag of the miss-ratio-curve block
/// ([`dcs_telemetry::MrcRegistry::to_json`] shape).
pub const SB_MRC: u8 = 2;

/// Schema version stamped on every block this build emits.
pub const BLOCK_VERSION: u8 = 1;

/// One tagged sub-block of a STATS response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsBlock {
    /// What the block holds ([`SB_REGISTRY`], [`SB_MRC`], ...).
    pub tag: u8,
    /// Schema version of this block's JSON.
    pub version: u8,
    /// Partition-map epoch the snapshot was captured under.
    pub epoch: u64,
    /// The block body, rendered as JSON.
    pub json: String,
}

impl StatsBlock {
    /// The merged-JSON key a scraper files this block under.
    fn key(&self) -> String {
        match self.tag {
            SB_REGISTRY => "registry".to_string(),
            SB_MRC => "mrc".to_string(),
            other => format!("block_{other}"),
        }
    }
}

/// A whole STATS response: an ordered list of sub-blocks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsPayload {
    /// The sub-blocks, in the order the server captured them.
    pub blocks: Vec<StatsBlock>,
}

impl StatsPayload {
    /// Append the wire encoding to `out`.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        debug_assert!(self.blocks.len() <= u8::MAX as usize, "too many blocks");
        out.push(self.blocks.len() as u8);
        for b in &self.blocks {
            out.push(b.tag);
            out.push(b.version);
            out.extend_from_slice(&b.epoch.to_le_bytes());
            put_val(out, b.json.as_bytes());
        }
    }

    /// Decode from a frame cursor. Rejects nothing by tag (unknown tags
    /// are forward compatibility, the scraper's concern); malformed
    /// framing fails with [`ProtoError::Truncated`]/`Oversized` like any
    /// other frame body.
    pub(crate) fn decode(c: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        let count = c.u8()? as usize;
        let mut blocks = Vec::with_capacity(count.min(16));
        for _ in 0..count {
            let tag = c.u8()?;
            let version = c.u8()?;
            let epoch = c.u64()?;
            let json = String::from_utf8_lossy(&c.val()?).into_owned();
            blocks.push(StatsBlock {
                tag,
                version,
                epoch,
                json,
            });
        }
        Ok(StatsPayload { blocks })
    }

    /// The block with `tag`, if present.
    pub fn block(&self, tag: u8) -> Option<&StatsBlock> {
        self.blocks.iter().find(|b| b.tag == tag)
    }

    /// Whether the blocks were captured under different partition-map
    /// epochs — the capture raced a rebalance and the pieces may
    /// disagree; scrape again.
    pub fn epoch_skew(&self) -> bool {
        self.blocks
            .windows(2)
            .any(|w| matches!(w, [a, b] if a.epoch != b.epoch))
    }

    /// The epoch shared by every block (the first block's, by
    /// construction, once [`StatsPayload::epoch_skew`] is false). 0 for
    /// an empty payload.
    pub fn epoch(&self) -> u64 {
        self.blocks.first().map_or(0, |b| b.epoch)
    }

    /// Merge the blocks into one JSON document for scrapers:
    /// `{"stats_epoch": N, "registry": {...}, "mrc": {...}}`. Blocks
    /// with unknown tags appear under `"block_<tag>"`; blocks whose
    /// version this build does not know are passed through verbatim
    /// (their schema is the emitter's contract, not ours).
    pub fn merged_json(&self) -> String {
        let mut out = format!("{{\"stats_epoch\": {}", self.epoch());
        for b in &self.blocks {
            out.push_str(", \"");
            out.push_str(&b.key());
            out.push_str("\": ");
            // A block body is JSON by contract; an empty one (from a
            // hostile or buggy peer) must not produce invalid output.
            if b.json.is_empty() {
                out.push_str("null");
            } else {
                out.push_str(&b.json);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsPayload {
        StatsPayload {
            blocks: vec![
                StatsBlock {
                    tag: SB_REGISTRY,
                    version: BLOCK_VERSION,
                    epoch: 7,
                    json: "{\"counters\": {\"server.puts\": 1}}".into(),
                },
                StatsBlock {
                    tag: SB_MRC,
                    version: BLOCK_VERSION,
                    epoch: 7,
                    json: "{\"consumers\": []}".into(),
                },
            ],
        }
    }

    fn decode_all(bytes: &[u8]) -> Result<StatsPayload, ProtoError> {
        let mut c = Cursor::new(bytes);
        let p = StatsPayload::decode(&mut c)?;
        c.done()?;
        Ok(p)
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        assert_eq!(decode_all(&bytes).unwrap(), p);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let p = StatsPayload::default();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        assert_eq!(bytes, vec![0]);
        assert_eq!(decode_all(&bytes).unwrap(), p);
    }

    #[test]
    fn truncation_at_every_cut_is_an_error_not_a_panic() {
        let mut bytes = Vec::new();
        sample().encode(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                decode_all(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must fail to decode"
            );
        }
    }

    #[test]
    fn epoch_skew_detected() {
        let mut p = sample();
        assert!(!p.epoch_skew());
        p.blocks[1].epoch = 8;
        assert!(p.epoch_skew());
    }

    #[test]
    fn merged_json_carries_every_block_under_its_key() {
        let json = sample().merged_json();
        assert!(json.contains("\"stats_epoch\": 7"));
        assert!(json.contains("\"registry\": {\"counters\""));
        assert!(json.contains("\"mrc\": {\"consumers\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn unknown_tags_decode_and_merge_under_generic_key() {
        let p = StatsPayload {
            blocks: vec![StatsBlock {
                tag: 200,
                version: 9,
                epoch: 1,
                json: "{}".into(),
            }],
        };
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let back = decode_all(&bytes).unwrap();
        assert_eq!(back, p);
        assert!(back.merged_json().contains("\"block_200\": {}"));
    }

    #[test]
    fn empty_block_body_merges_as_null() {
        let p = StatsPayload {
            blocks: vec![StatsBlock {
                tag: SB_MRC,
                version: BLOCK_VERSION,
                epoch: 0,
                json: String::new(),
            }],
        };
        assert!(p.merged_json().contains("\"mrc\": null"));
    }
}
