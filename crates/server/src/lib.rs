//! `dcs-server`: a sharded network serving layer for the workspace's data
//! stores.
//!
//! The paper's cost/performance argument is about *served* operations —
//! data caching systems earn their keep at the end of a wire, where
//! batching, pipelining, and group commit amortize per-operation overhead.
//! This crate puts any [`dcs_workload::KvStore`] backend behind a TCP
//! front-end built from:
//!
//! * [`protocol`] — a compact length-prefixed binary framing with request
//!   ids (pipelining), FNV-64 checksums, and strict decode validation;
//! * [`mailbox`] — bounded MPSC shard mailboxes with explicit BUSY
//!   backpressure instead of unbounded queueing;
//! * [`shard`] — shard-per-thread execution over range-partitioned
//!   backends, write batching, and group commit through the TC's
//!   [`dcs_tc::RecoveryLog`] (a write is acked only once durable);
//! * [`server`] — the accept loop, per-connection reader/writer threads,
//!   and drain-and-flush shutdown;
//! * [`client`] — a pooled, pipelined client that is itself a
//!   [`dcs_workload::KvStore`], so every existing harness can drive a
//!   server over the wire unchanged;
//! * [`metrics`] / [`report`] — per-shard op/batch/latency accounting and
//!   the `BENCH_server.json` report emitted by the `loadgen` binary.
//!
//! Under the `check` feature the mailbox's synchronization routes through
//! `dcs-check`'s instrumented shims so the enqueue/drain/close protocol can
//! be explored deterministically (see `crates/check/tests/server_mailbox.rs`).

pub mod client;
pub mod mailbox;
pub mod metrics;
pub mod protocol;
pub mod rebalance;
pub mod report;
pub mod server;
pub mod shard;
pub mod statsblock;
mod sync;

pub use client::{Client, ClientConfig, ClientError, Ticket};
pub use mailbox::{Mailbox, MailboxStats, SendError};
pub use metrics::{LatencyHistogram, LatencySummary, ShardMetrics, ShardSnapshot};
pub use protocol::{Frame, ProtoError, Request, Response};
pub use rebalance::{migrate_range, MigrationStats, RebalanceConfig};
pub use report::{BenchReport, IoDepthReport, MissServiceReport, OpReport, PlacementReport};
pub use server::{Server, ServerConfig, ServerReport, ShardBackend};
pub use shard::{Mail, MissMode, Partitioner, ReplySink, Shard, ShardConfig};
