//! End-to-end CLI gate test: seed a violation in a throwaway workspace,
//! prove the binary exits non-zero (what fails the CI job), then freeze
//! it into a baseline and prove the gate reopens.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the target temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("dcs-lint-gate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/x/src")).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        Scratch(dir)
    }

    fn write(&self, rel: &str, text: &str) {
        std::fs::write(self.0.join(rel), text).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("dcs-lint binary runs")
}

#[test]
fn seeded_violation_fails_then_baseline_reopens_the_gate() {
    let ws = Scratch::new("seeded");
    // The seed: a stray real-clock read, the exact class of violation
    // the CI job exists to catch.
    ws.write(
        "crates/x/src/lib.rs",
        "fn wall() -> u64 {\n\
         let t = std::time::Instant::now();\n\
         t.elapsed().as_nanos() as u64\n\
         }\n",
    );

    let out = lint(&ws.0, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("virtual-clock"), "{stdout}");
    assert!(stdout.contains("crates/x/src/lib.rs:2"), "{stdout}");

    // Freeze the debt; the gate must pass afterwards.
    let frozen = lint(&ws.0, &["--update-baseline"]);
    assert_eq!(frozen.status.code(), Some(0), "{frozen:?}");
    let reopened = lint(&ws.0, &[]);
    assert_eq!(reopened.status.code(), Some(0), "{reopened:?}");

    // A *second* instance of the same debt exceeds the frozen count.
    ws.write(
        "crates/x/src/more.rs",
        "fn wall2() -> std::time::Instant {\n\
         std::time::Instant::now()\n\
         }\n",
    );
    let regressed = lint(&ws.0, &[]);
    assert_eq!(regressed.status.code(), Some(1), "{regressed:?}");
}

#[test]
fn clean_tree_exits_zero_and_writes_json() {
    let ws = Scratch::new("clean");
    ws.write(
        "crates/x/src/lib.rs",
        "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
    );
    let json_path = ws.0.join("lint-report.json");
    let out = lint(&ws.0, &["--json", json_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"new\": 0"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("dcs-lint binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn sarif_report_is_written() {
    let ws = Scratch::new("sarif");
    ws.write(
        "crates/x/src/lib.rs",
        "fn wall() -> u64 {\n\
         let t = std::time::Instant::now();\n\
         t.elapsed().as_nanos() as u64\n\
         }\n",
    );
    let sarif_path = ws.0.join("lint.sarif");
    let out = lint(&ws.0, &["--sarif", sarif_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = std::fs::read_to_string(&sarif_path).unwrap();
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"virtual-clock\""), "{sarif}");
    assert!(sarif.contains("\"startLine\": 2"), "{sarif}");
    assert!(sarif.contains("dcsLint/v1"), "{sarif}");
}

#[test]
fn effects_dump_prints_summary() {
    let ws = Scratch::new("effects");
    ws.write(
        "crates/x/src/lib.rs",
        "pub fn top() { helper(); }\n\
         fn helper() { let b = Box::new(1); }\n",
    );
    let out = lint(&ws.0, &["--effects", "top"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dcs-x::top"), "{stdout}");
    assert!(stdout.contains("Allocates"), "{stdout}");
    assert!(stdout.contains("helper"), "{stdout}"); // origin chain
}

/// Run git in the scratch workspace (ignoring global config).
fn git(root: &Path, args: &[&str]) {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .env("GIT_AUTHOR_NAME", "t")
        .env("GIT_AUTHOR_EMAIL", "t@t")
        .env("GIT_COMMITTER_NAME", "t")
        .env("GIT_COMMITTER_EMAIL", "t@t")
        .env("GIT_CONFIG_GLOBAL", "/dev/null")
        .env("GIT_CONFIG_SYSTEM", "/dev/null")
        .args(args)
        .output()
        .expect("git runs");
    assert!(out.status.success(), "git {args:?}: {out:?}");
}

#[test]
fn changed_only_skips_out_of_diff_violations() {
    let ws = Scratch::new("changed");
    // Two files, each with a violation. Commit both, then touch only
    // one: the committed-and-unchanged violation must be skipped, the
    // in-diff one must still fail the gate.
    let bad = "fn wall() -> u64 {\n\
         let t = std::time::Instant::now();\n\
         t.elapsed().as_nanos() as u64\n\
         }\n";
    ws.write("crates/x/src/old.rs", bad);
    ws.write("crates/x/src/new.rs", "pub fn clean() {}\n");
    git(&ws.0, &["init", "-q"]);
    git(&ws.0, &["add", "-A"]);
    git(&ws.0, &["commit", "-q", "-m", "seed"]);

    // Untouched tree vs HEAD: the old violation is out of diff.
    let out = lint(&ws.0, &["--changed-only", "HEAD"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Edit the second file to introduce a violation: in diff, fails.
    ws.write(
        "crates/x/src/new.rs",
        "pub fn wall2() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let out = lint(&ws.0, &["--changed-only", "HEAD"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("new.rs"), "{stdout}");
    assert!(!stdout.contains("old.rs:"), "{stdout}");
}
