//! End-to-end CLI gate test: seed a violation in a throwaway workspace,
//! prove the binary exits non-zero (what fails the CI job), then freeze
//! it into a baseline and prove the gate reopens.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the target temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("dcs-lint-gate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/x/src")).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        Scratch(dir)
    }

    fn write(&self, rel: &str, text: &str) {
        std::fs::write(self.0.join(rel), text).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("dcs-lint binary runs")
}

#[test]
fn seeded_violation_fails_then_baseline_reopens_the_gate() {
    let ws = Scratch::new("seeded");
    // The seed: a stray real-clock read, the exact class of violation
    // the CI job exists to catch.
    ws.write(
        "crates/x/src/lib.rs",
        "fn wall() -> u64 {\n\
         let t = std::time::Instant::now();\n\
         t.elapsed().as_nanos() as u64\n\
         }\n",
    );

    let out = lint(&ws.0, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("virtual-clock"), "{stdout}");
    assert!(stdout.contains("crates/x/src/lib.rs:2"), "{stdout}");

    // Freeze the debt; the gate must pass afterwards.
    let frozen = lint(&ws.0, &["--update-baseline"]);
    assert_eq!(frozen.status.code(), Some(0), "{frozen:?}");
    let reopened = lint(&ws.0, &[]);
    assert_eq!(reopened.status.code(), Some(0), "{reopened:?}");

    // A *second* instance of the same debt exceeds the frozen count.
    ws.write(
        "crates/x/src/more.rs",
        "fn wall2() -> std::time::Instant {\n\
         std::time::Instant::now()\n\
         }\n",
    );
    let regressed = lint(&ws.0, &[]);
    assert_eq!(regressed.status.code(), Some(1), "{regressed:?}");
}

#[test]
fn clean_tree_exits_zero_and_writes_json() {
    let ws = Scratch::new("clean");
    ws.write(
        "crates/x/src/lib.rs",
        "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
    );
    let json_path = ws.0.join("lint-report.json");
    let out = lint(&ws.0, &["--json", json_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"new\": 0"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("dcs-lint binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
