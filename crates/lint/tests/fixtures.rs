//! Fixture-corpus tests: one known-bad snippet per lint, asserting each
//! lint fires on its fixture at the expected site, plus a baseline
//! round-trip over the whole corpus.
//!
//! The fixtures live as real files under `tests/fixtures/` (outside any
//! `src/`, so the workspace scan never picks them up) and are loaded
//! with `include_str!` so the corpus cannot drift from what the tests
//! exercise.

use dcs_lint::analyze;
use dcs_lint::baseline::Baseline;
use dcs_lint::lints::Violation;
use dcs_lint::manifest::{HotPath, Manifest};
use dcs_lint::source::SourceFile;
use std::path::PathBuf;

/// Parse one fixture as if it lived at `crates/<krate>/src/<name>`.
fn fixture(krate: &str, name: &str, text: &str) -> SourceFile {
    SourceFile::from_text(
        PathBuf::from(name),
        format!("crates/{krate}/src/{name}"),
        krate,
        text,
    )
}

/// A manifest that puts every fixture in scope of its lint.
fn corpus_manifest() -> Manifest {
    Manifest {
        hotpaths: vec![HotPath {
            krate: "x".into(),
            func: "hot".into(),
        }],
        clock_allow: Vec::new(),
        wire_files: vec!["crates/x/src/panic_wire.rs".into()],
        ordering_crates: vec!["x".into()],
        ..Manifest::default()
    }
}

fn run_fixture(name: &str, text: &str) -> Vec<Violation> {
    let sf = fixture("x", name, text);
    analyze(&[sf], &corpus_manifest()).violations
}

fn only<'a>(violations: &'a [Violation], lint: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.lint == lint).collect()
}

#[test]
fn lock_cycle_fixture_fires() {
    let vs = run_fixture("lock_cycle.rs", include_str!("fixtures/lock_cycle.rs"));
    let cycles = only(&vs, "lock-order");
    assert_eq!(cycles.len(), 1, "{vs:?}");
    let v = cycles[0];
    assert_eq!(v.file, "crates/x/src/lock_cycle.rs");
    // Anchored at the first edge (alpha -> beta in `forward`, line 6),
    // message walks both participating sites.
    assert_eq!(v.line, 6);
    assert!(v.message.contains("forward"), "{}", v.message);
    assert!(v.message.contains("backward"), "{}", v.message);
    // The fingerprint is the sorted node set (crate-qualified labels),
    // with no line numbers.
    assert_eq!(
        v.fingerprint,
        "lock-order|workspace|cycle|x:s.alpha,x:s.beta"
    );
}

#[test]
fn cross_crate_lock_cycle_fixture_fires() {
    // The cycle is split across two crates: `a` locks alpha then calls
    // into `b` (which locks beta); `b` locks beta then calls back into
    // `a` (which locks alpha). Each crate's local graph is acyclic —
    // only the call-propagated workspace graph closes the loop.
    let files = vec![
        fixture("a", "xcycle_a.rs", include_str!("fixtures/xcycle_a.rs")),
        fixture("b", "xcycle_b.rs", include_str!("fixtures/xcycle_b.rs")),
    ];
    let vs = analyze(&files, &Manifest::default()).violations;
    let cycles = only(&vs, "lock-order");
    assert_eq!(cycles.len(), 1, "{vs:?}");
    let v = cycles[0];
    assert_eq!(
        v.fingerprint,
        "lock-order|workspace|cycle|a:s.alpha,b:s.beta"
    );
    assert!(v.message.contains("via"), "{}", v.message);
}

#[test]
fn async_block_fixture_fires() {
    let m = Manifest {
        async_roots: vec![HotPath {
            krate: "x".into(),
            func: "Shard2::drain".into(),
        }],
        ..Manifest::default()
    };
    let sf = fixture(
        "x",
        "async_block.rs",
        include_str!("fixtures/async_block.rs"),
    );
    let vs = analyze(&[sf], &m).violations;
    let hits = only(&vs, "async-shard");
    assert_eq!(hits.len(), 1, "{vs:?}");
    let v = hits[0];
    // Same-crate origin: anchored at the sleep itself, two hops down.
    assert_eq!(v.line, 18);
    assert_eq!(v.symbol, "fetch");
    assert!(
        v.message.contains("via Shard2::drain -> step -> fetch"),
        "{}",
        v.message
    );
}

#[test]
fn send_wire_fixture_fires() {
    let m = Manifest {
        wire_send_files: vec!["crates/x/src/send_wire.rs".into()],
        bounded_senders: vec!["mailbox".into()],
        ..Manifest::default()
    };
    let sf = fixture("x", "send_wire.rs", include_str!("fixtures/send_wire.rs"));
    let vs = analyze(&[sf], &m).violations;
    let hits = only(&vs, "bounded-send");
    // Only the bare `tx.send` fires; `mailbox.send` (registered bounded
    // receiver) and `try_send` stay clean.
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].line, 7);
    assert_eq!(hits[0].symbol, "dispatch");
}

#[test]
fn hotpath_format_fixture_fires() {
    let vs = run_fixture(
        "hotpath_format.rs",
        include_str!("fixtures/hotpath_format.rs"),
    );
    let hits = only(&vs, "hot-path-alloc");
    assert_eq!(hits.len(), 1, "{vs:?}");
    let v = hits[0];
    assert_eq!(v.line, 5);
    assert_eq!(v.symbol, "hot");
    assert!(v.message.contains("format!"), "{}", v.message);
}

#[test]
fn clock_fixture_fires() {
    let vs = run_fixture(
        "clock_instant.rs",
        include_str!("fixtures/clock_instant.rs"),
    );
    let hits = only(&vs, "virtual-clock");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].line, 5);
    assert_eq!(hits[0].symbol, "measure");
}

#[test]
fn panic_wire_fixture_fires() {
    let vs = run_fixture("panic_wire.rs", include_str!("fixtures/panic_wire.rs"));
    let hits = only(&vs, "panic-path");
    // One indexing violation (line 5) and one `.unwrap()` (line 6).
    assert_eq!(hits.len(), 2, "{vs:?}");
    assert_eq!(hits[0].line, 5);
    assert!(hits[0].message.contains("indexing"), "{}", hits[0].message);
    assert_eq!(hits[1].line, 6);
    assert!(hits[1].message.contains("unwrap"), "{}", hits[1].message);
    assert!(hits.iter().all(|v| v.symbol == "decode"));
}

#[test]
fn ordering_fixture_fires() {
    let vs = run_fixture(
        "ordering_relaxed.rs",
        include_str!("fixtures/ordering_relaxed.rs"),
    );
    let hits = only(&vs, "atomic-ordering");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].line, 5);
    assert_eq!(hits[0].symbol, "bump");
}

#[test]
fn span_cost_fixture_fires() {
    let vs = run_fixture(
        "span_cost_bare.rs",
        include_str!("fixtures/span_cost_bare.rs"),
    );
    let hits = only(&vs, "span-cost");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].line, 5);
    assert_eq!(hits[0].symbol, "record");
}

#[test]
fn corpus_baseline_round_trips() {
    // Freeze the whole corpus's violations, re-apply the parsed
    // baseline, and verify every one is absorbed (the gate would pass).
    let files = vec![
        fixture("x", "lock_cycle.rs", include_str!("fixtures/lock_cycle.rs")),
        fixture(
            "x",
            "hotpath_format.rs",
            include_str!("fixtures/hotpath_format.rs"),
        ),
        fixture(
            "x",
            "clock_instant.rs",
            include_str!("fixtures/clock_instant.rs"),
        ),
        fixture("x", "panic_wire.rs", include_str!("fixtures/panic_wire.rs")),
        fixture(
            "x",
            "ordering_relaxed.rs",
            include_str!("fixtures/ordering_relaxed.rs"),
        ),
        fixture(
            "x",
            "span_cost_bare.rs",
            include_str!("fixtures/span_cost_bare.rs"),
        ),
    ];
    let mut report = analyze(&files, &corpus_manifest());
    assert!(report.violations.len() >= 6, "{:?}", report.violations);
    let text = Baseline::render(&report.violations);
    let frozen = Baseline::parse(&text).expect("rendered baseline parses");
    assert_eq!(frozen.apply(&mut report.violations), 0);
    assert!(report.violations.iter().all(|v| v.baselined));
    // An extra instance of already-frozen debt still exceeds its count.
    // Default manifest: the corpus manifest's `hot` entry would be
    // unresolvable in a single-file re-analysis and add a violation.
    let mut more = analyze(
        &[fixture(
            "x",
            "clock_instant.rs",
            include_str!("fixtures/clock_instant.rs"),
        )],
        &Manifest::default(),
    );
    let doubled: Vec<Violation> = more
        .violations
        .iter()
        .cloned()
        .chain(more.violations.iter().cloned())
        .collect();
    more.violations = doubled;
    assert_eq!(frozen.apply(&mut more.violations), 1);
}
