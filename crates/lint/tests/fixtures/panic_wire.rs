//! Fixture: known-bad wire-path code — `.unwrap()` and slice indexing
//! in a file the manifest lists under `[wire-path]`.

fn decode(buf: &[u8]) -> u8 {
    let first = buf[0];
    let second = buf.get(1).copied().unwrap();
    first + second
}
