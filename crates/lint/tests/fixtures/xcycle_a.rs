//! Fixture (crate `a` half): cross-crate lock cycle. This crate locks
//! `alpha` and then calls into crate `b`, which locks `beta`; the other
//! half closes the loop. Neither crate's local graph is cyclic.

pub fn forward(s: &S) {
    let a = s.alpha.lock().unwrap();
    dcs_b::hold_beta(s);
    drop(a);
}

pub fn hold_alpha(s: &S) {
    let a = s.alpha.lock().unwrap();
    drop(a);
}
