//! Fixture: known-bad real-clock use outside the allowlist (line 5 is
//! asserted by the test).

fn measure() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
