//! Fixture: known-bad wire-path send — a bare `.send(…)` on a file the
//! manifest puts in `[wire-path] send_files` scope (line 7 is asserted
//! by the test). The bounded `mailbox.send` and the `try_send` below it
//! are the sanctioned shapes and must stay clean.

fn dispatch(tx: &Sender<Mail>, m: Mail) {
    tx.send(m);
}

fn dispatch_bounded(s: &Shard, m: Mail) {
    s.mailbox.send(m);
}

fn dispatch_try(tx: &Sender<Mail>, m: Mail) {
    tx.try_send(m);
}
