//! Fixture: known-bad two-lock cycle (`alpha` before `beta` in one
//! function, `beta` before `alpha` in another) for the lock-order lint.

fn forward(s: &S) {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    drop(b);
    drop(a);
}

fn backward(s: &S) {
    let b = s.beta.lock().unwrap();
    let a = s.alpha.lock().unwrap();
    drop(a);
    drop(b);
}
