//! Fixture: known-bad cost emission — `ledger().mm_op()` with no span
//! opened earlier in the function and no `// SPAN:` comment (line 5).

fn record() {
    dcs_telemetry::ledger().mm_op();
}
