//! Fixture: known-bad async drain loop — a manifest-registered
//! `[async-shard]` root that reaches a blocking `sleep` two call hops
//! down (the sleep site, line 18, is asserted by the test).

struct Shard2;

impl Shard2 {
    fn drain(&self) {
        step();
    }
}

fn step() {
    fetch();
}

fn fetch() {
    std::thread::sleep(core::time::Duration::from_millis(1));
}
