//! Fixture: known-bad relaxed atomic with no `// ORDERING:`
//! justification (line 5 is asserted by the test).

fn bump(x: &std::sync::atomic::AtomicU64) {
    x.fetch_add(1, Ordering::Relaxed);
}
