//! Fixture: known-bad hot path — a manifest-registered function that
//! allocates through `format!` (line 5 is asserted by the test).

fn hot(x: u64) -> usize {
    let s = format!("value {x}");
    s.len()
}
