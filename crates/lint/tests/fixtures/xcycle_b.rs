//! Fixture (crate `b` half): cross-crate lock cycle. This crate locks
//! `beta` and then calls back into crate `a`, which locks `alpha`.

pub fn hold_beta(s: &S) {
    let b = s.beta.lock().unwrap();
    drop(b);
}

pub fn backward(s: &S) {
    let b = s.beta.lock().unwrap();
    dcs_a::hold_alpha(s);
    drop(b);
}
