//! Effect inference: per-function summaries over the workspace call
//! graph, computed by bottom-up fixpoint over SCCs.
//!
//! Every function gets a summary in a small lattice: a bitset of
//! [`Effect`]s (allocates, may panic, blocks on I/O, reads the wall
//! clock, performs an unbounded channel send) plus the set of lock
//! labels it may acquire, directly or through anything it calls. The
//! intrinsic sites are extracted syntactically by the call-graph walk;
//! this module propagates them caller-ward: `summary(f) = intrinsics(f)
//! ∪ ⋃ summary(callee)` for every resolved callee. Strongly connected
//! components (recursion, mutual recursion) are iterated to a fixpoint —
//! the lattice is finite and the transfer function monotone, so the loop
//! terminates.
//!
//! Each inferred effect carries an [`Origin`]: the concrete site that
//! introduced it and the call chain it travelled, so a transitive
//! finding three crates away still names the line to fix. Origins are
//! first-wins: the report shows *one* witness per effect, not all of
//! them.
//!
//! Effects are waivable at their intrinsic site with
//! `// LINT: allow(effect-<name>): <reason>` (`effect-alloc`,
//! `effect-panic`, `effect-block`, `effect-clock`, `effect-send`,
//! `effect-lock`) — the site then contributes nothing to any summary.
//! This is deliberately stronger than a violation-level `LINT: allow`:
//! it declares the effect itself intended, for every caller.

use crate::callgraph::{CallGraph, NodeId};
use crate::manifest::{HotPath, Manifest};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Number of effect kinds (lock acquisition is tracked separately,
/// labelled).
pub const EFFECT_COUNT: usize = 5;

/// One effect kind in the summary lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Heap allocation (`Box::new`, `format!`, `.clone()`, …).
    Allocates = 0,
    /// `.unwrap()` / `.expect(…)` / panicking macro.
    MayPanic = 1,
    /// Blocks the calling thread (sleep, park, blocking recv, condvar
    /// wait, thread join, or a manifest-declared blocking function).
    BlocksOnIo = 2,
    /// Reads the real clock (`Instant` / `SystemTime`) outside the
    /// allowlisted clock boundaries.
    WallClock = 3,
    /// Channel `.send(…)` on a receiver not named bounded by policy.
    SendsUnbounded = 4,
}

impl Effect {
    /// All effects, in bit order.
    pub const ALL: [Effect; EFFECT_COUNT] = [
        Effect::Allocates,
        Effect::MayPanic,
        Effect::BlocksOnIo,
        Effect::WallClock,
        Effect::SendsUnbounded,
    ];

    /// Index into [`Summary::origins`].
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Bitmask bit.
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Display name (the `--effects` dump vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Effect::Allocates => "Allocates",
            Effect::MayPanic => "MayPanic",
            Effect::BlocksOnIo => "BlocksOnIo",
            Effect::WallClock => "WallClock",
            Effect::SendsUnbounded => "SendsUnbounded",
        }
    }

    /// Waiver key: `LINT: allow(<this>): reason` at the intrinsic site
    /// suppresses the effect.
    pub fn waiver(self) -> &'static str {
        match self {
            Effect::Allocates => "effect-alloc",
            Effect::MayPanic => "effect-panic",
            Effect::BlocksOnIo => "effect-block",
            Effect::WallClock => "effect-clock",
            Effect::SendsUnbounded => "effect-send",
        }
    }
}

/// One intrinsic effect site inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Which effect.
    pub effect: Effect,
    /// 1-based line of the site.
    pub line: u32,
    /// Human-readable description (`` `format!` (allocation) ``).
    pub what: String,
    /// Stable fingerprint fragment (no line numbers).
    pub detail: String,
}

/// Where an inferred effect (or lock label) came from.
#[derive(Debug, Clone)]
pub struct Origin {
    /// Workspace-relative file of the intrinsic site.
    pub file: String,
    /// 1-based line of the intrinsic site.
    pub line: u32,
    /// Function containing the site.
    pub symbol: String,
    /// Site description.
    pub what: String,
    /// Call chain (display names) from the summarized function down to
    /// the site's function; empty for intrinsic effects.
    pub chain: Vec<String>,
}

impl Origin {
    /// `` `what` at file:line (via a -> b) `` — the report fragment.
    pub fn describe(&self) -> String {
        let via = if self.chain.is_empty() {
            String::new()
        } else {
            format!(" via {}", self.chain.join(" -> "))
        };
        format!("{} at {}:{}{via}", self.what, self.file, self.line)
    }
}

/// One function's inferred summary.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Bitset of [`Effect`]s.
    pub effects: u8,
    /// One witness per set effect bit.
    pub origins: [Option<Origin>; EFFECT_COUNT],
    /// Lock labels (`crate:receiver`) this function may acquire,
    /// transitively, each with a witness.
    pub locks: BTreeMap<String, Origin>,
}

impl Summary {
    /// Does the summary carry `e`?
    pub fn has(&self, e: Effect) -> bool {
        self.effects & e.bit() != 0
    }

    /// The witness for `e`, when set.
    pub fn origin(&self, e: Effect) -> Option<&Origin> {
        self.origins[e.idx()].as_ref()
    }
}

/// The interprocedural analysis: call graph plus per-node summaries.
/// Built once per run; every lint's `finish` pass reads it.
pub struct Analysis<'a> {
    /// The parsed workspace, in [`CallGraph`] node `file`-index order.
    pub files: &'a [SourceFile],
    /// The policy manifest.
    pub manifest: &'a Manifest,
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Per-node summaries, indexed by [`NodeId`].
    pub summaries: Vec<Summary>,
}

impl<'a> Analysis<'a> {
    /// Build the graph and run the fixpoint.
    pub fn build(files: &'a [SourceFile], manifest: &'a Manifest) -> Analysis<'a> {
        let graph = CallGraph::build(files, manifest);
        let mut summaries: Vec<Summary> = Vec::with_capacity(graph.nodes.len());

        // Seed each node from its intrinsic sites.
        for node in &graph.nodes {
            let mut s = Summary::default();
            let file = files[node.file].rel.clone();
            for site in &node.intrinsics {
                s.effects |= site.effect.bit();
                let slot = &mut s.origins[site.effect.idx()];
                if slot.is_none() {
                    *slot = Some(Origin {
                        file: file.clone(),
                        line: site.line,
                        symbol: node.name.clone(),
                        what: site.what.clone(),
                        chain: Vec::new(),
                    });
                }
            }
            for ls in &node.locks {
                s.locks.entry(ls.label.clone()).or_insert_with(|| Origin {
                    file: file.clone(),
                    line: ls.line,
                    symbol: node.name.clone(),
                    what: format!("acquires `{}`", ls.label),
                    chain: Vec::new(),
                });
            }
            summaries.push(s);
        }

        // Bottom-up fixpoint: SCCs come callee-first out of Tarjan, so a
        // single pass suffices for the acyclic part; cyclic components
        // iterate until the (finite, monotone) lattice stops moving.
        for scc in &graph.sccs {
            loop {
                let mut changed = false;
                for &v in scc {
                    for ci in 0..graph.nodes[v].calls.len() {
                        for ti in 0..graph.nodes[v].calls[ci].targets.len() {
                            let t = graph.nodes[v].calls[ci].targets[ti];
                            if t == v {
                                continue;
                            }
                            let callee = summaries[t].clone();
                            let via = graph.nodes[t].display.clone();
                            changed |= merge(&mut summaries[v], &callee, &via);
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        Analysis {
            files,
            manifest,
            graph,
            summaries,
        }
    }

    /// Nodes a manifest `crate::function` reference names.
    pub fn resolve(&self, hp: &HotPath) -> &[NodeId] {
        self.graph.lookup(&hp.krate, &hp.func)
    }

    /// Is any workspace node in crate `krate`?
    pub fn has_crate(&self, krate: &str) -> bool {
        self.graph.nodes.iter().any(|n| n.krate == krate)
    }

    /// Nodes whose display name contains `pattern` (the `--effects`
    /// query).
    pub fn find(&self, pattern: &str) -> Vec<NodeId> {
        (0..self.graph.nodes.len())
            .filter(|&i| self.graph.nodes[i].display.contains(pattern))
            .collect()
    }

    /// Render one node's summary for the `--effects` dump.
    pub fn describe(&self, id: NodeId) -> String {
        let node = &self.graph.nodes[id];
        let s = &self.summaries[id];
        let mut out = format!(
            "{}  ({}:{})\n",
            node.display, self.files[node.file].rel, node.line
        );
        if s.effects == 0 {
            out.push_str("  effects: (none)\n");
        } else {
            let names: Vec<&str> = Effect::ALL
                .iter()
                .filter(|e| s.has(**e))
                .map(|e| e.label())
                .collect();
            out.push_str(&format!("  effects: {}\n", names.join(" | ")));
            for e in Effect::ALL {
                if let Some(o) = s.origin(e) {
                    out.push_str(&format!("    {}: {}\n", e.label(), o.describe()));
                }
            }
        }
        if s.locks.is_empty() {
            out.push_str("  locks: (none)\n");
        } else {
            out.push_str("  locks:\n");
            for (label, o) in &s.locks {
                out.push_str(&format!("    {label}: {}\n", o.describe()));
            }
        }
        out
    }
}

/// Merge `callee`'s summary into `caller` through the call to `via`;
/// true when anything changed.
fn merge(caller: &mut Summary, callee: &Summary, via: &str) -> bool {
    let mut changed = false;
    let fresh = callee.effects & !caller.effects;
    if fresh != 0 {
        caller.effects |= fresh;
        changed = true;
        for e in Effect::ALL {
            if fresh & e.bit() != 0 {
                if let Some(o) = callee.origin(e) {
                    let mut chain = vec![via.to_string()];
                    chain.extend(o.chain.iter().cloned());
                    caller.origins[e.idx()] = Some(Origin { chain, ..o.clone() });
                }
            }
        }
    }
    for (label, o) in &callee.locks {
        if !caller.locks.contains_key(label) {
            let mut chain = vec![via.to_string()];
            chain.extend(o.chain.iter().cloned());
            caller
                .locks
                .insert(label.clone(), Origin { chain, ..o.clone() });
            changed = true;
        }
    }
    changed
}

/// Is the intrinsic site at `line` (whose statement starts at
/// `stmt_first`) waived for `name`? Same placement rules as violation
/// waivers: a trailing comment on the site line, or anywhere in the
/// contiguous comment block above the statement. The reason is
/// mandatory.
pub(crate) fn site_waived(sf: &SourceFile, line: u32, stmt_first: u32, name: &str) -> bool {
    if crate::waiver_matches(sf.line_text(line), name) {
        return true;
    }
    let mut l = stmt_first.saturating_sub(1);
    while l >= 1 {
        let text = sf.line_text(l);
        if !text.trim_start().starts_with("//") {
            break;
        }
        if crate::waiver_matches(text, name) {
            return true;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("m.rs"), "crates/x/src/m.rs".into(), "x", src)
    }

    fn node_id(a: &Analysis, name: &str) -> NodeId {
        a.find(name)
            .into_iter()
            .find(|&i| a.graph.nodes[i].name == name)
            .unwrap_or_else(|| panic!("no node `{name}`"))
    }

    #[test]
    fn intrinsic_effects_are_seeded() {
        let files = [file("fn f() { let s = format!(\"{}\", 1); }")];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let f = node_id(&a, "f");
        assert!(a.summaries[f].has(Effect::Allocates));
        assert!(!a.summaries[f].has(Effect::MayPanic));
    }

    #[test]
    fn effects_propagate_through_calls_with_chain() {
        let files = [file(
            "fn top() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf(x: Option<u32>) { x.unwrap(); }",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let top = node_id(&a, "top");
        let s = &a.summaries[top];
        assert!(s.has(Effect::MayPanic));
        let o = s.origin(Effect::MayPanic).unwrap();
        assert_eq!(o.symbol, "leaf");
        assert_eq!(o.chain, vec!["dcs-x::mid", "dcs-x::leaf"]);
    }

    #[test]
    fn mutual_recursion_converges() {
        // even/odd call each other; odd sleeps. Both summaries must end
        // up BlocksOnIo and the fixpoint must terminate.
        let files = [file(
            "fn even(n: u32) { if n > 0 { odd(n - 1); } }\n\
             fn odd(n: u32) { std::thread::sleep(D); if n > 0 { even(n - 1); } }\n\
             fn top() { even(4); }",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        for name in ["even", "odd", "top"] {
            let id = node_id(&a, name);
            assert!(
                a.summaries[id].has(Effect::BlocksOnIo),
                "{name} should block"
            );
        }
        // even/odd form one SCC.
        let e = node_id(&a, "even");
        let o = node_id(&a, "odd");
        assert_eq!(a.graph.scc_of[e], a.graph.scc_of[o]);
        let t = node_id(&a, "top");
        assert_ne!(a.graph.scc_of[t], a.graph.scc_of[e]);
    }

    #[test]
    fn self_recursion_converges() {
        let files = [file(
            "fn f(n: u32) { if n > 0 { f(n - 1); } let b = Box::new(n); }",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let f = node_id(&a, "f");
        assert!(a.summaries[f].has(Effect::Allocates));
    }

    #[test]
    fn effect_waiver_suppresses_the_site() {
        let files = [file(
            "fn f() {\n\
             // LINT: allow(effect-alloc): startup-only buffer.\n\
             let b = Box::new(1);\n\
             }\n\
             fn g() { f(); }",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        assert!(!a.summaries[node_id(&a, "f")].has(Effect::Allocates));
        assert!(!a.summaries[node_id(&a, "g")].has(Effect::Allocates));
    }

    #[test]
    fn effect_waiver_requires_reason() {
        let files = [file(
            "fn f() { let b = Box::new(1); // LINT: allow(effect-alloc)\n}",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        assert!(a.summaries[node_id(&a, "f")].has(Effect::Allocates));
    }

    #[test]
    fn lock_labels_propagate() {
        let files = [file(
            "fn inner(s: &S) { let g = s.table.lock(); }\n\
             fn outer(s: &S) { inner(s); }",
        )];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let outer = node_id(&a, "outer");
        assert!(a.summaries[outer].locks.contains_key("x:s.table"));
        let o = &a.summaries[outer].locks["x:s.table"];
        assert_eq!(o.chain, vec!["dcs-x::inner"]);
    }

    #[test]
    fn declared_blocking_seeds_the_summary() {
        let files = [file("fn dev_read() { /* polls a register */ }")];
        let m = Manifest::parse("[effects]\nblocking = [\"dcs-x::dev_read\"]").unwrap();
        let a = Analysis::build(&files, &m);
        let id = node_id(&a, "dev_read");
        assert!(a.summaries[id].has(Effect::BlocksOnIo));
        assert!(a.summaries[id]
            .origin(Effect::BlocksOnIo)
            .unwrap()
            .what
            .contains("declared"));
    }

    #[test]
    fn describe_renders_effects_and_locks() {
        let files = [file("fn f(s: &S) { let g = s.m.lock(); let b = vec![1]; }")];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let text = a.describe(node_id(&a, "f"));
        assert!(text.contains("dcs-x::f"), "{text}");
        assert!(text.contains("Allocates"), "{text}");
        assert!(text.contains("x:s.m"), "{text}");
    }
}
