//! `lint-hotpaths.toml`: the analyzer's workspace manifest.
//!
//! A deliberately small TOML subset (tables, string values, string
//! arrays, comments) parsed by hand — the workspace builds
//! offline, so no `toml` crate. The manifest carries everything that is
//! *policy* rather than *code*: which functions are hot paths, which
//! files may touch the real clock, which modules must be panic-free,
//! and which crates owe `// ORDERING:` justifications.
//!
//! ```toml
//! [hotpath]
//! functions = ["dcs-server::Shard::reply_read"]
//!
//! [clock]
//! allow = ["crates/flashsim/", "crates/telemetry/src/clock.rs"]
//!
//! [wire-path]
//! files = ["crates/server/src/protocol.rs"]
//! send_files = ["crates/server/src/server.rs"]
//! bounded_senders = ["mailbox", "outbox"]
//!
//! [ordering]
//! crates = ["ebr", "bwtree", "llama"]
//!
//! [dispatch]
//! kv_get = ["dcs-core::CachingStore::kv_get", "dcs-core::LsmBackend::kv_get"]
//!
//! [async-shard]
//! roots = ["dcs-server::Shard::run_async"]
//!
//! [effects]
//! blocking = ["dcs-flashsim::FlashDevice::read"]
//! ```
//!
//! `[dispatch]` is the interprocedural engine's answer to dynamic
//! dispatch: a bare method call (`backend.kv_get(…)`) cannot be resolved
//! by type, so the manifest names every implementation the call may
//! reach and the call graph takes their union. `[async-shard] roots`
//! name the drain loops that must stay non-blocking, and `[effects]
//! blocking` declares functions that block by contract even when their
//! bodies do not show it syntactically.

use std::collections::BTreeMap;
use std::path::Path;

/// A hot-path root: `crate::Type::method` or `crate::function`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPath {
    /// Crate directory name (with or without the `dcs-` prefix).
    pub krate: String,
    /// Function name as the parser qualifies it (`Type::method` or bare).
    pub func: String,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Functions whose reachable code must stay allocation/lock-free.
    pub hotpaths: Vec<HotPath>,
    /// Path prefixes (workspace-relative) allowed to use the real clock.
    pub clock_allow: Vec<String>,
    /// Wire-path files that must be panic-free.
    pub wire_files: Vec<String>,
    /// Crates whose `Ordering::Relaxed` uses need `// ORDERING:`.
    pub ordering_crates: Vec<String>,
    /// Dynamic-dispatch policy: bare method name → every workspace
    /// implementation a call through it may reach (the call graph takes
    /// the union).
    pub dispatch: BTreeMap<String, Vec<HotPath>>,
    /// Roots of async drain loops that must stay `BlocksOnIo`-free.
    pub async_roots: Vec<HotPath>,
    /// Functions that block by contract even when their bodies do not
    /// show it syntactically (e.g. a blocking device-read wrapper).
    pub declared_blocking: Vec<HotPath>,
    /// Files whose channel sends must be bounded; empty means "same as
    /// `wire_files`".
    pub wire_send_files: Vec<String>,
    /// Receiver field names (last path segment) that are known bounded
    /// mailboxes: `.send()` through them answers BUSY, never blocks.
    pub bounded_senders: Vec<String>,
}

impl Manifest {
    /// The bounded-send lint's file scope (`send_files`, defaulting to
    /// the panic-free wire files).
    pub fn send_scope(&self) -> &[String] {
        if self.wire_send_files.is_empty() {
            &self.wire_files
        } else {
            &self.wire_send_files
        }
    }
}

/// Parse one `crate::function` reference (`dcs-` prefix optional).
fn parse_fn_ref(s: &str, what: &str) -> Result<HotPath, String> {
    let (krate, func) = s
        .split_once("::")
        .ok_or_else(|| format!("{what} entry `{s}` is not `crate::function`"))?;
    Ok(HotPath {
        krate: krate.trim_start_matches("dcs-").to_string(),
        func: func.to_string(),
    })
}

impl Manifest {
    /// Parse a manifest file.
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parse manifest text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let tables = parse_toml_subset(text)?;
        let mut m = Manifest::default();
        if let Some(t) = tables.get("hotpath") {
            for f in t.get_array("functions") {
                m.hotpaths.push(parse_fn_ref(&f, "hotpath")?);
            }
        }
        if let Some(t) = tables.get("clock") {
            m.clock_allow = t.get_array("allow");
        }
        if let Some(t) = tables.get("wire-path") {
            m.wire_files = t.get_array("files");
            m.wire_send_files = t.get_array("send_files");
            m.bounded_senders = t.get_array("bounded_senders");
        }
        if let Some(t) = tables.get("dispatch") {
            for (method, _) in t.values.iter() {
                let mut targets = Vec::new();
                for s in t.get_array(method) {
                    targets.push(parse_fn_ref(&s, "dispatch")?);
                }
                m.dispatch.insert(method.clone(), targets);
            }
        }
        if let Some(t) = tables.get("async-shard") {
            for f in t.get_array("roots") {
                m.async_roots.push(parse_fn_ref(&f, "async-shard")?);
            }
        }
        if let Some(t) = tables.get("effects") {
            for f in t.get_array("blocking") {
                m.declared_blocking.push(parse_fn_ref(&f, "effects")?);
            }
        }
        if let Some(t) = tables.get("ordering") {
            m.ordering_crates = t
                .get_array("crates")
                .into_iter()
                .map(|c| c.trim_start_matches("dcs-").to_string())
                .collect();
        }
        Ok(m)
    }
}

/// One `[table]`'s key/value pairs.
#[derive(Debug, Default)]
struct TomlTable {
    values: BTreeMap<String, TomlValue>,
}

#[derive(Debug)]
enum TomlValue {
    Str(String),
    Array(Vec<String>),
}

impl TomlTable {
    fn get_array(&self, key: &str) -> Vec<String> {
        match self.values.get(key) {
            Some(TomlValue::Array(v)) => v.clone(),
            Some(TomlValue::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

/// Parse `[table]` headers and `key = value` lines. Arrays may span
/// multiple lines. Unknown syntax is an error: the manifest is policy
/// and silent misparses would silently unlint.
fn parse_toml_subset(text: &str) -> Result<BTreeMap<String, TomlTable>, String> {
    let mut tables: BTreeMap<String, TomlTable> = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            current = name.trim().trim_matches('[').trim_matches(']').to_string();
            tables.entry(current.clone()).or_default();
            continue;
        }
        let (key, mut val) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("manifest line {}: expected `key = value`", ln + 1))?;
        // Multi-line array: keep consuming lines until the bracket closes.
        if val.starts_with('[') && !balanced(&val) {
            for (_, cont) in lines.by_ref() {
                val.push(' ');
                val.push_str(strip_comment(cont).trim());
                if balanced(&val) {
                    break;
                }
            }
        }
        let value = parse_value(&val).map_err(|e| format!("manifest line {}: {e}", ln + 1))?;
        tables
            .entry(current.clone())
            .or_default()
            .values
            .insert(key, value);
    }
    Ok(tables)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(val: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in val.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(val: &str) -> Result<TomlValue, String> {
    let v = val.trim();
    if let Some(s) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(TomlValue::Str(s.to_string()));
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_commas(inner) {
            let p = part.trim();
            if p.is_empty() {
                continue;
            }
            match parse_value(p)? {
                TomlValue::Str(s) => items.push(s),
                _ => return Err(format!("array item `{p}` is not a string")),
            }
        }
        return Ok(TomlValue::Array(items));
    }
    Err(format!("unsupported value `{v}`"))
}

fn split_top_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let m = Manifest::parse(
            r#"
# policy file
[hotpath]
functions = [
    "dcs-server::Shard::reply_read",  # the request loop
    "dcs-telemetry::Counter::add",
]

[clock]
allow = ["crates/flashsim/", "crates/telemetry/src/clock.rs"]

[wire-path]
files = ["crates/server/src/protocol.rs"]

[ordering]
crates = ["dcs-ebr", "bwtree"]
"#,
        )
        .unwrap();
        assert_eq!(
            m.hotpaths,
            vec![
                HotPath {
                    krate: "server".into(),
                    func: "Shard::reply_read".into()
                },
                HotPath {
                    krate: "telemetry".into(),
                    func: "Counter::add".into()
                },
            ]
        );
        assert_eq!(m.clock_allow.len(), 2);
        assert_eq!(m.wire_files, vec!["crates/server/src/protocol.rs"]);
        assert_eq!(m.ordering_crates, vec!["ebr", "bwtree"]);
    }

    #[test]
    fn parses_effect_policy_sections() {
        let m = Manifest::parse(
            r#"
[wire-path]
files = ["crates/server/src/protocol.rs"]
send_files = ["crates/server/src/server.rs", "crates/server/src/shard.rs"]
bounded_senders = ["mailbox", "outbox"]

[dispatch]
kv_get = ["dcs-core::CachingStore::kv_get", "dcs-core::LsmBackend::kv_get"]
deliver = ["dcs-server::ConnState::deliver"]

[async-shard]
roots = ["dcs-server::Shard::run_async"]

[effects]
blocking = ["dcs-flashsim::FlashDevice::read"]
"#,
        )
        .unwrap();
        assert_eq!(m.wire_send_files.len(), 2);
        assert_eq!(m.send_scope(), &m.wire_send_files[..]);
        assert_eq!(m.bounded_senders, vec!["mailbox", "outbox"]);
        assert_eq!(m.dispatch.len(), 2);
        assert_eq!(
            m.dispatch["kv_get"],
            vec![
                HotPath {
                    krate: "core".into(),
                    func: "CachingStore::kv_get".into()
                },
                HotPath {
                    krate: "core".into(),
                    func: "LsmBackend::kv_get".into()
                },
            ]
        );
        assert_eq!(
            m.async_roots,
            vec![HotPath {
                krate: "server".into(),
                func: "Shard::run_async".into()
            }]
        );
        assert_eq!(
            m.declared_blocking,
            vec![HotPath {
                krate: "flashsim".into(),
                func: "FlashDevice::read".into()
            }]
        );
    }

    #[test]
    fn send_scope_defaults_to_wire_files() {
        let m = Manifest::parse("[wire-path]\nfiles = [\"crates/x/src/a.rs\"]").unwrap();
        assert_eq!(m.send_scope(), &m.wire_files[..]);
    }

    #[test]
    fn bad_dispatch_entry_is_an_error() {
        assert!(Manifest::parse("[dispatch]\nkv_get = [\"bare_name\"]").is_err());
    }

    #[test]
    fn bad_hotpath_entry_is_an_error() {
        assert!(Manifest::parse("[hotpath]\nfunctions = [\"no_crate_sep\"]").is_err());
    }

    #[test]
    fn bad_syntax_is_an_error() {
        assert!(Manifest::parse("[clock]\nallow just/a/path").is_err());
    }

    #[test]
    fn empty_manifest_is_fine() {
        let m = Manifest::parse("").unwrap();
        assert!(m.hotpaths.is_empty());
        assert!(m.clock_allow.is_empty());
    }
}
