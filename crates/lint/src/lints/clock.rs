//! Virtual-clock discipline: `std::time::{Instant, SystemTime}` are
//! forbidden outside the manifest's `[clock] allow` prefixes.
//!
//! The simulator's whole premise is that time is virtual — device
//! service, rent, and span timestamps all advance on the flashsim
//! clock. A stray `Instant::now()` in simulated-clock code measures
//! wall time in a world where the wall clock is meaningless, silently
//! breaking determinism. The allowlist names the code that *is* the
//! boundary: the flashsim device (wall-latency injection is its job),
//! the telemetry monotonic fallback, and the measurement harnesses that
//! time real hardware on purpose. Binary targets (`src/bin/**`) are
//! exempt wholesale — drivers measure wall time by definition.
//!
//! `finish` adds the cross-crate view: a call from simulated-clock code
//! into *another crate's* function whose inferred summary carries
//! `WallClock` is reported at the call site. Allowlisted files don't
//! seed the effect (their clock use is the sanctioned boundary), so
//! this only fires when unsanctioned wall-clock code is reachable from
//! a crate that can't see it.

use super::{Lint, Violation};
use crate::effects::{Analysis, Effect};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The clock-discipline lint.
pub struct ClockDiscipline;

impl Lint for ClockDiscipline {
    fn name(&self) -> &'static str {
        "virtual-clock"
    }

    fn description(&self) -> &'static str {
        "std::time::{Instant, SystemTime} only in allowlisted clock-boundary code"
    }

    fn check_file(&mut self, sf: &SourceFile, m: &Manifest, out: &mut Vec<Violation>) {
        if sf.is_bin {
            return;
        }
        if m.clock_allow.iter().any(|p| sf.rel.starts_with(p.as_str())) {
            return;
        }
        for (i, t) in sf.tokens.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            if id != "Instant" && id != "SystemTime" {
                continue;
            }
            if sf.in_test(i) || sf.in_attr(i) {
                continue;
            }
            let symbol = sf.context_name(i);
            out.push(Violation::new(
                self.name(),
                sf,
                t.line,
                symbol,
                format!(
                    "`{id}` used outside the clock allowlist — route through the \
                     shared virtual clock (`dcs_telemetry::now_nanos`) or add an \
                     `[clock] allow` entry with a justification"
                ),
                id,
            ));
        }
    }

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (id, node) in a.graph.nodes.iter().enumerate() {
            let sf = &a.files[node.file];
            if sf.is_bin
                || a.manifest
                    .clock_allow
                    .iter()
                    .any(|p| sf.rel.starts_with(p.as_str()))
            {
                continue;
            }
            for call in &node.calls {
                for &t in &call.targets {
                    let target = &a.graph.nodes[t];
                    if target.krate == node.krate || !a.summaries[t].has(Effect::WallClock) {
                        continue;
                    }
                    if !seen.insert((id, t)) {
                        continue;
                    }
                    let origin = a.summaries[t]
                        .origin(Effect::WallClock)
                        .map(|o| format!(" — {}", o.describe()))
                        .unwrap_or_default();
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        call.line,
                        node.name.clone(),
                        format!(
                            "simulated-clock code calls `{}`, which reads the wall \
                             clock{origin}",
                            target.display
                        ),
                        &format!("clock-via:{}", target.display),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str, allow: &[&str]) -> Vec<Violation> {
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), rel.into(), "x", src);
        let m = Manifest {
            clock_allow: allow.iter().map(|s| (*s).to_string()).collect(),
            ..Manifest::default()
        };
        let mut out = Vec::new();
        ClockDiscipline.check_file(&sf, &m, &mut out);
        out
    }

    #[test]
    fn instant_outside_allowlist_fires() {
        let out = run(
            "crates/x/src/m.rs",
            "fn f() { let t = std::time::Instant::now(); }",
            &[],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].symbol, "f");
    }

    #[test]
    fn allowlisted_prefix_is_clean() {
        let out = run(
            "crates/flashsim/src/device.rs",
            "fn f() { let t = Instant::now(); }",
            &["crates/flashsim/"],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run(
            "crates/x/src/m.rs",
            "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }",
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bins_are_exempt() {
        let out = run(
            "crates/x/src/bin/loadgen.rs",
            "fn main() { let t = Instant::now(); }",
            &[],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn string_mention_is_not_a_use() {
        let out = run(
            "crates/x/src/m.rs",
            r#"fn f() { log("Instant::now"); }"#,
            &[],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn system_time_fires_too() {
        let out = run(
            "crates/x/src/m.rs",
            "use std::time::SystemTime;\nfn f() -> SystemTime { SystemTime::now() }",
            &[],
        );
        assert_eq!(out.len(), 3); // use + return type + call
    }

    #[test]
    fn cross_crate_wall_clock_call_fires() {
        let files = [
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/a/src/m.rs".into(),
                "a",
                "pub fn tick() { dcs_b::stamp(); }",
            ),
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/b/src/m.rs".into(),
                "b",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
            ),
        ];
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        ClockDiscipline.finish(&a, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/a/src/m.rs");
        assert!(out[0].message.contains("dcs-b::stamp"));
        assert!(out[0].message.contains("wall"));
    }

    #[test]
    fn allowlisted_origin_does_not_propagate() {
        // The flashsim-style boundary crate is allowed to read the wall
        // clock; callers of it must not be flagged.
        let files = [
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/a/src/m.rs".into(),
                "a",
                "pub fn tick() { dcs_b::stamp(); }",
            ),
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/b/src/m.rs".into(),
                "b",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
            ),
        ];
        let m = Manifest {
            clock_allow: vec!["crates/b/".into()],
            ..Manifest::default()
        };
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        ClockDiscipline.finish(&a, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
