//! Virtual-clock discipline: `std::time::{Instant, SystemTime}` are
//! forbidden outside the manifest's `[clock] allow` prefixes.
//!
//! The simulator's whole premise is that time is virtual — device
//! service, rent, and span timestamps all advance on the flashsim
//! clock. A stray `Instant::now()` in simulated-clock code measures
//! wall time in a world where the wall clock is meaningless, silently
//! breaking determinism. The allowlist names the code that *is* the
//! boundary: the flashsim device (wall-latency injection is its job),
//! the telemetry monotonic fallback, and the measurement harnesses that
//! time real hardware on purpose. Binary targets (`src/bin/**`) are
//! exempt wholesale — drivers measure wall time by definition.

use super::{Lint, Violation};
use crate::manifest::Manifest;
use crate::source::SourceFile;

/// The clock-discipline lint.
pub struct ClockDiscipline;

impl Lint for ClockDiscipline {
    fn name(&self) -> &'static str {
        "virtual-clock"
    }

    fn description(&self) -> &'static str {
        "std::time::{Instant, SystemTime} only in allowlisted clock-boundary code"
    }

    fn check_file(&mut self, sf: &SourceFile, m: &Manifest, out: &mut Vec<Violation>) {
        if sf.is_bin {
            return;
        }
        if m.clock_allow.iter().any(|p| sf.rel.starts_with(p.as_str())) {
            return;
        }
        for (i, t) in sf.tokens.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            if id != "Instant" && id != "SystemTime" {
                continue;
            }
            if sf.in_test(i) || sf.in_attr(i) {
                continue;
            }
            let symbol = sf.context_name(i);
            out.push(Violation::new(
                self.name(),
                sf,
                t.line,
                symbol,
                format!(
                    "`{id}` used outside the clock allowlist — route through the \
                     shared virtual clock (`dcs_telemetry::now_nanos`) or add an \
                     `[clock] allow` entry with a justification"
                ),
                id,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str, allow: &[&str]) -> Vec<Violation> {
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), rel.into(), "x", src);
        let m = Manifest {
            clock_allow: allow.iter().map(|s| (*s).to_string()).collect(),
            ..Manifest::default()
        };
        let mut out = Vec::new();
        ClockDiscipline.check_file(&sf, &m, &mut out);
        out
    }

    #[test]
    fn instant_outside_allowlist_fires() {
        let out = run(
            "crates/x/src/m.rs",
            "fn f() { let t = std::time::Instant::now(); }",
            &[],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].symbol, "f");
    }

    #[test]
    fn allowlisted_prefix_is_clean() {
        let out = run(
            "crates/flashsim/src/device.rs",
            "fn f() { let t = Instant::now(); }",
            &["crates/flashsim/"],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run(
            "crates/x/src/m.rs",
            "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }",
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bins_are_exempt() {
        let out = run(
            "crates/x/src/bin/loadgen.rs",
            "fn main() { let t = Instant::now(); }",
            &[],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn string_mention_is_not_a_use() {
        let out = run(
            "crates/x/src/m.rs",
            r#"fn f() { log("Instant::now"); }"#,
            &[],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn system_time_fires_too() {
        let out = run(
            "crates/x/src/m.rs",
            "use std::time::SystemTime;\nfn f() -> SystemTime { SystemTime::now() }",
            &[],
        );
        assert_eq!(out.len(), 3); // use + return type + call
    }
}
