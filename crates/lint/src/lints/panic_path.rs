//! Panic-freedom on the wire path: no `unwrap`/`expect`, no panicking
//! macros, no slice indexing in the manifest's `[wire-path] files`.
//!
//! A panic in request decode or shard dispatch kills the shard thread —
//! the server's unit of capacity — on input an adversarial client
//! controls. Those modules must answer with a typed protocol error
//! instead. The lint bans the panicking surface syntactically:
//! `.unwrap()` / `.expect(…)`, `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!`, and index expressions `x[…]` (slice-pattern and
//! `.get(…)` alternatives exist for every one of them). `assert!` (and
//! `debug_assert!`) stay allowed: they state invariants about *our*
//! state, not about peer input, and removing them would hide bugs
//! rather than harden the path.
//!
//! On top of the direct scan, `finish` walks the call graph: a wire-file
//! function calling *out* of the wire files into something whose
//! inferred summary carries `MayPanic` is reported at the call site,
//! with the origin chain down to the intrinsic panic. Indexing stays a
//! direct-only check — transitively every collection touch indexes
//! somewhere, and the wire contract is about the code peer input flows
//! through first.

use super::{is_keyword, Lint, Violation};
use crate::effects::{Analysis, Effect};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The wire-path panic-freedom lint.
pub struct PanicFree;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Lint for PanicFree {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn description(&self) -> &'static str {
        "wire-path modules must not unwrap/expect/panic!/index"
    }

    fn check_file(&mut self, sf: &SourceFile, m: &Manifest, out: &mut Vec<Violation>) {
        if !m.wire_files.contains(&sf.rel) {
            return;
        }
        let toks = &sf.tokens;
        for i in 0..toks.len() {
            if toks[i].is_comment() || sf.in_attr(i) || sf.in_test(i) {
                continue;
            }
            let line = toks[i].line;
            if let Some(id) = toks[i].ident() {
                let next_is = |c: char| sf.next_code(i + 1).is_some_and(|n| toks[n].is_punct(c));
                match id {
                    "unwrap" | "expect" | "unwrap_unchecked" => {
                        let prev_dot = sf.prev_code(i).is_some_and(|p| toks[p].is_punct('.'));
                        if prev_dot && next_is('(') {
                            out.push(Violation::new(
                                self.name(),
                                sf,
                                line,
                                sf.context_name(i),
                                format!(
                                    "`.{id}()` on the wire path — return a typed \
                                     protocol error instead"
                                ),
                                &format!(".{id}()"),
                            ));
                        }
                    }
                    _ if PANIC_MACROS.contains(&id) && next_is('!') => {
                        out.push(Violation::new(
                            self.name(),
                            sf,
                            line,
                            sf.context_name(i),
                            format!("`{id}!` on the wire path"),
                            &format!("{id}!"),
                        ));
                    }
                    _ => {}
                }
            } else if toks[i].is_punct('[') {
                // Index expression: `[` directly after an expression tail
                // (identifier that is not a keyword, `)`, or `]`).
                let Some(p) = sf.prev_code(i) else { continue };
                let is_index = match toks[p].ident() {
                    Some(id) => !is_keyword(id),
                    None => toks[p].is_punct(')') || toks[p].is_punct(']'),
                };
                if is_index {
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        line,
                        sf.context_name(i),
                        "slice/array indexing on the wire path — use `.get(…)` or a \
                         slice pattern"
                            .to_string(),
                        "index[]",
                    ));
                }
            }
        }
    }

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        // Transitive pass: calls leaving the wire files into MayPanic
        // callees. One finding per (caller, callee) pair — each call
        // line repeating it would drown the report.
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (id, node) in a.graph.nodes.iter().enumerate() {
            let sf = &a.files[node.file];
            if !a.manifest.wire_files.contains(&sf.rel) {
                continue;
            }
            for call in &node.calls {
                for &t in &call.targets {
                    let target = &a.graph.nodes[t];
                    if a.manifest.wire_files.contains(&a.files[target.file].rel) {
                        continue; // the direct scan covers wire-internal code
                    }
                    if !a.summaries[t].has(Effect::MayPanic) {
                        continue;
                    }
                    if !seen.insert((id, t)) {
                        continue;
                    }
                    let origin = a.summaries[t]
                        .origin(Effect::MayPanic)
                        .map(|o| format!(" — {}", o.describe()))
                        .unwrap_or_default();
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        call.line,
                        node.name.clone(),
                        format!(
                            "wire path calls `{}`, which may panic{origin}",
                            target.display
                        ),
                        &format!("panics:{}", target.display),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let rel = "crates/server/src/protocol.rs";
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), rel.into(), "server", src);
        let m = Manifest {
            wire_files: vec![rel.to_string()],
            ..Manifest::default()
        };
        let mut out = Vec::new();
        PanicFree.check_file(&sf, &m, &mut out);
        out
    }

    #[test]
    fn unwrap_expect_panic_fire() {
        let out = run("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
             fn h() { panic!(\"boom\"); }\n\
             fn u() { unreachable!(); }");
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn indexing_fires_but_patterns_do_not() {
        let out = run("fn f(buf: &[u8]) -> u8 { buf[4] }\n\
             fn ok(buf: &[u8]) { if let [a, b, ..] = buf { let _ = (a, b); } }\n\
             fn arr() -> [u8; 4] { [0u8; 4] }\n\
             fn get(buf: &[u8]) -> Option<&u8> { buf.get(4) }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].symbol, "f");
    }

    #[test]
    fn range_indexing_fires() {
        let out = run("fn f(buf: &[u8]) -> &[u8] { &buf[0..4] }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn asserts_are_allowed() {
        let out = run("fn f(n: usize) { assert!(n < 10); debug_assert!(n > 0); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn files_not_in_scope_are_skipped() {
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/server/src/other.rs".into(),
            "server",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        let m = Manifest {
            wire_files: vec!["crates/server/src/protocol.rs".to_string()],
            ..Manifest::default()
        };
        let mut out = Vec::new();
        PanicFree.check_file(&sf, &m, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_mod_within_wire_file_is_exempt() {
        let out = run(
            "fn clean() {}\n#[cfg(test)]\nmod tests { #[test] fn t() { None::<u32>.unwrap(); } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    fn run_transitive(srcs: &[(&str, &str, &str)], wire: &str) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(krate, name, src)| {
                SourceFile::from_text(
                    PathBuf::from(name),
                    format!("crates/{krate}/src/{name}"),
                    krate,
                    src,
                )
            })
            .collect();
        let m = Manifest {
            wire_files: vec![wire.to_string()],
            ..Manifest::default()
        };
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        PanicFree.finish(&a, &mut out);
        out
    }

    #[test]
    fn transitive_panic_across_crates_fires() {
        // The unwrap is two hops and one crate away from the wire file;
        // the finding lands on the wire-side call with the origin chain.
        let out = run_transitive(
            &[
                (
                    "server",
                    "protocol.rs",
                    "pub fn decode(buf: &[u8]) { dcs_util::parse_len(buf); }",
                ),
                (
                    "util",
                    "m.rs",
                    "pub fn parse_len(buf: &[u8]) { helper(buf); }\n\
                     fn helper(buf: &[u8]) { let n = buf.first().unwrap(); }",
                ),
            ],
            "crates/server/src/protocol.rs",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/server/src/protocol.rs");
        assert!(out[0].message.contains("may panic"));
        assert!(out[0].message.contains("dcs-util::parse_len"));
        assert!(out[0].message.contains("via"), "{}", out[0].message);
    }

    #[test]
    fn transitive_pass_skips_panic_free_callees() {
        let out = run_transitive(
            &[
                (
                    "server",
                    "protocol.rs",
                    "pub fn decode(buf: &[u8]) { dcs_util::parse_len(buf); }",
                ),
                (
                    "util",
                    "m.rs",
                    "pub fn parse_len(buf: &[u8]) -> Option<&u8> { buf.first() }",
                ),
            ],
            "crates/server/src/protocol.rs",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
