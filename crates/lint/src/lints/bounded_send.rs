//! Bounded-send discipline: wire-path channel sends must be bounded.
//!
//! The server's overload story is `BUSY`, never block and never buffer
//! without bound — the mailbox is a bounded MPSC whose `try_send`
//! refuses instead of queueing. A bare `.send(…)` on the wire path
//! either blocks the shard thread (bounded blocking channel) or grows
//! an unbounded queue (the classic tail-latency bomb); both break the
//! paper's cost accounting. The manifest's `[wire-path]
//! bounded_senders` lists the receiver names whose `send` *is* the
//! sanctioned bounded call (`mailbox`, `outbox`); everything else
//! fires.
//!
//! Scope is the manifest's `[wire-path] send_files` (defaulting to the
//! panic-path `files` list). The direct scan catches sends written in
//! those files; `finish`'s transitive pass catches a wire function
//! calling out to a helper that does the unbounded send elsewhere.

use super::{Lint, Violation};
use crate::effects::{Analysis, Effect};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The bounded-send lint.
pub struct BoundedSend;

impl Lint for BoundedSend {
    fn name(&self) -> &'static str {
        "bounded-send"
    }

    fn description(&self) -> &'static str {
        "wire-path channel sends must be bounded try_send (BUSY, never block)"
    }

    fn check_file(&mut self, _sf: &SourceFile, _m: &Manifest, _out: &mut Vec<Violation>) {}

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        let scope = a.manifest.send_scope();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (id, node) in a.graph.nodes.iter().enumerate() {
            let sf = &a.files[node.file];
            if !scope.contains(&sf.rel) {
                continue;
            }
            // Direct sends in the wire files.
            for site in &node.intrinsics {
                if site.effect == Effect::SendsUnbounded {
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        site.line,
                        node.name.clone(),
                        format!(
                            "{} on the wire path — use a bounded try_send (answer \
                             BUSY) or register the receiver under \
                             `[wire-path] bounded_senders`",
                            site.what
                        ),
                        &site.detail,
                    ));
                }
            }
            // Transitive: wire code calling an out-of-scope function
            // whose summary carries the effect.
            for call in &node.calls {
                for &t in &call.targets {
                    let target = &a.graph.nodes[t];
                    if scope.contains(&a.files[target.file].rel)
                        || !a.summaries[t].has(Effect::SendsUnbounded)
                        || !seen.insert((id, t))
                    {
                        continue;
                    }
                    let origin = a.summaries[t]
                        .origin(Effect::SendsUnbounded)
                        .map(|o| format!(" — {}", o.describe()))
                        .unwrap_or_default();
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        call.line,
                        node.name.clone(),
                        format!(
                            "wire path calls `{}`, which performs an unbounded or \
                             blocking send{origin}",
                            target.display
                        ),
                        &format!("sends-via:{}", target.display),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_files(srcs: &[(&str, &str, &str)], manifest: &str) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(krate, name, src)| {
                SourceFile::from_text(
                    PathBuf::from(name),
                    format!("crates/{krate}/src/{name}"),
                    krate,
                    src,
                )
            })
            .collect();
        let m = Manifest::parse(manifest).unwrap();
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        BoundedSend.finish(&a, &mut out);
        out
    }

    #[test]
    fn unbounded_send_on_wire_path_fires() {
        let out = run_files(
            &[(
                "server",
                "shard.rs",
                "fn dispatch(tx: &Sender<u32>) { tx.send(1); }",
            )],
            "[wire-path]\nsend_files = [\"crates/server/src/shard.rs\"]",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("send"));
        assert!(out[0].fingerprint.contains("send:tx"));
    }

    #[test]
    fn bounded_sender_receiver_is_clean() {
        let out = run_files(
            &[(
                "server",
                "shard.rs",
                "fn dispatch(s: &Shard, m: Mail) { s.mailbox.send(m); }",
            )],
            "[wire-path]\nsend_files = [\"crates/server/src/shard.rs\"]\n\
             bounded_senders = [\"mailbox\"]",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn try_send_is_clean() {
        let out = run_files(
            &[(
                "server",
                "shard.rs",
                "fn dispatch(tx: &Sender<u32>) { tx.try_send(1); }",
            )],
            "[wire-path]\nsend_files = [\"crates/server/src/shard.rs\"]",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn out_of_scope_send_is_ignored() {
        let out = run_files(
            &[(
                "server",
                "metrics.rs",
                "fn export(tx: &Sender<u32>) { tx.send(1); }",
            )],
            "[wire-path]\nsend_files = [\"crates/server/src/shard.rs\"]",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn transitive_send_via_helper_fires() {
        let out = run_files(
            &[
                (
                    "server",
                    "shard.rs",
                    "pub fn dispatch(m: Mail) { dcs_util::fanout(m); }",
                ),
                (
                    "util",
                    "m.rs",
                    "pub fn fanout(m: Mail) { let tx = chan(); tx.send(m); }\n\
                     fn chan() -> Sender<Mail> { make() }",
                ),
            ],
            "[wire-path]\nsend_files = [\"crates/server/src/shard.rs\"]",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/server/src/shard.rs");
        assert!(out[0].message.contains("dcs-util::fanout"));
    }

    #[test]
    fn send_scope_falls_back_to_wire_files() {
        let out = run_files(
            &[(
                "server",
                "protocol.rs",
                "fn push_frame(tx: &Sender<u32>) { tx.send(1); }",
            )],
            "[wire-path]\nfiles = [\"crates/server/src/protocol.rs\"]",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
