//! The lint framework: [`Lint`] trait, [`Violation`], and the registry.
//!
//! Each lint sees every parsed [`SourceFile`] once (`check_file`), then
//! gets a whole-workspace pass (`finish`) over the interprocedural
//! [`Analysis`] — the call graph plus inferred per-function effect
//! summaries — for checks that need the global view (the lock-order
//! graph, hot-path reachability, async-path blocking). Lints are
//! pluggable: [`all_lints`] is the registry, and the engine treats the
//! list as data — adding a lint is implementing the trait and pushing it
//! there.

use crate::effects::Analysis;
use crate::manifest::Manifest;
use crate::source::SourceFile;

pub mod async_shard;
pub mod bounded_send;
pub mod clock;
pub mod hotpath;
pub mod lock_order;
pub mod ordering;
pub mod panic_path;
pub mod span_cost;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint that produced it (stable kebab-case name).
    pub lint: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function (`Type::method`), or `(file)`.
    pub symbol: String,
    /// Human-readable description.
    pub message: String,
    /// Line-number-free identity used for baselining, so frozen debt
    /// stays frozen across unrelated edits: `lint|file|symbol|detail`.
    pub fingerprint: String,
    /// Set by the engine when the baseline absorbs this violation.
    pub baselined: bool,
}

impl Violation {
    /// Build a violation with the canonical fingerprint shape. `detail`
    /// must not contain line numbers (it is the stable identity).
    pub fn new(
        lint: &'static str,
        sf: &SourceFile,
        line: u32,
        symbol: String,
        message: String,
        detail: &str,
    ) -> Violation {
        Violation {
            lint,
            file: sf.rel.clone(),
            line,
            fingerprint: format!("{lint}|{}|{symbol}|{detail}", sf.rel),
            symbol,
            message,
            baselined: false,
        }
    }
}

/// A pluggable static check.
pub trait Lint {
    /// Stable kebab-case name (report key, `LINT: allow(<name>)` key).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-lints` and the report.
    fn description(&self) -> &'static str;

    /// Per-file pass. Push findings; accumulate cross-file state in
    /// `self` for [`Lint::finish`].
    fn check_file(&mut self, sf: &SourceFile, manifest: &Manifest, out: &mut Vec<Violation>);

    /// Whole-workspace pass after every file was seen, with the shared
    /// interprocedural analysis (call graph + effect summaries).
    fn finish(&mut self, _a: &Analysis, _out: &mut Vec<Violation>) {}
}

/// The registry: every lint the analyzer ships, in report order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(hotpath::HotPathAlloc),
        Box::new(clock::ClockDiscipline),
        Box::new(panic_path::PanicFree),
        Box::new(ordering::OrderingJustified),
        Box::new(span_cost::SpanCostCoverage),
        Box::new(async_shard::AsyncShard),
        Box::new(bounded_send::BoundedSend),
    ]
}

/// Keywords that can directly precede `[` without it being an index
/// expression, and that never name a callable.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Is `s` a Rust keyword?
pub(crate) fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}
