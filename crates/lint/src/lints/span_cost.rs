//! Span/cost coverage: every `CostLedger` emission must sit inside an
//! open telemetry span, or say why not.
//!
//! PR5's CI gate reconciles the ledger's exact counts against the
//! priced span timeline; an emission site with no span in scope makes
//! the two derivations drift apart in a way the reconciliation can only
//! report as mystery slack. The lint requires each `ledger().mm_op()` /
//! `ss_read()` / `wal_barrier()` / … call to be lexically preceded, in
//! the same function, by a span opening (`span(…)`, `span_at(…)`, or a
//! `*_span(…)` helper) — or to carry an adjacent `// SPAN:` comment
//! naming the caller that holds the span (the pattern used by the
//! per-crate stat mirrors, where the device/tree call site opened it).

use super::{Lint, Violation};
use crate::manifest::Manifest;
use crate::source::SourceFile;

/// The span-coverage lint.
pub struct SpanCostCoverage;

/// The `CostLedger` emission methods (gauges excluded: occupancy is
/// reported at sweep boundaries, outside any span by design).
const EMISSIONS: &[&str] = &[
    "mm_op",
    "mm_ops",
    "ss_read",
    "ss_reads",
    "ss_write",
    "wal_barrier",
    "maintenance_op",
];

impl Lint for SpanCostCoverage {
    fn name(&self) -> &'static str {
        "span-cost"
    }

    fn description(&self) -> &'static str {
        "CostLedger emissions must be inside an open span (or carry // SPAN:)"
    }

    fn check_file(&mut self, sf: &SourceFile, _m: &Manifest, out: &mut Vec<Violation>) {
        let toks = &sf.tokens;
        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            if !EMISSIONS.contains(&id) || sf.in_test(i) || sf.in_attr(i) {
                continue;
            }
            // Shape: `ledger() . <emission> (` — the receiver must be a
            // `ledger()` call so stat-struct methods named `mm_op` (the
            // per-crate mirrors that *call* the ledger) don't fire on
            // their own definitions.
            if !is_ledger_emission(sf, i) {
                continue;
            }
            let Some(f) = sf.enclosing_fn(i) else {
                continue;
            };
            if span_open_before(sf, f.body.0, i) {
                continue;
            }
            let line = toks[i].line;
            if sf.has_adjacent_marker(line, sf.stmt_first_line(i), "SPAN:") {
                continue;
            }
            out.push(Violation::new(
                self.name(),
                sf,
                line,
                f.name.clone(),
                format!(
                    "cost emission `{id}` with no span open in `{}` — open one, or \
                     add a `// SPAN:` comment naming the caller that holds it",
                    f.name
                ),
                &format!("emission:{id}"),
            ));
        }
    }
}

/// Is token `i` an emission method on a `ledger()` receiver?
fn is_ledger_emission(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    if !sf.next_code(i + 1).is_some_and(|n| toks[n].is_punct('(')) {
        return false;
    }
    let Some(dot) = sf.prev_code(i) else {
        return false;
    };
    if !toks[dot].is_punct('.') {
        return false;
    }
    // Receiver tail: `ledger ( )` or a variable previously bound from
    // `ledger()` — approximate the latter by accepting an identifier
    // receiver literally named `ledger`.
    let Some(p) = sf.prev_code(dot) else {
        return false;
    };
    if toks[p].ident() == Some("ledger") {
        return true;
    }
    if toks[p].is_punct(')') {
        if let Some(open) = sf.prev_code(p) {
            if toks[open].is_punct('(') {
                if let Some(name) = sf.prev_code(open) {
                    return toks[name].ident() == Some("ledger");
                }
            }
        }
    }
    false
}

/// Was a span opened lexically before token `end` in the body starting
/// at `start`? Openers: `span(`, `span_at(`, any `*_span(` helper.
fn span_open_before(sf: &SourceFile, start: usize, end: usize) -> bool {
    let toks = &sf.tokens;
    for j in start..end {
        if toks[j].is_comment() {
            continue;
        }
        let Some(id) = toks[j].ident() else { continue };
        if (id == "span" || id == "span_at" || id.ends_with("_span"))
            && sf.next_code(j + 1).is_some_and(|n| toks[n].is_punct('('))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), "crates/x/src/m.rs".into(), "x", src);
        let m = Manifest::default();
        let mut out = Vec::new();
        SpanCostCoverage.check_file(&sf, &m, &mut out);
        out
    }

    #[test]
    fn emission_without_span_fires() {
        let out = run("fn f() { dcs_telemetry::ledger().mm_op(); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("mm_op"));
    }

    #[test]
    fn emission_after_span_is_clean() {
        let out = run(
            "fn f() { let _span = dcs_telemetry::span(\"x\", CostClass::Mm); \
             dcs_telemetry::ledger().mm_op(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn span_helper_counts() {
        let out = run("fn f() { let _s = service_span(\"x\", CostClass::SsRead); \
             dcs_telemetry::ledger().ss_read(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn span_comment_satisfies() {
        let out = run("fn f() {\n\
                 // SPAN: the device call site holds flashsim.read.\n\
                 dcs_telemetry::ledger().ss_read();\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_ledger_method_with_same_name_is_ignored() {
        // A stats mirror calling its *own* mm_op is not an emission.
        let out = run("fn f(s: &Stats) { s.mm_op(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn span_in_caller_does_not_leak_in() {
        let out = run(
            "fn caller() { let _s = dcs_telemetry::span(\"x\", CostClass::Mm); inner(); }\n\
             fn inner() { dcs_telemetry::ledger().mm_op(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].symbol, "inner");
    }
}
