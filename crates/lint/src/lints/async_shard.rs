//! Async-shard non-blocking lint: nothing reachable from the async
//! drain loop may block the shard thread.
//!
//! The whole point of `MissMode::Async` (PR 4) is that a shard keeps
//! serving hits while misses are in flight — the drain loop submits,
//! polls, and parks, but never waits. One synchronous device read or
//! condvar wait anywhere under the loop silently turns the async path
//! back into the sync path, and the miss-service experiment stops
//! measuring what it claims to. The roots come from the manifest's
//! `[async-shard] roots`; everything reachable from them in the
//! workspace call graph whose summary carries `BlocksOnIo` is reported.
//!
//! Findings are anchored where they are fixable: at the intrinsic site
//! when it lives in the root's own crate, else at the call edge where
//! the chain leaves the root's crate (you can't edit another crate from
//! here, but you can stop calling into it). Legitimate blocking — the
//! idle-only mailbox wait, a bounded backoff sleep — is waived at the
//! site with `// LINT: allow(effect-block): <reason>`, which removes it
//! from every summary at once.

use super::{Lint, Violation};
use crate::callgraph::NodeId;
use crate::effects::{Analysis, Effect};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The async-shard non-blocking lint.
pub struct AsyncShard;

impl Lint for AsyncShard {
    fn name(&self) -> &'static str {
        "async-shard"
    }

    fn description(&self) -> &'static str {
        "nothing reachable from the async drain loop may block the shard thread"
    }

    fn check_file(&mut self, _sf: &SourceFile, _m: &Manifest, _out: &mut Vec<Violation>) {}

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        for hp in &a.manifest.async_roots {
            let roots = a.resolve(hp);
            if roots.len() != 1 {
                out.push(Violation {
                    lint: self.name(),
                    file: "lint-hotpaths.toml".into(),
                    line: 0,
                    symbol: hp.func.clone(),
                    message: format!(
                        "async-shard root `{}::{}` not found (or ambiguous) — \
                         fix the manifest entry",
                        hp.krate, hp.func
                    ),
                    fingerprint: format!(
                        "async-shard|manifest|{}::{}|missing-root",
                        hp.krate, hp.func
                    ),
                    baselined: false,
                });
                continue;
            }
            check_root(a, roots[0], out);
        }
    }
}

/// BFS from one async root; report every reachable `BlocksOnIo`
/// intrinsic once, anchored per the module docs.
fn check_root(a: &Analysis, root: NodeId, out: &mut Vec<Violation>) {
    let root_krate = a.graph.nodes[root].krate.clone();
    let root_name = a.graph.nodes[root].name.clone();
    // parent[n] = (parent node, call line) on the BFS tree.
    let mut parent: BTreeMap<NodeId, (NodeId, u32)> = BTreeMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    queue.push_back(root);
    parent.insert(root, (root, 0));
    let mut order: Vec<NodeId> = Vec::new();
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for call in &a.graph.nodes[id].calls {
            for &t in &call.targets {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert((id, call.line));
                    queue.push_back(t);
                }
            }
        }
    }
    for id in order {
        let node = &a.graph.nodes[id];
        for site in &node.intrinsics {
            if site.effect != Effect::BlocksOnIo {
                continue;
            }
            // The BFS-tree chain from the root down to this node.
            let mut chain: Vec<NodeId> = vec![id];
            let mut cur = id;
            while cur != root {
                cur = parent[&cur].0;
                chain.push(cur);
            }
            chain.reverse();
            let path = chain
                .iter()
                .map(|&n| a.graph.nodes[n].name.as_str())
                .collect::<Vec<_>>()
                .join(" -> ");
            // Anchor: the intrinsic site when it's in the root's crate,
            // else the call edge that leaves the root's crate.
            let (anchor_node, anchor_line) = if node.krate == root_krate {
                (id, site.line)
            } else {
                let mut leave = (id, site.line);
                for w in chain.windows(2) {
                    if a.graph.nodes[w[0]].krate == root_krate
                        && a.graph.nodes[w[1]].krate != root_krate
                    {
                        leave = (w[0], parent[&w[1]].1);
                    }
                }
                leave
            };
            let detail = format!("blocks:{}:{}", node.display, site.detail);
            if !seen.insert(detail.clone()) {
                continue;
            }
            let anchor = &a.graph.nodes[anchor_node];
            let sf = &a.files[anchor.file];
            out.push(Violation::new(
                "async-shard",
                sf,
                anchor_line,
                anchor.name.clone(),
                format!(
                    "async drain loop `{root_name}` reaches {} at {}:{} (via {path})",
                    site.what, a.files[node.file].rel, site.line
                ),
                &detail,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::HotPath;
    use std::path::PathBuf;

    fn run_files(srcs: &[(&str, &str, &str)], root: (&str, &str)) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(krate, name, src)| {
                SourceFile::from_text(
                    PathBuf::from(name),
                    format!("crates/{krate}/src/{name}"),
                    krate,
                    src,
                )
            })
            .collect();
        let m = Manifest {
            async_roots: vec![HotPath {
                krate: root.0.into(),
                func: root.1.into(),
            }],
            ..Manifest::default()
        };
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        AsyncShard.finish(&a, &mut out);
        out
    }

    #[test]
    fn blocking_two_hops_down_fires_at_site() {
        let out = run_files(
            &[(
                "x",
                "m.rs",
                "struct Shard2;\n\
                 impl Shard2 { fn drain(&self) { step(); } }\n\
                 fn step() { fetch(); }\n\
                 fn fetch() { std::thread::sleep(d); }",
            )],
            ("x", "Shard2::drain"),
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4); // anchored at the sleep itself
        assert!(out[0]
            .message
            .contains("via Shard2::drain -> step -> fetch"));
    }

    #[test]
    fn cross_crate_blocking_anchors_at_departing_call() {
        let out = run_files(
            &[
                (
                    "server",
                    "m.rs",
                    "struct Shard2;\nimpl Shard2 { fn drain(&self) { dcs_dev::fetch(); } }",
                ),
                ("dev", "m.rs", "pub fn fetch() { std::thread::sleep(d); }"),
            ],
            ("server", "Shard2::drain"),
        );
        assert_eq!(out.len(), 1, "{out:?}");
        // Anchored at the server-side call that leaves the root crate.
        assert_eq!(out[0].file, "crates/server/src/m.rs");
        assert!(out[0].message.contains("crates/dev/src/m.rs"));
    }

    #[test]
    fn waived_blocking_site_is_clean() {
        let out = run_files(
            &[(
                "x",
                "m.rs",
                "struct Shard2;\n\
                 impl Shard2 { fn drain(&self) { idle(); } }\n\
                 fn idle() {\n\
                     // LINT: allow(effect-block): bounded backoff only when idle\n\
                     std::thread::sleep(d);\n\
                 }",
            )],
            ("x", "Shard2::drain"),
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_root_is_a_manifest_violation() {
        let out = run_files(&[("x", "m.rs", "fn other() {}")], ("x", "Shard2::drain"));
        assert_eq!(out.len(), 1);
        assert!(out[0].fingerprint.ends_with("missing-root"));
    }

    #[test]
    fn declared_blocking_manifest_fn_fires() {
        let files = [
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/server/src/m.rs".into(),
                "server",
                "struct Shard2;\nimpl Shard2 { fn drain(&self) { dcs_dev::Dev::fetch(); } }",
            ),
            SourceFile::from_text(
                PathBuf::from("m.rs"),
                "crates/dev/src/m.rs".into(),
                "dev",
                "pub struct Dev;\nimpl Dev { pub fn fetch() { /* opaque */ } }",
            ),
        ];
        let m = Manifest::parse(
            "[async-shard]\nroots = [\"dcs-server::Shard2::drain\"]\n\
             [effects]\nblocking = [\"dcs-dev::Dev::fetch\"]",
        )
        .unwrap();
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        AsyncShard.finish(&a, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("declared-blocking"));
    }
}
