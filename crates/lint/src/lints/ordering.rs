//! Atomic-ordering justification: every `Ordering::Relaxed` in the
//! manifest's `[ordering] crates` must carry an adjacent `// ORDERING:`
//! comment.
//!
//! Mirrors the SAFETY-comment regime the workspace already enforces for
//! `unsafe`: relaxed atomics are correct exactly when a happens-before
//! edge exists elsewhere (or none is needed), and that argument lives
//! in the author's head unless it is written down. The comment goes on
//! the same line, or as a contiguous `//` block immediately above the
//! statement (one block covers a multi-line statement). Acquire/Release
//! orderings need no comment — their justification is the ordering
//! itself.

use super::{Lint, Violation};
use crate::manifest::Manifest;
use crate::source::SourceFile;

/// The relaxed-ordering justification lint.
pub struct OrderingJustified;

impl Lint for OrderingJustified {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "every Ordering::Relaxed needs an adjacent `// ORDERING:` justification"
    }

    fn check_file(&mut self, sf: &SourceFile, m: &Manifest, out: &mut Vec<Violation>) {
        if !m.ordering_crates.contains(&sf.crate_name) {
            return;
        }
        let toks = &sf.tokens;
        let mut last_line = 0u32;
        for i in 0..toks.len() {
            if toks[i].ident() != Some("Relaxed") || sf.in_test(i) {
                continue;
            }
            // Require the `Ordering::` qualifier so a stray identifier
            // named Relaxed (or an import) does not fire.
            let Some(c2) = sf.prev_code(i) else { continue };
            let Some(c1) = sf.prev_code(c2) else { continue };
            let Some(q) = sf.prev_code(c1) else { continue };
            if !(toks[c2].is_punct(':') && toks[c1].is_punct(':')) {
                continue;
            }
            if toks[q].ident() != Some("Ordering") {
                continue;
            }
            let line = toks[i].line;
            if line == last_line {
                continue; // several Relaxed on one line share one comment
            }
            last_line = line;
            if !sf.has_adjacent_marker(line, sf.stmt_first_line(i), "ORDERING:") {
                out.push(Violation::new(
                    self.name(),
                    sf,
                    line,
                    sf.context_name(i),
                    "`Ordering::Relaxed` without an adjacent `// ORDERING:` \
                     justification"
                        .to_string(),
                    "Relaxed",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/ebr/src/m.rs".into(),
            "ebr",
            src,
        );
        let m = Manifest {
            ordering_crates: vec!["ebr".into()],
            ..Manifest::default()
        };
        let mut out = Vec::new();
        OrderingJustified.check_file(&sf, &m, &mut out);
        out
    }

    #[test]
    fn bare_relaxed_fires() {
        let out = run("fn f(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn same_line_comment_satisfies() {
        let out = run(
            "fn f(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); // ORDERING: stat only\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_above_satisfies_multiline_stmt() {
        let out = run("fn f(x: &AtomicU64) {\n\
                 // ORDERING: pure counter, read only in snapshots.\n\
                 x.fetch_add(\n\
                     1, Ordering::Relaxed);\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn comment_does_not_leak_to_next_statement() {
        let out = run("fn f(x: &AtomicU64) {\n\
                 // ORDERING: covers only the next statement.\n\
                 x.fetch_add(1, Ordering::Relaxed);\n\
                 x.fetch_add(2, Ordering::Relaxed);\n\
             }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn acquire_release_need_no_comment() {
        let out = run(
            "fn f(x: &AtomicU64) { x.load(Ordering::Acquire); x.store(1, Ordering::Release); }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/server/src/m.rs".into(),
            "server",
            "fn f(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }",
        );
        let m = Manifest {
            ordering_crates: vec!["ebr".into()],
            ..Manifest::default()
        };
        let mut out = Vec::new();
        OrderingJustified.check_file(&sf, &m, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let out =
            run("#[cfg(test)]\nmod tests { fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); } }");
        assert!(out.is_empty(), "{out:?}");
    }
}
