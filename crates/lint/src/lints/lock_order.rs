//! Lock-order lint: build the static Mutex/RwLock acquisition graph for
//! the *whole workspace* and reject cycles.
//!
//! The guard-scope modeling (block frames, statement temporaries,
//! `drop(g)` release, `.unwrap()` adapters) lives in the call-graph walk
//! ([`crate::callgraph`]); this lint consumes its output twice over:
//!
//! * **Direct edges** — every [`crate::callgraph::LockSite`] records which labels were
//!   held when it fired: held → acquired, keyed by crate-qualified
//!   receiver text (`server:self.state`), the right granularity for
//!   this workspace's one-lock-per-named-field style.
//! * **Call-propagated edges** — every call site made while holding a
//!   lock contributes held → *L* for each lock *L* in the callee's
//!   inferred effect summary. This is what makes a server→tc→llama
//!   inversion visible: the inner acquisition may be two crates away
//!   from the outer one.
//!
//! Edges union across all functions; a cycle in the union means two
//! code paths acquire the same set of locks in incompatible orders — a
//! deadlock nobody has hit yet. Recursive acquisition of the same
//! receiver inside one function (including via a callee, when direct)
//! is reported at the site.
//!
//! Known approximations, chosen to over- rather than under-report:
//! receivers with equal text in different types of the same crate merge
//! (disambiguate via `LINT: allow(lock-order)` with a reason, or rename
//! the field), and a guard passed to a function that drops it early is
//! still considered held to end of block. An acquisition can be hidden
//! from the interprocedural graph entirely with
//! `// LINT: allow(effect-lock): <reason>`.

use super::{Lint, Violation};
use crate::effects::Analysis;
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One recorded `outer → inner` acquisition, with its site.
#[derive(Debug, Clone)]
struct Edge {
    outer: String,
    inner: String,
    file: String,
    line: u32,
    symbol: String,
    /// For call-propagated edges: the callee whose summary carries the
    /// inner lock.
    via: Option<String>,
}

/// The lock-order lint. Pure `finish`-time consumer of the analysis.
pub struct LockOrder;

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "workspace-wide lock acquisition graph must be acyclic"
    }

    fn check_file(&mut self, _sf: &SourceFile, _m: &Manifest, _out: &mut Vec<Violation>) {}

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        let mut edges: Vec<Edge> = Vec::new();
        for node in &a.graph.nodes {
            let sf = &a.files[node.file];
            for site in &node.locks {
                if site.recursive {
                    out.push(Violation::new(
                        self.name(),
                        sf,
                        site.line,
                        node.name.clone(),
                        format!(
                            "recursive acquisition: `{}` is already held when it is \
                             acquired again",
                            site.label
                        ),
                        &format!("recursive:{}", site.label),
                    ));
                }
                for h in &site.held {
                    if *h != site.label {
                        edges.push(Edge {
                            outer: h.clone(),
                            inner: site.label.clone(),
                            file: sf.rel.clone(),
                            line: site.line,
                            symbol: node.name.clone(),
                            via: None,
                        });
                    }
                }
            }
            // Calls made while holding a lock: the callee's whole
            // inferred lock set nests inside the held labels.
            for call in &node.calls {
                if call.held.is_empty() {
                    continue;
                }
                for &t in &call.targets {
                    for label in a.summaries[t].locks.keys() {
                        for h in &call.held {
                            if h != label {
                                edges.push(Edge {
                                    outer: h.clone(),
                                    inner: label.clone(),
                                    file: sf.rel.clone(),
                                    line: call.line,
                                    symbol: node.name.clone(),
                                    via: Some(a.graph.nodes[t].display.clone()),
                                });
                            }
                        }
                    }
                }
            }
        }
        for cycle in find_cycles(&edges) {
            // One violation per cycle, anchored at its first edge's
            // site; the message walks the whole loop with every
            // participating site so the report is actionable alone.
            let mut names: Vec<&str> = cycle.iter().map(|e| e.outer.as_str()).collect();
            names.push(cycle[0].outer.as_str());
            let sites = cycle
                .iter()
                .map(|e| {
                    let via = e
                        .via
                        .as_ref()
                        .map(|v| format!(" via `{v}`"))
                        .unwrap_or_default();
                    format!(
                        "{} -> {} at {}:{} ({}){via}",
                        e.outer, e.inner, e.file, e.line, e.symbol
                    )
                })
                .collect::<Vec<_>>()
                .join("; ");
            let first = &cycle[0];
            // Fingerprint: the cycle's sorted node set — stable under
            // both line churn and which edge the search enters at.
            let mut key: Vec<&str> = cycle.iter().map(|e| e.outer.as_str()).collect();
            key.sort_unstable();
            out.push(Violation {
                lint: self.name(),
                file: first.file.clone(),
                line: first.line,
                symbol: first.symbol.clone(),
                message: format!(
                    "lock-order cycle in workspace: {} [{sites}]",
                    names.join(" -> "),
                ),
                fingerprint: format!("lock-order|workspace|cycle|{}", key.join(",")),
                baselined: false,
            });
        }
    }
}

/// All elementary cycles reachable in the edge union, deduplicated by
/// node set. DFS with a bounded path — workspace lock graphs are tiny.
fn find_cycles(edges: &[Edge]) -> Vec<Vec<Edge>> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.outer.as_str()).or_default().push(e);
    }
    let mut cycles: Vec<Vec<Edge>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs(start, start, &adj, &mut path, &mut on_path, &mut |cyc| {
            let mut key: Vec<String> = cyc.iter().map(|e| e.outer.clone()).collect();
            key.sort();
            if seen_sets.insert(key) {
                cycles.push(cyc.iter().map(|e| (*e).clone()).collect());
            }
        });
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    path: &mut Vec<&'a Edge>,
    on_path: &mut Vec<&'a str>,
    emit: &mut impl FnMut(&[&Edge]),
) {
    if path.len() > 8 {
        return; // bounded: lock chains longer than this are their own bug
    }
    let Some(nexts) = adj.get(node) else { return };
    for e in nexts {
        if e.inner == start && !path.is_empty() {
            path.push(e);
            emit(path);
            path.pop();
            continue;
        }
        // Only close cycles back to `start`; revisiting other on-path
        // nodes would re-find the same loop from a different entry.
        if e.inner == start || on_path.contains(&e.inner.as_str()) {
            continue;
        }
        // A cycle is also closed by a single edge A -> A elsewhere, but
        // that is reported as recursive acquisition at scan time.
        if e.inner == e.outer {
            continue;
        }
        path.push(e);
        on_path.push(&e.inner);
        dfs(&e.inner, start, adj, path, on_path, emit);
        on_path.pop();
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        run_files(&[("x", "m.rs", src)])
    }

    fn run_files(srcs: &[(&str, &str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(krate, name, src)| {
                SourceFile::from_text(
                    PathBuf::from(name),
                    format!("crates/{krate}/src/{name}"),
                    krate,
                    src,
                )
            })
            .collect();
        let m = Manifest::default();
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        LockOrder.finish(&a, &mut out);
        out
    }

    #[test]
    fn two_lock_cycle_is_reported() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
        assert!(out[0].message.contains("s.a"));
        assert!(out[0].message.contains("s.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ab2(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let out = run(
            "fn ab(s: &S) { let a = s.a.lock(); drop(a); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); drop(b); let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let out = run(
            "fn ab(s: &S) { { let a = s.a.lock(); } let b = s.b.lock(); }\n\
             fn ba(s: &S) { { let b = s.b.lock(); } let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn recursive_acquisition_is_reported() {
        let out = run("fn f(s: &S) { let a = s.a.lock(); let b = s.a.lock(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("recursive"));
    }

    #[test]
    fn inline_temporary_is_statement_scoped() {
        // The temporary guard from the first statement is gone by the
        // second, so no edge and no cycle.
        let out = run("fn ab(s: &S) { s.a.lock().push(1); s.b.lock().push(2); }\n\
             fn ba(s: &S) { s.b.lock().push(1); s.a.lock().push(2); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn nested_temporaries_form_edges() {
        let out = run("fn ab(s: &S) { s.a.lock().push(s.b.lock().pop()); }\n\
             fn ba(s: &S) { s.b.lock().push(s.a.lock().pop()); }");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let out = run(
            "fn f(s: &S, buf: &mut [u8]) { let a = s.a.lock(); s.file.read(buf); }\n\
             fn g(s: &S, buf: &mut [u8]) { s.file.read(buf); let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn three_lock_cycle_found() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn bc(s: &S) { let b = s.b.lock(); let c = s.c.lock(); }\n\
             fn ca(s: &S) { let c = s.c.lock(); let a = s.a.lock(); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("x:s.a -> x:s.b"));
    }

    #[test]
    fn for_loop_header_guard_releases_at_loop_end() {
        // The iterator temporary is held through the body (real Rust
        // semantics) but must not survive past the loop's `}`.
        let out = run("fn f(s: &S) {\n\
                 for x in s.a.lock().iter() { use_it(x); }\n\
                 let b = s.b.lock();\n\
             }\n\
             fn g(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn for_loop_header_guard_held_during_body() {
        let out = run(
            "fn f(s: &S) { for x in s.a.lock().iter() { s.b.lock().push(x); } }\n\
             fn g(s: &S) { for x in s.b.lock().iter() { s.a.lock().push(x); } }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn mid_chain_guard_is_a_temporary() {
        // `….lock().pending.remove(…)` yields a temporary guard; a later
        // statement re-locking the same mutex is not recursive.
        let out = run("fn f(s: &S) {\n\
                 let Some(mut st) = s.a.lock().pending.remove(&k) else { return; };\n\
                 st.step();\n\
                 s.a.lock().pending.insert(k, st);\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_adapter_still_binds_the_guard() {
        let out = run(
            "fn ab(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn ba(s: &S) { let b = s.b.lock().unwrap(); let a = s.a.lock().unwrap(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn if_condition_guard_does_not_leak_past_block() {
        // Double-checked flush shape: read in the condition, write after
        // the early-return block. Not recursive.
        let out = run("fn f(s: &S) {\n\
                 if s.state.read().bytes() < MAX { return; }\n\
                 let mut st = s.state.write();\n\
                 st.go();\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let out = run("#[cfg(test)]\nmod tests {\n\
             fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }\n}");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cross_crate_cycle_via_call_propagation() {
        // Crate a locks alpha then calls into crate b, which locks beta;
        // crate b locks beta then calls back into a, which locks alpha.
        // Neither crate's local graph has a cycle — only the merged one.
        let out = run_files(&[
            (
                "a",
                "a.rs",
                "pub fn forward(s: &S) { let g = s.alpha.lock(); dcs_b::hold_beta(s); }\n\
                 pub fn hold_alpha(s: &S) { let g = s.alpha.lock(); }",
            ),
            (
                "b",
                "b.rs",
                "pub fn hold_beta(s: &S) { let g = s.beta.lock(); }\n\
                 pub fn backward(s: &S) { let g = s.beta.lock(); dcs_a::hold_alpha(s); }",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a:s.alpha"));
        assert!(out[0].message.contains("b:s.beta"));
        assert!(out[0].message.contains("via"), "{}", out[0].message);
        assert_eq!(
            out[0].fingerprint,
            "lock-order|workspace|cycle|a:s.alpha,b:s.beta"
        );
    }

    #[test]
    fn deep_callee_lock_still_forms_edge() {
        // The lock two hops below the call site still nests under the
        // held guard (summary propagation, not just direct callees).
        let out = run_files(&[
            (
                "a",
                "a.rs",
                "pub fn forward(s: &S) { let g = s.alpha.lock(); dcs_b::step(s); }\n\
                 pub fn hold_alpha(s: &S) { let g = s.alpha.lock(); }",
            ),
            (
                "b",
                "b.rs",
                "pub fn step(s: &S) { inner(s); }\n\
                 fn inner(s: &S) { let g = s.beta.lock(); }\n\
                 pub fn backward(s: &S) { let g = s.beta.lock(); dcs_a::hold_alpha(s); }",
            ),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn effect_lock_waiver_hides_acquisition() {
        let out = run_files(&[(
            "x",
            "m.rs",
            "fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ba(s: &S) {\n\
                 // LINT: allow(effect-lock): startup-only path, never concurrent with ab\n\
                 let b = s.b.lock();\n\
                 let a = s.a.lock();\n\
             }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
