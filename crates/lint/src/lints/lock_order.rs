//! Lock-order lint: build the static Mutex/RwLock acquisition graph per
//! crate and reject cycles.
//!
//! Within every function body the pass tracks which lock guards are
//! live: an acquisition is a zero-argument `.lock()`, `.read()` or
//! `.write()` call (the zero-argument test is what separates
//! `RwLock::read()` from `io::Read::read(buf)`). A guard bound with
//! `let g = …` lives to the end of its block (or an explicit `drop(g)`);
//! an inline temporary lives to the end of its statement; `let _ = …`
//! drops immediately. Acquiring `B` while holding `A` records the edge
//! `A → B` keyed by the *receiver text* (`self.inner`, `GLOBAL`, …),
//! which is the right granularity for this workspace's style of one
//! lock per named field.
//!
//! Edges union per crate across all functions; a cycle in the union
//! means two code paths acquire the same pair of locks in opposite
//! orders — a deadlock nobody has hit yet. Recursive acquisition of the
//! same receiver inside one function is reported directly.
//!
//! Known approximations, chosen to over- rather than under-report:
//! receivers with equal text in different types merge (disambiguate via
//! `LINT: allow(lock-order)` with a reason, or rename the field), and a
//! guard passed to a function that drops it early is still considered
//! held to end of block.

use super::{Lint, Violation};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One recorded `outer → inner` acquisition, with its site.
#[derive(Debug, Clone)]
struct Edge {
    outer: String,
    inner: String,
    file: String,
    line: u32,
    symbol: String,
}

/// The lock-order lint. Accumulates per-crate edges in `check_file`,
/// searches for cycles in `finish`.
#[derive(Default)]
pub struct LockOrder {
    edges: BTreeMap<String, Vec<Edge>>,
}

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "static per-crate lock acquisition graph must be acyclic"
    }

    fn check_file(&mut self, sf: &SourceFile, _m: &Manifest, out: &mut Vec<Violation>) {
        let crate_edges = self.edges.entry(sf.crate_name.clone()).or_default();
        for f in &sf.fns {
            if f.in_test {
                continue;
            }
            scan_fn(sf, f.body, &f.name, crate_edges, out);
        }
    }

    fn finish(&mut self, _files: &[SourceFile], _m: &Manifest, out: &mut Vec<Violation>) {
        for (krate, edges) in &self.edges {
            for cycle in find_cycles(edges) {
                // One violation per cycle, anchored at its first edge's
                // site; the message walks the whole loop with every
                // participating site so the report is actionable alone.
                let mut names: Vec<&str> = cycle.iter().map(|e| e.outer.as_str()).collect();
                names.push(cycle[0].outer.as_str());
                let sites = cycle
                    .iter()
                    .map(|e| {
                        format!(
                            "{} -> {} at {}:{} ({})",
                            e.outer, e.inner, e.file, e.line, e.symbol
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                let first = &cycle[0];
                // Fingerprint: the cycle's sorted node set — stable under
                // both line churn and which edge the search enters at.
                let mut key: Vec<&str> = cycle.iter().map(|e| e.outer.as_str()).collect();
                key.sort_unstable();
                out.push(Violation {
                    lint: self.name(),
                    file: first.file.clone(),
                    line: first.line,
                    symbol: first.symbol.clone(),
                    message: format!(
                        "lock-order cycle in crate `{krate}`: {} [{sites}]",
                        names.join(" -> "),
                    ),
                    fingerprint: format!("lock-order|{krate}|cycle|{}", key.join(","),),
                    baselined: false,
                });
            }
        }
    }
}

/// A live guard in some block frame.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    /// Binding name when `let`-bound (for `drop(g)` release).
    binding: Option<String>,
    /// When true, release at the next `;` at this depth.
    stmt_scoped: bool,
}

/// Walk one function body, recording nested acquisitions.
fn scan_fn(
    sf: &SourceFile,
    body: (usize, usize),
    symbol: &str,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Violation>,
) {
    let toks = &sf.tokens;
    // One Vec<Held> per open block.
    let mut frames: Vec<Vec<Held>> = vec![Vec::new()];
    let mut i = body.0 + 1;
    while i < body.1 {
        let t = &toks[i];
        if t.is_comment() || sf.in_attr(i) {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            frames.push(Vec::new());
        } else if t.is_punct('}') {
            frames.pop();
            if frames.is_empty() {
                break;
            }
            // The statement a nested block belongs to (`for … { }`,
            // `if … { }`, `match … { }`) is over when its brace closes:
            // release the enclosing frame's statement-scoped temporaries.
            if let Some(top) = frames.last_mut() {
                top.retain(|h| !h.stmt_scoped);
            }
        } else if t.is_punct(';') {
            if let Some(top) = frames.last_mut() {
                top.retain(|h| !h.stmt_scoped);
            }
        } else if t.ident() == Some("drop") {
            // `drop(g)` releases a named guard anywhere on the stack.
            if let Some((name, end)) = single_ident_arg(sf, i) {
                for frame in frames.iter_mut() {
                    frame.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                }
                i = end;
                continue;
            }
        } else if is_acquire_at(sf, i) {
            let lock = receiver_text(sf, i);
            if !lock.is_empty() {
                // The guard is only `let`-bound (block-scoped) when the
                // acquisition is the whole initializer — possibly via an
                // `.unwrap()`/`.expect(…)` adapter. Anything longer
                // (`….lock().pending.remove(…)`) produces a temporary
                // guard that dies with the statement.
                let (binding, immediate_drop) = if acquisition_ends_statement(sf, i) {
                    let_binding_for(sf, i)
                } else {
                    (None, false)
                };
                for frame in frames.iter() {
                    for h in frame {
                        if h.lock == lock {
                            let line = toks[i].line;
                            out.push(Violation::new(
                                "lock-order",
                                sf,
                                line,
                                symbol.to_string(),
                                format!(
                                    "recursive acquisition: `{lock}` is already held \
                                     when it is acquired again"
                                ),
                                &format!("recursive:{lock}"),
                            ));
                        } else {
                            edges.push(Edge {
                                outer: h.lock.clone(),
                                inner: lock.clone(),
                                file: sf.rel.clone(),
                                line: toks[i].line,
                                symbol: symbol.to_string(),
                            });
                        }
                    }
                }
                if !immediate_drop {
                    if let Some(top) = frames.last_mut() {
                        top.push(Held {
                            lock,
                            stmt_scoped: binding.is_none(),
                            binding,
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Is token `i` the method name of a zero-argument `.lock()`, `.read()`
/// or `.write()` call?
fn is_acquire_at(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    let Some(name) = toks[i].ident() else {
        return false;
    };
    if !matches!(name, "lock" | "read" | "write") {
        return false;
    }
    let Some(prev) = sf.prev_code(i) else {
        return false;
    };
    if !toks[prev].is_punct('.') {
        return false;
    }
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[open].is_punct('(') {
        return false;
    }
    let Some(close) = sf.next_code(open + 1) else {
        return false;
    };
    toks[close].is_punct(')')
}

/// The receiver chain to the left of the `.` before token `i`,
/// normalized to text: `self.inner.lock()` → `self.inner`;
/// `ledger().x.lock()` → `ledger().x`.
fn receiver_text(sf: &SourceFile, method_tok: usize) -> String {
    let toks = &sf.tokens;
    let Some(dot) = sf.prev_code(method_tok) else {
        return String::new();
    };
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // at the `.`
    while let Some(p) = sf.prev_code(j) {
        let t = &toks[p];
        match &t.tok {
            crate::lexer::Tok::Ident(s) => {
                if super::is_keyword(s) && s != "self" && s != "Self" {
                    break;
                }
                parts.push(s.clone());
                j = p;
            }
            crate::lexer::Tok::Punct('.') | crate::lexer::Tok::Punct(':') => {
                parts.push(if t.is_punct('.') { "." } else { ":" }.to_string());
                j = p;
            }
            crate::lexer::Tok::Punct(')') => {
                // Balanced-paren hop: `ledger()` or `f(x)` receivers.
                let mut depth = 0usize;
                let mut k = p;
                loop {
                    if toks[k].is_punct(')') {
                        depth += 1;
                    } else if toks[k].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(prev) = sf.prev_code(k) else { break };
                    k = prev;
                }
                parts.push("()".to_string());
                j = k;
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// Does the acquisition at token `i` end its statement? The guard chain
/// may pass through `.unwrap()` / `.expect(…)` (the `std::sync` shapes)
/// and must then hit `;` — any other continuation means the guard is a
/// temporary inside a larger expression.
fn acquisition_ends_statement(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    // Token after the acquisition's `()`.
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    let Some(mut k) = sf.next_code(open + 1) else {
        return false;
    }; // at the `)` (zero-arg call, checked by is_acquire_at)
    loop {
        let Some(next) = sf.next_code(k + 1) else {
            return false;
        };
        if toks[next].is_punct(';') {
            return true;
        }
        if !toks[next].is_punct('.') {
            return false;
        }
        let Some(m) = sf.next_code(next + 1) else {
            return false;
        };
        if !matches!(toks[m].ident(), Some("unwrap") | Some("expect")) {
            return false;
        }
        // Hop the adapter's balanced argument list.
        let Some(o) = sf.next_code(m + 1) else {
            return false;
        };
        if !toks[o].is_punct('(') {
            return false;
        }
        let mut depth = 0usize;
        let mut j = o;
        loop {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
            if j >= toks.len() {
                return false;
            }
        }
        k = j;
    }
}

/// Is the statement this acquisition belongs to a `let` binding? Returns
/// `(binding_name, immediate_drop)`; `let _ = …` is an immediate drop.
fn let_binding_for(sf: &SourceFile, i: usize) -> (Option<String>, bool) {
    let toks = &sf.tokens;
    // Walk back to the statement start.
    let mut start = i;
    for j in (0..i).rev() {
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start = j;
    }
    if toks[start].ident() != Some("let") {
        return (None, false);
    }
    // `let [mut] name [: ty] = …` — find the first ident after `let`
    // (skipping `mut`); `_` lexes as an identifier.
    let mut j = start + 1;
    while j < i {
        if let Some(id) = toks[j].ident() {
            if id == "mut" {
                j += 1;
                continue;
            }
            if id == "_" {
                return (None, true);
            }
            // A pattern binding (`let Some(g) = …`, `let res::Ok(g) = …`)
            // destructures the value; the guard itself is a temporary.
            // (`let g: Ty = …` — a single `:` — is still a binding.)
            if let Some(n) = sf.next_code(j + 1) {
                let paren = toks[n].is_punct('(');
                let path = toks[n].is_punct(':')
                    && sf.next_code(n + 1).is_some_and(|n2| toks[n2].is_punct(':'));
                if paren || path {
                    return (None, false);
                }
            }
            return (Some(id.to_string()), false);
        }
        if toks[j].is_comment() {
            j += 1;
            continue;
        }
        break;
    }
    (None, false)
}

/// `drop ( ident )` → the ident and the index of the `)`.
fn single_ident_arg(sf: &SourceFile, drop_tok: usize) -> Option<(String, usize)> {
    let toks = &sf.tokens;
    let open = sf.next_code(drop_tok + 1)?;
    if !toks[open].is_punct('(') {
        return None;
    }
    let arg = sf.next_code(open + 1)?;
    let name = toks[arg].ident()?.to_string();
    let close = sf.next_code(arg + 1)?;
    if !toks[close].is_punct(')') {
        return None;
    }
    Some((name, close))
}

/// All elementary cycles reachable in the edge union, deduplicated by
/// node set. DFS with a bounded path — crate lock graphs are tiny.
fn find_cycles(edges: &[Edge]) -> Vec<Vec<Edge>> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.outer.as_str()).or_default().push(e);
    }
    let mut cycles: Vec<Vec<Edge>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs(start, start, &adj, &mut path, &mut on_path, &mut |cyc| {
            let mut key: Vec<String> = cyc.iter().map(|e| e.outer.clone()).collect();
            key.sort();
            if seen_sets.insert(key) {
                cycles.push(cyc.iter().map(|e| (*e).clone()).collect());
            }
        });
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    path: &mut Vec<&'a Edge>,
    on_path: &mut Vec<&'a str>,
    emit: &mut impl FnMut(&[&Edge]),
) {
    if path.len() > 8 {
        return; // bounded: lock chains longer than this are their own bug
    }
    let Some(nexts) = adj.get(node) else { return };
    for e in nexts {
        if e.inner == start && !path.is_empty() {
            path.push(e);
            emit(path);
            path.pop();
            continue;
        }
        // Only close cycles back to `start`; revisiting other on-path
        // nodes would re-find the same loop from a different entry.
        if e.inner == start || on_path.contains(&e.inner.as_str()) {
            continue;
        }
        // A cycle is also closed by a single edge A -> A elsewhere, but
        // that is reported as recursive acquisition at scan time.
        if e.inner == e.outer {
            continue;
        }
        path.push(e);
        on_path.push(&e.inner);
        dfs(&e.inner, start, adj, path, on_path, emit);
        on_path.pop();
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Violation> {
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), "crates/x/src/m.rs".into(), "x", src);
        let m = Manifest::default();
        let mut lint = LockOrder::default();
        let mut out = Vec::new();
        lint.check_file(&sf, &m, &mut out);
        lint.finish(&[sf], &m, &mut out);
        out
    }

    #[test]
    fn two_lock_cycle_is_reported() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
        assert!(out[0].message.contains("s.a"));
        assert!(out[0].message.contains("s.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ab2(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let out = run(
            "fn ab(s: &S) { let a = s.a.lock(); drop(a); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); drop(b); let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let out = run(
            "fn ab(s: &S) { { let a = s.a.lock(); } let b = s.b.lock(); }\n\
             fn ba(s: &S) { { let b = s.b.lock(); } let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn recursive_acquisition_is_reported() {
        let out = run("fn f(s: &S) { let a = s.a.lock(); let b = s.a.lock(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("recursive"));
    }

    #[test]
    fn inline_temporary_is_statement_scoped() {
        // The temporary guard from the first statement is gone by the
        // second, so no edge and no cycle.
        let out = run("fn ab(s: &S) { s.a.lock().push(1); s.b.lock().push(2); }\n\
             fn ba(s: &S) { s.b.lock().push(1); s.a.lock().push(2); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn nested_temporaries_form_edges() {
        let out = run("fn ab(s: &S) { s.a.lock().push(s.b.lock().pop()); }\n\
             fn ba(s: &S) { s.b.lock().push(s.a.lock().pop()); }");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let out = run(
            "fn f(s: &S, buf: &mut [u8]) { let a = s.a.lock(); s.file.read(buf); }\n\
             fn g(s: &S, buf: &mut [u8]) { s.file.read(buf); let a = s.a.lock(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn three_lock_cycle_found() {
        let out = run("fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn bc(s: &S) { let b = s.b.lock(); let c = s.c.lock(); }\n\
             fn ca(s: &S) { let c = s.c.lock(); let a = s.a.lock(); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("s.a -> s.b"));
    }

    #[test]
    fn for_loop_header_guard_releases_at_loop_end() {
        // The iterator temporary is held through the body (real Rust
        // semantics) but must not survive past the loop's `}`.
        let out = run("fn f(s: &S) {\n\
                 for x in s.a.lock().iter() { use_it(x); }\n\
                 let b = s.b.lock();\n\
             }\n\
             fn g(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn for_loop_header_guard_held_during_body() {
        let out = run(
            "fn f(s: &S) { for x in s.a.lock().iter() { s.b.lock().push(x); } }\n\
             fn g(s: &S) { for x in s.b.lock().iter() { s.a.lock().push(x); } }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn mid_chain_guard_is_a_temporary() {
        // `….lock().pending.remove(…)` yields a temporary guard; a later
        // statement re-locking the same mutex is not recursive.
        let out = run("fn f(s: &S) {\n\
                 let Some(mut st) = s.a.lock().pending.remove(&k) else { return; };\n\
                 st.step();\n\
                 s.a.lock().pending.insert(k, st);\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_adapter_still_binds_the_guard() {
        let out = run(
            "fn ab(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn ba(s: &S) { let b = s.b.lock().unwrap(); let a = s.a.lock().unwrap(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn if_condition_guard_does_not_leak_past_block() {
        // Double-checked flush shape: read in the condition, write after
        // the early-return block. Not recursive.
        let out = run("fn f(s: &S) {\n\
                 if s.state.read().bytes() < MAX { return; }\n\
                 let mut st = s.state.write();\n\
                 st.go();\n\
             }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let out = run("#[cfg(test)]\nmod tests {\n\
             fn ab(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n\
             fn ba(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }\n}");
        assert!(out.is_empty(), "{out:?}");
    }
}
