//! Hot-path allocation lint: functions registered in
//! `lint-hotpaths.toml` must not reach allocation or blocking locks.
//!
//! The paper's cost model prices the hot paths as pure main-memory
//! execution; an accidental `format!` or `Mutex::lock` on one silently
//! bends the measured curve away from the modeled one. Registered roots
//! (server request loop, bwtree read path, flashsim poll, telemetry
//! record) are traversed through the workspace call graph — *across
//! crate boundaries* — and every `Allocates` intrinsic or lock
//! acquisition reachable from a root is reported with the call chain
//! that reaches it. Ambiguous callees get no call edge (the resolver
//! refuses to guess), so traversal over-approximates locally, never
//! globally.
//!
//! Banned in a hot path: `Box::new`, `.push(…)`, `format!`, `vec!`,
//! `.to_vec()`, `.to_owned()`, `.to_string()`, `String::from`,
//! zero-argument `.clone()` (the `Allocates` intrinsics of
//! [`crate::callgraph`]), and blocking `.lock()`/`.read()`/`.write()`
//! (zero-argument — the RwLock shape).

use super::{Lint, Violation};
use crate::callgraph::NodeId;
use crate::effects::{Analysis, Effect};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::collections::{BTreeSet, VecDeque};

/// Hot-path allocation/blocking lint. Pure `finish`-time consumer of
/// the interprocedural analysis.
pub struct HotPathAlloc;

impl Lint for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "registered hot paths must not reach allocation, formatting, or blocking locks"
    }

    fn check_file(&mut self, _sf: &SourceFile, _m: &Manifest, _out: &mut Vec<Violation>) {}

    fn finish(&mut self, a: &Analysis, out: &mut Vec<Violation>) {
        for hp in &a.manifest.hotpaths {
            if !a.has_crate(&hp.krate) {
                out.push(Violation {
                    lint: self.name(),
                    file: "lint-hotpaths.toml".into(),
                    line: 0,
                    symbol: hp.func.clone(),
                    message: format!("hot-path crate `{}` not found in workspace", hp.krate),
                    fingerprint: format!("hot-path-alloc|manifest|{}|missing-crate", hp.krate),
                    baselined: false,
                });
                continue;
            }
            let roots = a.resolve(hp);
            if roots.len() != 1 {
                out.push(Violation {
                    lint: self.name(),
                    file: "lint-hotpaths.toml".into(),
                    line: 0,
                    symbol: hp.func.clone(),
                    message: format!(
                        "hot-path function `{}::{}` not found (or ambiguous) — \
                         fix the manifest entry",
                        hp.krate, hp.func
                    ),
                    fingerprint: format!(
                        "hot-path-alloc|manifest|{}::{}|missing-fn",
                        hp.krate, hp.func
                    ),
                    baselined: false,
                });
                continue;
            }
            check_root(a, roots[0], &hp.func, out);
        }
    }
}

/// BFS from one registered root through the resolved call graph.
fn check_root(a: &Analysis, root: NodeId, root_name: &str, out: &mut Vec<Violation>) {
    let mut queue: VecDeque<(NodeId, Vec<String>)> = VecDeque::new();
    let mut visited: BTreeSet<NodeId> = BTreeSet::new();
    queue.push_back((root, vec![root_name.to_string()]));
    visited.insert(root);
    while let Some((id, chain)) = queue.pop_front() {
        let node = &a.graph.nodes[id];
        let sf = &a.files[node.file];
        let via = if chain.len() > 1 {
            format!(" (via {})", chain.join(" -> "))
        } else {
            String::new()
        };
        for site in &node.intrinsics {
            if site.effect == Effect::Allocates {
                out.push(Violation::new(
                    "hot-path-alloc",
                    sf,
                    site.line,
                    node.name.clone(),
                    format!("hot path `{root_name}` reaches {}{via}", site.what),
                    &format!("{root_name}:{}", site.detail),
                ));
            }
        }
        for lock in &node.locks {
            out.push(Violation::new(
                "hot-path-alloc",
                sf,
                lock.line,
                node.name.clone(),
                format!(
                    "hot path `{root_name}` reaches blocking `.{}()` (lock acquisition){via}",
                    lock.method
                ),
                &format!("{root_name}:.{}()", lock.method),
            ));
        }
        if chain.len() >= 4 {
            continue; // depth bound: deep chains get a manifest entry
        }
        for call in &node.calls {
            for &t in &call.targets {
                if visited.insert(t) {
                    let mut c = chain.clone();
                    c.push(a.graph.nodes[t].name.clone());
                    queue.push_back((t, c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::HotPath;
    use std::path::PathBuf;

    fn run(src: &str, funcs: &[&str]) -> Vec<Violation> {
        run_files(&[("x", "m.rs", src)], funcs)
    }

    fn run_files(srcs: &[(&str, &str, &str)], funcs: &[&str]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(krate, name, src)| {
                SourceFile::from_text(
                    PathBuf::from(name),
                    format!("crates/{krate}/src/{name}"),
                    krate,
                    src,
                )
            })
            .collect();
        let m = Manifest {
            hotpaths: funcs
                .iter()
                .map(|f| {
                    let (krate, func) = f.split_once("!!").unwrap_or(("x", f));
                    HotPath {
                        krate: krate.into(),
                        func: func.to_string(),
                    }
                })
                .collect(),
            ..Manifest::default()
        };
        let a = Analysis::build(&files, &m);
        let mut out = Vec::new();
        HotPathAlloc.finish(&a, &mut out);
        out
    }

    #[test]
    fn direct_format_fires() {
        let out = run("fn hot() { let s = format!(\"x{}\", 1); }", &["hot"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("format!"));
    }

    #[test]
    fn transitive_alloc_fires_with_chain() {
        let out = run(
            "fn hot() { helper(); }\nfn helper() { let b = Box::new(1); }",
            &["hot"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("Box::new"));
        assert!(out[0].message.contains("via hot -> helper"));
    }

    #[test]
    fn clean_hot_path_is_clean() {
        let out = run(
            "fn hot(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); helper(x); }\n\
             fn helper(x: &AtomicU64) { x.load(Ordering::Acquire); }",
            &["hot"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn blocking_lock_fires() {
        let out = run("fn hot(s: &S) { let g = s.m.lock(); }", &["hot"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("lock"));
    }

    #[test]
    fn clone_with_args_is_not_flagged() {
        // `.clone()` zero-arg fires; io `.read(buf)` style non-zero-arg
        // receivers of banned names do not.
        let out = run(
            "fn hot(s: &S, buf: &mut [u8]) { s.file.read(buf); }",
            &["hot"],
        );
        assert!(out.is_empty(), "{out:?}");
        let out = run("fn hot(v: &Val) -> Val { v.clone() }", &["hot"]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ambiguous_callee_stops_traversal() {
        let out = run(
            "fn hot() { go(); }\n\
             fn go() { let b = Box::new(1); }\n\
             mod other { pub fn go() {} }",
            &["hot"],
        );
        // Two `go` definitions: resolution refuses to guess, so the
        // Box::new in one of them is not attributed to the hot path.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_function_is_a_manifest_violation() {
        let out = run("fn other() {}", &["hot"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
    }

    #[test]
    fn method_roots_resolve_by_qualified_name() {
        let out = run(
            "struct S;\nimpl S { fn serve(&self) { let v = vec![1]; } }",
            &["S::serve"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("vec!"));
    }

    #[test]
    fn cross_crate_reachability_fires() {
        // The allocation is in another crate, two hops down — invisible
        // to the old per-crate BFS, found by the workspace graph.
        let out = run_files(
            &[
                ("x", "m.rs", "pub fn hot() { dcs_y::step(); }"),
                (
                    "y",
                    "m.rs",
                    "pub fn step() { deep(); }\nfn deep() { let s = String::from(\"z\"); }",
                ),
            ],
            &["hot"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("String::from"));
        assert!(out[0].message.contains("via hot -> step -> deep"));
        assert_eq!(out[0].file, "crates/y/src/m.rs");
    }

    #[test]
    fn effect_alloc_waiver_stops_attribution() {
        let out = run(
            "fn hot() { helper(); }\n\
             fn helper() {\n\
                 // LINT: allow(effect-alloc): one-time cold-start buffer, amortized\n\
                 let b = Box::new(1);\n\
             }",
            &["hot"],
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
