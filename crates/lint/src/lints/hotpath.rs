//! Hot-path allocation lint: functions registered in
//! `lint-hotpaths.toml` must not reach allocation or blocking locks.
//!
//! The paper's cost model prices the hot paths as pure main-memory
//! execution; an accidental `format!` or `Mutex::lock` on one silently
//! bends the measured curve away from the modeled one. Registered roots
//! (server request loop, bwtree read path, flashsim poll, telemetry
//! record) are checked for the banned constructs *and* traversed one
//! crate deep: a call to a same-crate function with a unique name pulls
//! that function's body into the checked set, with the call chain
//! reported. Cross-crate calls and ambiguous names (several same-crate
//! functions sharing the callee's name) stop traversal — the analyzer
//! over-approximates locally, never globally.
//!
//! Banned in a hot path: `Box::new`, `.push(…)`, `format!`, `vec!`,
//! `.to_vec()`, `.to_owned()`, `.to_string()`, `String::from`,
//! zero-argument `.clone()`, and blocking `.lock()`/`.read()`/`.write()`
//! (zero-argument — the RwLock shape).

use super::{Lint, Violation};
use crate::manifest::Manifest;
use crate::source::{FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Hot-path allocation/blocking lint.
#[derive(Default)]
pub struct HotPathAlloc {
    /// crate → function name → (file index, fn index); ambiguous names
    /// collapse to `None` so traversal refuses to guess.
    index: BTreeMap<String, BTreeMap<String, Option<(usize, usize)>>>,
    files_seen: usize,
}

impl Lint for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "registered hot paths must not reach allocation, formatting, or blocking locks"
    }

    fn check_file(&mut self, sf: &SourceFile, _m: &Manifest, _out: &mut Vec<Violation>) {
        // Index pass only; analysis happens in `finish` once every
        // file's functions are known.
        let file_idx = self.files_seen;
        self.files_seen += 1;
        let by_name = self.index.entry(sf.crate_name.clone()).or_default();
        for (fi, f) in sf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let mut keys = vec![f.name.clone()];
            if f.short != f.name {
                keys.push(f.short.clone());
            }
            for key in keys {
                by_name
                    .entry(key)
                    .and_modify(|e| *e = None) // duplicate name: ambiguous
                    .or_insert(Some((file_idx, fi)));
            }
        }
    }

    fn finish(&mut self, files: &[SourceFile], m: &Manifest, out: &mut Vec<Violation>) {
        for hp in &m.hotpaths {
            let Some(by_name) = self.index.get(&hp.krate) else {
                out.push(Violation {
                    lint: self.name(),
                    file: "lint-hotpaths.toml".into(),
                    line: 0,
                    symbol: hp.func.clone(),
                    message: format!("hot-path crate `{}` not found in workspace", hp.krate),
                    fingerprint: format!("hot-path-alloc|manifest|{}|missing-crate", hp.krate),
                    baselined: false,
                });
                continue;
            };
            let Some(Some(root)) = by_name.get(&hp.func) else {
                out.push(Violation {
                    lint: self.name(),
                    file: "lint-hotpaths.toml".into(),
                    line: 0,
                    symbol: hp.func.clone(),
                    message: format!(
                        "hot-path function `{}::{}` not found (or ambiguous) — \
                         fix the manifest entry",
                        hp.krate, hp.func
                    ),
                    fingerprint: format!(
                        "hot-path-alloc|manifest|{}::{}|missing-fn",
                        hp.krate, hp.func
                    ),
                    baselined: false,
                });
                continue;
            };
            self.check_root(files, by_name, *root, &hp.func, out);
        }
    }
}

impl HotPathAlloc {
    /// BFS from one registered root through same-crate unique callees.
    fn check_root(
        &self,
        files: &[SourceFile],
        by_name: &BTreeMap<String, Option<(usize, usize)>>,
        root: (usize, usize),
        root_name: &str,
        out: &mut Vec<Violation>,
    ) {
        let mut queue: VecDeque<((usize, usize), Vec<String>)> = VecDeque::new();
        let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
        queue.push_back((root, vec![root_name.to_string()]));
        visited.insert(root);
        while let Some(((file_idx, fn_idx), chain)) = queue.pop_front() {
            let sf = &files[file_idx];
            let f = &sf.fns[fn_idx];
            let via = if chain.len() > 1 {
                format!(" (via {})", chain.join(" -> "))
            } else {
                String::new()
            };
            for (line, what, detail) in banned_in_body(sf, f) {
                out.push(Violation::new(
                    "hot-path-alloc",
                    sf,
                    line,
                    f.name.clone(),
                    format!("hot path `{root_name}` reaches {what}{via}"),
                    &format!("{root_name}:{detail}"),
                ));
            }
            if chain.len() >= 4 {
                continue; // depth bound: deep chains get a manifest entry
            }
            for callee in callees(sf, f) {
                if let Some(Some(target)) = by_name.get(&callee) {
                    if visited.insert(*target) {
                        let mut c = chain.clone();
                        c.push(callee);
                        queue.push_back((*target, c));
                    }
                }
            }
        }
    }
}

/// Banned constructs in one function body: `(line, message, fingerprint
/// detail)`.
fn banned_in_body(sf: &SourceFile, f: &FnItem) -> Vec<(u32, String, String)> {
    let toks = &sf.tokens;
    let mut found = Vec::new();
    let mut i = f.body.0 + 1;
    while i < f.body.1 {
        if toks[i].is_comment() || sf.in_attr(i) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        if let Some(id) = toks[i].ident() {
            let next = sf.next_code(i + 1);
            let next_is = |c: char| next.is_some_and(|n| toks[n].is_punct(c));
            match id {
                "Box" if path_call(sf, i, "new") => {
                    found.push((
                        line,
                        "`Box::new` (heap allocation)".into(),
                        "Box::new".into(),
                    ));
                }
                "String" if path_call(sf, i, "from") => {
                    found.push((
                        line,
                        "`String::from` (allocation)".into(),
                        "String::from".into(),
                    ));
                }
                "format" if next_is('!') => {
                    found.push((line, "`format!` (allocation)".into(), "format!".into()));
                }
                "vec" if next_is('!') => {
                    found.push((line, "`vec!` (allocation)".into(), "vec!".into()));
                }
                "push" | "to_vec" | "to_owned" | "to_string" | "clone"
                    if method_call(sf, i) && (id == "push" || zero_arg_call(sf, i)) =>
                {
                    let what = if id == "push" {
                        "`.push()` (possible reallocation)".to_string()
                    } else {
                        format!("`.{id}()` (allocation)")
                    };
                    found.push((line, what, format!(".{id}()")));
                }
                "lock" | "read" | "write" if method_call(sf, i) && zero_arg_call(sf, i) => {
                    found.push((
                        line,
                        format!("blocking `.{id}()` (lock acquisition)"),
                        format!(".{id}()"),
                    ));
                }
                _ => {}
            }
        }
        i += 1;
    }
    // An adjacent `LINT: allow(hot-path-alloc)` is handled centrally by
    // the engine; nothing to do here.
    found
}

/// `Name :: method (` at token `i` = `Name`.
fn path_call(sf: &SourceFile, i: usize, method: &str) -> bool {
    let toks = &sf.tokens;
    let Some(c1) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[c1].is_punct(':') {
        return false;
    }
    let Some(c2) = sf.next_code(c1 + 1) else {
        return false;
    };
    if !toks[c2].is_punct(':') {
        return false;
    }
    let Some(m) = sf.next_code(c2 + 1) else {
        return false;
    };
    if toks[m].ident() != Some(method) {
        return false;
    }
    let Some(p) = sf.next_code(m + 1) else {
        return false;
    };
    toks[p].is_punct('(')
}

/// Token `i` is a method name: preceded by `.`, followed by `(`.
fn method_call(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    let prev_dot = sf.prev_code(i).is_some_and(|p| toks[p].is_punct('.'));
    let next_paren = sf.next_code(i + 1).is_some_and(|n| toks[n].is_punct('('));
    prev_dot && next_paren
}

/// The call at token `i` has an empty argument list.
fn zero_arg_call(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[open].is_punct('(') {
        return false;
    }
    sf.next_code(open + 1)
        .is_some_and(|close| toks[close].is_punct(')'))
}

/// Names this function calls: free calls `name(`, path calls `a::name(`,
/// and method calls `.name(`.
fn callees(sf: &SourceFile, f: &FnItem) -> BTreeSet<String> {
    let toks = &sf.tokens;
    let mut out = BTreeSet::new();
    let mut i = f.body.0 + 1;
    while i < f.body.1 {
        if toks[i].is_comment() || sf.in_attr(i) {
            i += 1;
            continue;
        }
        if let Some(id) = toks[i].ident() {
            if !super::is_keyword(id) && sf.next_code(i + 1).is_some_and(|n| toks[n].is_punct('('))
            {
                out.insert(id.to_string());
                // Also try the `Type::method` qualified form, so
                // manifest-style names resolve.
                if let Some(prev) = sf.prev_code(i) {
                    if toks[prev].is_punct(':') {
                        if let Some(p2) = sf.prev_code(prev) {
                            if toks[p2].is_punct(':') {
                                if let Some(p3) = sf.prev_code(p2) {
                                    if let Some(ty) = toks[p3].ident() {
                                        out.insert(format!("{ty}::{id}"));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::HotPath;
    use std::path::PathBuf;

    fn run(src: &str, funcs: &[&str]) -> Vec<Violation> {
        let sf = SourceFile::from_text(PathBuf::from("m.rs"), "crates/x/src/m.rs".into(), "x", src);
        let m = Manifest {
            hotpaths: funcs
                .iter()
                .map(|f| HotPath {
                    krate: "x".into(),
                    func: (*f).to_string(),
                })
                .collect(),
            ..Manifest::default()
        };
        let mut lint = HotPathAlloc::default();
        let mut out = Vec::new();
        lint.check_file(&sf, &m, &mut out);
        lint.finish(&[sf], &m, &mut out);
        out
    }

    #[test]
    fn direct_format_fires() {
        let out = run("fn hot() { let s = format!(\"x{}\", 1); }", &["hot"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("format!"));
    }

    #[test]
    fn transitive_alloc_fires_with_chain() {
        let out = run(
            "fn hot() { helper(); }\nfn helper() { let b = Box::new(1); }",
            &["hot"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("Box::new"));
        assert!(out[0].message.contains("via hot -> helper"));
    }

    #[test]
    fn clean_hot_path_is_clean() {
        let out = run(
            "fn hot(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); helper(x); }\n\
             fn helper(x: &AtomicU64) { x.load(Ordering::Acquire); }",
            &["hot"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn blocking_lock_fires() {
        let out = run("fn hot(s: &S) { let g = s.m.lock(); }", &["hot"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("lock"));
    }

    #[test]
    fn clone_with_args_is_not_flagged() {
        // `.clone()` zero-arg fires; io `.read(buf)` style non-zero-arg
        // receivers of banned names do not.
        let out = run(
            "fn hot(s: &S, buf: &mut [u8]) { s.file.read(buf); }",
            &["hot"],
        );
        assert!(out.is_empty(), "{out:?}");
        let out = run("fn hot(v: &Val) -> Val { v.clone() }", &["hot"]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ambiguous_callee_stops_traversal() {
        let out = run(
            "fn hot() { go(); }\n\
             fn go() { let b = Box::new(1); }\n\
             mod other { pub fn go() {} }",
            &["hot"],
        );
        // Two `go` definitions: traversal refuses to guess, so the
        // Box::new in one of them is not attributed to the hot path.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_function_is_a_manifest_violation() {
        let out = run("fn other() {}", &["hot"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
    }

    #[test]
    fn method_roots_resolve_by_qualified_name() {
        let out = run(
            "struct S;\nimpl S { fn serve(&self) { let v = vec![1]; } }",
            &["S::serve"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("vec!"));
    }
}
