//! Report rendering: human text and machine-readable JSON.
//!
//! The JSON shape is the CI artifact contract:
//!
//! ```json
//! {
//!   "files_scanned": 100,
//!   "summary": { "new": 0, "baselined": 3,
//!                "per_lint": { "lock-order": 0, … } },
//!   "lints": [ { "name": "lock-order", "description": "…" }, … ],
//!   "violations": [ { "lint": "…", "file": "…", "line": 1,
//!                     "symbol": "…", "message": "…",
//!                     "baselined": false }, … ]
//! }
//! ```

use crate::lints::Violation;
use std::collections::BTreeMap;

/// Everything one analyzer run produced.
pub struct Report {
    /// All violations, baselined ones included, in lint/file/line order.
    pub violations: Vec<Violation>,
    /// Count of violations the baseline did not absorb.
    pub new_count: usize,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Registered lints: `(name, description)`.
    pub lints: Vec<(&'static str, &'static str)>,
}

impl Report {
    /// Human-readable summary for stderr/stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            if v.baselined {
                continue;
            }
            out.push_str(&format!(
                "{}:{}: [{}] {} (in {})\n",
                v.file, v.line, v.lint, v.message, v.symbol
            ));
        }
        let baselined = self.violations.len() - self.new_count;
        out.push_str(&format!(
            "dcs-lint: {} file(s), {} lint(s): {} new violation(s), {} baselined\n",
            self.files_scanned,
            self.lints.len(),
            self.new_count,
            baselined
        ));
        out
    }

    /// The JSON artifact.
    pub fn render_json(&self) -> String {
        let mut per_lint: BTreeMap<&str, usize> = self.lints.iter().map(|(n, _)| (*n, 0)).collect();
        for v in &self.violations {
            if !v.baselined {
                *per_lint.entry(v.lint).or_default() += 1;
            }
        }
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"summary\": {\n");
        s.push_str(&format!("    \"new\": {},\n", self.new_count));
        s.push_str(&format!(
            "    \"baselined\": {},\n",
            self.violations.len() - self.new_count
        ));
        s.push_str("    \"per_lint\": {");
        let mut first = true;
        for (name, n) in &per_lint {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(" \"{}\": {}", esc(name), n));
        }
        s.push_str(" }\n  },\n");
        s.push_str("  \"lints\": [\n");
        for (i, (name, desc)) in self.lints.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"name\": \"{}\", \"description\": \"{}\" }}{}\n",
                esc(name),
                esc(desc),
                if i + 1 < self.lints.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"symbol\": \"{}\", \"message\": \"{}\", \"fingerprint\": \"{}\", \
                 \"baselined\": {} }}{}\n",
                esc(v.lint),
                esc(&v.file),
                v.line,
                esc(&v.symbol),
                esc(&v.message),
                esc(&v.fingerprint),
                v.baselined,
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![
                Violation {
                    lint: "virtual-clock",
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    symbol: "f".into(),
                    message: "bad \"clock\"".into(),
                    fingerprint: "virtual-clock|crates/x/src/a.rs|f|Instant".into(),
                    baselined: false,
                },
                Violation {
                    lint: "lock-order",
                    file: "crates/x/src/b.rs".into(),
                    line: 9,
                    symbol: "g".into(),
                    message: "frozen".into(),
                    fingerprint: "lock-order|x|cycle|a,b".into(),
                    baselined: true,
                },
            ],
            new_count: 1,
            files_scanned: 2,
            lints: vec![("virtual-clock", "desc"), ("lock-order", "desc2")],
        }
    }

    #[test]
    fn text_lists_only_new() {
        let t = sample().render_text();
        assert!(t.contains("crates/x/src/a.rs:3"));
        assert!(!t.contains("crates/x/src/b.rs"));
        assert!(t.contains("1 new violation(s), 1 baselined"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = sample().render_json();
        assert!(j.contains("\\\"clock\\\""));
        assert!(j.contains("\"new\": 1"));
        assert!(j.contains("\"baselined\": 1"));
        assert!(j.contains("\"virtual-clock\": 1"));
        assert!(j.contains("\"lock-order\": 0"));
        assert!(j.contains("\"baselined\": true"));
    }
}
