//! SARIF 2.1.0 rendering, so CI can upload findings as GitHub
//! code-scanning annotations.
//!
//! Hand-assembled JSON like [`crate::report`] (std-only crate). Only
//! non-baselined findings are emitted — frozen debt is invisible to the
//! gate and should be invisible to annotations too. Violation
//! fingerprints ride in `partialFingerprints` under the
//! `dcsLint/v1` key, giving GitHub the same line-churn-stable identity
//! the baseline file uses. Manifest-anchored findings report line 0
//! internally; SARIF regions are 1-based, so those clamp to 1.

use crate::report::{esc, Report};

/// Render the report as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"dcs-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/dcs-lint\",\n");
    s.push_str("          \"rules\": [\n");
    let rules: Vec<String> = report
        .lints
        .iter()
        .map(|(name, desc)| {
            format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                esc(name),
                esc(desc)
            )
        })
        .collect();
    s.push_str(&rules.join(",\n"));
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    let results: Vec<String> = report
        .violations
        .iter()
        .filter(|v| !v.baselined)
        .map(|v| {
            format!(
                "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}\n          ],\n          \"partialFingerprints\": {{\"dcsLint/v1\": \"{}\"}}\n        }}",
                esc(v.lint),
                esc(&v.message),
                esc(&v.file),
                v.line.max(1),
                esc(&v.fingerprint),
            )
        })
        .collect();
    s.push_str(&results.join(",\n"));
    if !results.is_empty() {
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Violation;

    fn report_with(violations: Vec<Violation>) -> Report {
        Report {
            new_count: violations.iter().filter(|v| !v.baselined).count(),
            violations,
            files_scanned: 1,
            lints: vec![("lock-order", "graph must be acyclic")],
        }
    }

    fn violation(line: u32, baselined: bool) -> Violation {
        Violation {
            lint: "lock-order",
            file: "crates/x/src/m.rs".into(),
            line,
            symbol: "f".into(),
            message: "cycle: \"a\" -> b".into(),
            fingerprint: "lock-order|crates/x/src/m.rs|f|cycle".into(),
            baselined,
        }
    }

    #[test]
    fn renders_rule_result_and_fingerprint() {
        let s = render(&report_with(vec![violation(7, false)]));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("dcsLint/v1"));
        assert!(s.contains("cycle: \\\"a\\\" -> b")); // message escaped
    }

    #[test]
    fn baselined_findings_are_omitted() {
        let s = render(&report_with(vec![violation(7, true)]));
        assert!(!s.contains("ruleId\": \"lock-order\"") || !s.contains("startLine"));
        assert!(s.contains("\"results\": ["));
    }

    #[test]
    fn line_zero_clamps_to_one() {
        let s = render(&report_with(vec![violation(0, false)]));
        assert!(s.contains("\"startLine\": 1"));
    }
}
