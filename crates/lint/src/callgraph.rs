//! The workspace call graph: one node per non-test function, edges for
//! every call the resolver can name a target for.
//!
//! Resolution is deliberately conservative — an edge exists only when
//! the target is certain, because a wrong edge turns into a wrong
//! transitive finding three crates away:
//!
//! * **Path calls** resolve by crate: `dcs_core::helper(…)` and
//!   `dcs_core::Type::method(…)` map `dcs_x` to `crates/x`;
//!   `crate::`/`self::`/`super::` stay in the caller's crate; `Self::m`
//!   uses the enclosing impl type. `std::`/`core::`/external paths get
//!   no edge (their *effects* are modelled as intrinsics instead).
//! * **Method calls** (`recv.name(…)`) resolve through the manifest's
//!   `[dispatch]` table (the policy answer to dynamic dispatch: the
//!   edge is the union of the listed implementations), else to the
//!   unique workspace method of that name — unless the name shadows a
//!   common `std` method (`push`, `lock`, `send`, …), where guessing
//!   would wire arbitrary std calls into workspace functions.
//! * **Bare calls** (`helper(…)`) resolve same-crate first, then to a
//!   globally unique free function; two candidates mean no edge.
//!
//! The walk that finds calls also models guard scopes (ported from the
//! lock-order lint: block frames, statement temporaries, `drop(g)`),
//! so every call site and lock site knows which lock labels were held
//! at it — the raw material for workspace lock-order analysis — and
//! extracts the intrinsic [`EffectSite`]s the effect inference seeds
//! from.

use crate::effects::{site_waived, Effect, EffectSite};
use crate::lexer::Tok;
use crate::manifest::Manifest;
use crate::source::{FnItem, SourceFile};
use std::collections::BTreeMap;

/// Index into [`CallGraph::nodes`].
pub type NodeId = usize;

/// One lock acquisition site (`.lock()` / zero-arg `.read()` /
/// `.write()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// 1-based line.
    pub line: u32,
    /// Crate-qualified label: `crate:receiver` (`server:self.state`).
    pub label: String,
    /// Which method acquired it (`lock` / `read` / `write`).
    pub method: String,
    /// Labels already held when this one was acquired, outermost first.
    pub held: Vec<String>,
    /// True when the same label was already held (self-deadlock).
    pub recursive: bool,
}

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line.
    pub line: u32,
    /// What the call looked like in source (`dcs_core::helper`,
    /// `.kv_get`).
    pub display: String,
    /// Resolved targets (more than one only for `[dispatch]` methods).
    pub targets: Vec<NodeId>,
    /// Lock labels held across the call, outermost first.
    pub held: Vec<String>,
}

/// One function in the graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the analysis' file slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Owning crate (directory name, no `dcs-` prefix).
    pub krate: String,
    /// Qualified name (`Type::method` or bare).
    pub name: String,
    /// Unqualified name.
    pub short: String,
    /// Report name: `dcs-<crate>::<name>`.
    pub display: String,
    /// From a binary target (`src/bin/**`, `src/main.rs`).
    pub is_bin: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Resolved call sites, in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisition sites, in body order.
    pub locks: Vec<LockSite>,
    /// Intrinsic effect sites, in body order.
    pub intrinsics: Vec<EffectSite>,
}

/// The whole-workspace graph plus its SCC decomposition.
pub struct CallGraph {
    /// All non-test functions.
    pub nodes: Vec<Node>,
    /// SCCs in callee-first (reverse topological) order — the fixpoint
    /// processing order.
    pub sccs: Vec<Vec<NodeId>>,
    /// `scc_of[node]` = index into `sccs`.
    pub scc_of: Vec<usize>,
    /// `(crate, qualified-name)` → nodes.
    by_qual: BTreeMap<(String, String), Vec<NodeId>>,
}

/// Method names that shadow common `std`/collection methods: a bare
/// `.name(…)` call never resolves to a workspace function through them
/// even if that function is globally unique — `vec.push(x)` must not
/// become an edge into some crate's `Queue::push`. The `[dispatch]`
/// table overrides this list explicitly.
#[rustfmt::skip]
const STD_SHADOW: &[&str] = &[
    "add", "all", "and_then", "any", "as_mut", "as_ref", "clear", "clone", "cloned", "cmp",
    "collect", "compare_exchange", "compare_exchange_weak", "contains", "contains_key", "count",
    "drain", "drop", "end", "entry", "eq", "expect", "extend", "fetch_add", "fetch_and",
    "fetch_max", "fetch_min", "fetch_nand", "fetch_or", "fetch_sub", "fetch_update",
    "fetch_xor", "filter", "find", "flush", "fmt", "fold", "from", "get", "get_mut",
    "get_or_insert", "hash", "insert", "into", "into_iter", "is_empty", "is_none", "is_some",
    "iter", "iter_mut", "join", "last", "len", "load", "lock", "map", "max", "min", "new",
    "next", "ok", "or_else", "parse", "poll", "pop", "position", "push", "read", "recv",
    "remove", "reserve", "resize", "retain", "rev", "send", "sort", "spawn", "split", "start",
    "store", "sum", "swap", "take", "then", "trim", "truncate", "unwrap", "wait", "write",
    "zip",
];

/// Path heads that never name a workspace crate.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc", "libc", "parking_lot"];

impl CallGraph {
    /// Nodes whose crate and qualified name match.
    pub fn lookup(&self, krate: &str, name: &str) -> &[NodeId] {
        self.by_qual
            .get(&(krate.to_string(), name.to_string()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Build the graph over every non-test function in `files`.
    pub fn build(files: &[SourceFile], manifest: &Manifest) -> CallGraph {
        // Pass 1: nodes and name indices.
        let mut nodes: Vec<Node> = Vec::new();
        let mut by_qual: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        // short method name → nodes (methods only).
        let mut by_method: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        // (crate, short) → nodes.
        let mut by_short_crate: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        // qualified name → nodes (any crate).
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, sf) in files.iter().enumerate() {
            for (ni, f) in sf.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let id = nodes.len();
                nodes.push(Node {
                    file: fi,
                    fn_idx: ni,
                    krate: sf.crate_name.clone(),
                    name: f.name.clone(),
                    short: f.short.clone(),
                    display: format!("dcs-{}::{}", sf.crate_name, f.name),
                    is_bin: sf.is_bin,
                    line: f.line,
                    calls: Vec::new(),
                    locks: Vec::new(),
                    intrinsics: Vec::new(),
                });
                by_qual
                    .entry((sf.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                if f.name != f.short {
                    by_method.entry(f.short.clone()).or_default().push(id);
                }
                by_short_crate
                    .entry((sf.crate_name.clone(), f.short.clone()))
                    .or_default()
                    .push(id);
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        let idx = Indices {
            by_qual: &by_qual,
            by_method: &by_method,
            by_short_crate: &by_short_crate,
            by_name: &by_name,
        };

        // Pass 2: walk each body once — locks, calls, intrinsics.
        for id in 0..nodes.len() {
            let sf = &files[nodes[id].file];
            let f = &sf.fns[nodes[id].fn_idx];
            let walked = walk_body(sf, f, manifest, &idx, nodes[id].name.as_str());
            nodes[id].locks = walked.locks;
            nodes[id].calls = walked.calls;
            nodes[id].intrinsics = walked.intrinsics;
        }

        // Manifest-declared blocking functions: seed a node-level
        // intrinsic so the contract shows up even when the body doesn't.
        for hp in &manifest.declared_blocking {
            if let Some(ids) = by_qual.get(&(hp.krate.clone(), hp.func.clone())) {
                for &id in ids {
                    let line = nodes[id].line;
                    nodes[id].intrinsics.push(EffectSite {
                        effect: Effect::BlocksOnIo,
                        line,
                        what: format!("declared-blocking `{}` (manifest [effects])", hp.func),
                        detail: "declared-blocking".into(),
                    });
                }
            }
        }

        let (sccs, scc_of) = tarjan(&nodes);
        CallGraph {
            nodes,
            sccs,
            scc_of,
            by_qual,
        }
    }
}

/// The name indices the resolver consults.
struct Indices<'a> {
    by_qual: &'a BTreeMap<(String, String), Vec<NodeId>>,
    by_method: &'a BTreeMap<String, Vec<NodeId>>,
    by_short_crate: &'a BTreeMap<(String, String), Vec<NodeId>>,
    by_name: &'a BTreeMap<String, Vec<NodeId>>,
}

impl Indices<'_> {
    fn qual(&self, krate: &str, name: &str) -> &[NodeId] {
        self.by_qual
            .get(&(krate.to_string(), name.to_string()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

struct Walked {
    locks: Vec<LockSite>,
    calls: Vec<CallSite>,
    intrinsics: Vec<EffectSite>,
}

/// A live guard in some block frame (lock-order guard model).
#[derive(Debug, Clone)]
struct Held {
    label: String,
    /// Binding name when `let`-bound (for `drop(g)` release).
    binding: Option<String>,
    /// When true, release at the next `;` at this depth.
    stmt_scoped: bool,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Walk one function body: guard frames, lock sites, resolved calls,
/// intrinsic effects. One pass, token order.
fn walk_body(
    sf: &SourceFile,
    f: &FnItem,
    manifest: &Manifest,
    idx: &Indices<'_>,
    fn_name: &str,
) -> Walked {
    let toks = &sf.tokens;
    let krate = sf.crate_name.as_str();
    let clock_allowed = sf.is_bin
        || manifest
            .clock_allow
            .iter()
            .any(|p| sf.rel.starts_with(p.as_str()));
    let mut out = Walked {
        locks: Vec::new(),
        calls: Vec::new(),
        intrinsics: Vec::new(),
    };
    let mut frames: Vec<Vec<Held>> = vec![Vec::new()];
    let held_labels = |frames: &[Vec<Held>]| -> Vec<String> {
        frames.iter().flatten().map(|h| h.label.clone()).collect()
    };
    let mut i = f.body.0 + 1;
    while i < f.body.1 {
        let t = &toks[i];
        if t.is_comment() || sf.in_attr(i) {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            frames.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            frames.pop();
            if frames.is_empty() {
                break;
            }
            // The statement a nested block belongs to (`for … { }`,
            // `if … { }`) ends at its closing brace: release the
            // enclosing frame's statement-scoped temporaries.
            if let Some(top) = frames.last_mut() {
                top.retain(|h| !h.stmt_scoped);
            }
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            if let Some(top) = frames.last_mut() {
                top.retain(|h| !h.stmt_scoped);
            }
            i += 1;
            continue;
        }
        if t.ident() == Some("drop") {
            // `drop(g)` releases a named guard anywhere on the stack.
            if let Some((name, end)) = single_ident_arg(sf, i) {
                for frame in frames.iter_mut() {
                    frame.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                }
                i = end;
                continue;
            }
        }
        let line = t.line;
        let waived = |effect: Effect| site_waived(sf, line, sf.stmt_first_line(i), effect.waiver());
        if let Some(id) = t.ident() {
            let next_is = |c: char| sf.next_code(i + 1).is_some_and(|n| toks[n].is_punct(c));
            // Macros first: never calls, sometimes intrinsics.
            if next_is('!') {
                let effect = match id {
                    "format" | "vec" => Some((
                        Effect::Allocates,
                        format!("`{id}!` (allocation)"),
                        format!("{id}!"),
                    )),
                    _ if PANIC_MACROS.contains(&id) => {
                        Some((Effect::MayPanic, format!("`{id}!`"), format!("{id}!")))
                    }
                    _ => None,
                };
                if let Some((e, what, detail)) = effect {
                    if !waived(e) {
                        out.intrinsics.push(EffectSite {
                            effect: e,
                            line,
                            what,
                            detail,
                        });
                    }
                }
                i += 1;
                continue;
            }
            // Lock acquisition (zero-arg .lock/.read/.write) — modelled
            // as a lock site, never as a call edge.
            if is_acquire_at(sf, i) {
                let recv = receiver_text(sf, i);
                if !recv.is_empty() && !waived_lock(sf, line, sf.stmt_first_line(i)) {
                    let label = format!("{krate}:{recv}");
                    let held = held_labels(&frames);
                    let recursive = held.contains(&label);
                    out.locks.push(LockSite {
                        line,
                        label: label.clone(),
                        method: id.to_string(),
                        held,
                        recursive,
                    });
                    // Guard lifetime: `let`-bound guards live to end of
                    // block, inline temporaries to end of statement,
                    // `let _` drops immediately.
                    let (binding, immediate_drop) = if acquisition_ends_statement(sf, i) {
                        let_binding_for(sf, i)
                    } else {
                        (None, false)
                    };
                    if !immediate_drop {
                        if let Some(top) = frames.last_mut() {
                            top.push(Held {
                                label,
                                stmt_scoped: binding.is_none(),
                                binding,
                            });
                        }
                    }
                }
                i += 1;
                continue;
            }
            // Intrinsic effect sites.
            let prev_dot = sf.prev_code(i).is_some_and(|p| toks[p].is_punct('.'));
            if prev_dot && next_is('(') {
                let zero = zero_arg_call(sf, i);
                let intrinsic = match id {
                    "push" => Some((
                        Effect::Allocates,
                        "`.push()` (possible reallocation)".into(),
                    )),
                    "to_vec" | "to_owned" | "to_string" | "clone" if zero => {
                        Some((Effect::Allocates, format!("`.{id}()` (allocation)")))
                    }
                    "unwrap" | "expect" | "unwrap_unchecked" => {
                        Some((Effect::MayPanic, format!("`.{id}()`")))
                    }
                    "join" if zero => {
                        Some((Effect::BlocksOnIo, "`.join()` (blocks on thread)".into()))
                    }
                    "recv" if zero => {
                        Some((Effect::BlocksOnIo, "`.recv()` (blocking receive)".into()))
                    }
                    "recv_timeout" | "wait" | "wait_timeout" | "wait_while" => Some((
                        Effect::BlocksOnIo,
                        format!("`.{id}(…)` (blocks the thread)"),
                    )),
                    "send" => {
                        let recv = receiver_text(sf, i);
                        let last = recv.rsplit('.').next().unwrap_or(recv.as_str());
                        if manifest.bounded_senders.iter().any(|b| b == last) {
                            None
                        } else {
                            Some((
                                Effect::SendsUnbounded,
                                format!("`.send(…)` on `{recv}` (unbounded or blocking send)"),
                            ))
                        }
                    }
                    _ => None,
                };
                if let Some((e, what)) = intrinsic {
                    if !waived(e) {
                        let detail = if e == Effect::SendsUnbounded {
                            format!("send:{}", receiver_text(sf, i))
                        } else {
                            format!(".{id}()")
                        };
                        out.intrinsics.push(EffectSite {
                            effect: e,
                            line,
                            what,
                            detail,
                        });
                    }
                }
            }
            // `Box::new` / `String::from` allocation intrinsics.
            let alloc_ctor = (id == "Box" && path_call_to(sf, i, "new"))
                || (id == "String" && path_call_to(sf, i, "from"));
            if alloc_ctor && !waived(Effect::Allocates) {
                let (what, detail) = if id == "Box" {
                    ("`Box::new` (heap allocation)", "Box::new")
                } else {
                    ("`String::from` (allocation)", "String::from")
                };
                out.intrinsics.push(EffectSite {
                    effect: Effect::Allocates,
                    line,
                    what: what.into(),
                    detail: detail.into(),
                });
            }
            // Thread blocking intrinsics (any call shape).
            if matches!(id, "sleep" | "park" | "park_timeout")
                && next_is('(')
                && !waived(Effect::BlocksOnIo)
            {
                out.intrinsics.push(EffectSite {
                    effect: Effect::BlocksOnIo,
                    line,
                    what: format!("`{id}(…)` (blocks the thread)"),
                    detail: format!("{id}()"),
                });
            }
            // Wall-clock intrinsics.
            if (id == "Instant" || id == "SystemTime")
                && !clock_allowed
                && !waived(Effect::WallClock)
                && !site_waived(sf, line, sf.stmt_first_line(i), "virtual-clock")
            {
                out.intrinsics.push(EffectSite {
                    effect: Effect::WallClock,
                    line,
                    what: format!("`{id}` (real clock)"),
                    detail: id.to_string(),
                });
            }
            // Call edges.
            if next_is('(') && !super::lints::is_keyword(id) {
                let prev = sf.prev_code(i);
                let prev_is_fn = prev.is_some_and(|p| toks[p].ident() == Some("fn"));
                if !prev_is_fn {
                    let resolved = if prev_dot {
                        resolve_method(idx, manifest, id)
                    } else if prev.is_some_and(|p| toks[p].is_punct(':')) {
                        let segs = path_segments(sf, i);
                        resolve_path(idx, krate, fn_name, &segs)
                    } else if id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    {
                        resolve_bare(idx, krate, id)
                    } else {
                        Vec::new() // uppercase bare call: constructor/variant
                    };
                    if !resolved.is_empty() {
                        let display = if prev_dot {
                            format!(".{id}")
                        } else {
                            id.to_string()
                        };
                        out.calls.push(CallSite {
                            line,
                            display,
                            targets: resolved,
                            held: held_labels(&frames),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// `LINT: allow(effect-lock): reason` at an acquisition site makes the
/// acquisition invisible to the interprocedural analysis.
fn waived_lock(sf: &SourceFile, line: u32, stmt_first: u32) -> bool {
    site_waived(sf, line, stmt_first, "effect-lock")
}

/// Resolve a `.name(…)` method call.
fn resolve_method(idx: &Indices<'_>, manifest: &Manifest, name: &str) -> Vec<NodeId> {
    if let Some(targets) = manifest.dispatch.get(name) {
        return targets
            .iter()
            .flat_map(|hp| idx.qual(&hp.krate, &hp.func).iter().copied())
            .collect();
    }
    if STD_SHADOW.contains(&name) {
        return Vec::new();
    }
    match idx.by_method.get(name) {
        Some(ids) if ids.len() == 1 => ids.clone(),
        _ => Vec::new(),
    }
}

/// Resolve a bare `name(…)` call: same-crate unique, then workspace
/// unique.
fn resolve_bare(idx: &Indices<'_>, krate: &str, name: &str) -> Vec<NodeId> {
    let local = idx.qual(krate, name);
    match local.len() {
        1 => return local.to_vec(),
        0 => {}
        _ => return Vec::new(), // ambiguous in-crate: refuse to guess
    }
    if STD_SHADOW.contains(&name) {
        return Vec::new();
    }
    match idx.by_name.get(name) {
        Some(ids) if ids.len() == 1 => ids.clone(),
        _ => Vec::new(),
    }
}

/// Resolve a path call `a::b::name(…)` from its segment list.
fn resolve_path(idx: &Indices<'_>, cur_krate: &str, cur_fn: &str, segs: &[String]) -> Vec<NodeId> {
    if segs.len() < 2 {
        return Vec::new();
    }
    let first = segs[0].as_str();
    if EXTERNAL_ROOTS.contains(&first) {
        return Vec::new();
    }
    if first == "Self" {
        // `Self::m(…)` — the enclosing impl type's method.
        if let Some((ty, _)) = cur_fn.split_once("::") {
            let name = format!("{ty}::{}", segs[segs.len() - 1]);
            return unique(idx.qual(cur_krate, &name));
        }
        return Vec::new();
    }
    // Determine the crate and the in-crate path remainder.
    let (krate, rest, cross_crate): (String, &[String], bool) =
        if first == "crate" || first == "self" || first == "super" {
            (cur_krate.to_string(), &segs[1..], false)
        } else if let Some(k) = first.strip_prefix("dcs_") {
            (k.replace('_', "-"), &segs[1..], true)
        } else {
            (cur_krate.to_string(), segs, false)
        };
    if rest.is_empty() {
        return Vec::new();
    }
    let last = rest[rest.len() - 1].as_str();
    if is_type_name(last) {
        return Vec::new(); // `Mod::Type(…)` tuple-struct/variant construction
    }
    // `…::Type::method(…)` — qualified method.
    if rest.len() >= 2 && is_type_name(rest[rest.len() - 2].as_str()) {
        let qual = format!("{}::{last}", rest[rest.len() - 2]);
        let found = idx.qual(&krate, &qual);
        if !found.is_empty() {
            return unique(found);
        }
        // Unknown type in the caller's crate: a type imported from
        // elsewhere. Fall back to the unique workspace definition.
        if !cross_crate {
            if let Some(ids) = idx.by_name.get(&qual) {
                return unique(ids);
            }
        }
        return Vec::new();
    }
    // `…::module::function(…)` or `dcs_x::function(…)` — free function.
    let found = idx.qual(&krate, last);
    if !found.is_empty() {
        return unique(found);
    }
    // Module-qualified method-style helper: fall back to a unique short
    // name within the crate.
    match idx.by_short_crate.get(&(krate, last.to_string())) {
        Some(ids) => unique(ids),
        None => Vec::new(),
    }
}

fn unique(ids: &[NodeId]) -> Vec<NodeId> {
    if ids.len() == 1 {
        ids.to_vec()
    } else {
        Vec::new()
    }
}

fn is_type_name(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Path segments ending at the ident token `i`: for
/// `std :: thread :: sleep` at `sleep`, returns
/// `["std", "thread", "sleep"]`.
fn path_segments(sf: &SourceFile, i: usize) -> Vec<String> {
    let toks = &sf.tokens;
    let mut segs = vec![toks[i].ident().unwrap_or_default().to_string()];
    let mut j = i;
    while let Some(c2) = sf.prev_code(j) {
        if !toks[c2].is_punct(':') {
            break;
        }
        let Some(c1) = sf.prev_code(c2) else { break };
        if !toks[c1].is_punct(':') {
            break;
        }
        let Some(p) = sf.prev_code(c1) else { break };
        // Skip turbofish/generic closers conservatively: stop the path.
        let Some(id) = toks[p].ident() else { break };
        segs.push(id.to_string());
        j = p;
    }
    segs.reverse();
    segs
}

/// Is token `i` the method name of a zero-argument `.lock()`, `.read()`
/// or `.write()` call?
fn is_acquire_at(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    let Some(name) = toks[i].ident() else {
        return false;
    };
    if !matches!(name, "lock" | "read" | "write") {
        return false;
    }
    let Some(prev) = sf.prev_code(i) else {
        return false;
    };
    if !toks[prev].is_punct('.') {
        return false;
    }
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[open].is_punct('(') {
        return false;
    }
    let Some(close) = sf.next_code(open + 1) else {
        return false;
    };
    toks[close].is_punct(')')
}

/// The receiver chain to the left of the `.` before token `i`,
/// normalized to text: `self.inner.lock()` → `self.inner`;
/// `ledger().x.lock()` → `ledger().x`.
pub(crate) fn receiver_text(sf: &SourceFile, method_tok: usize) -> String {
    let toks = &sf.tokens;
    let Some(dot) = sf.prev_code(method_tok) else {
        return String::new();
    };
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // at the `.`
    while let Some(p) = sf.prev_code(j) {
        let t = &toks[p];
        match &t.tok {
            Tok::Ident(s) => {
                if super::lints::is_keyword(s) && s != "self" && s != "Self" {
                    break;
                }
                parts.push(s.clone());
                j = p;
            }
            Tok::Punct('.') | Tok::Punct(':') => {
                parts.push(if t.is_punct('.') { "." } else { ":" }.to_string());
                j = p;
            }
            Tok::Punct(')') => {
                // Balanced-paren hop: `ledger()` or `f(x)` receivers.
                let mut depth = 0usize;
                let mut k = p;
                loop {
                    if toks[k].is_punct(')') {
                        depth += 1;
                    } else if toks[k].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(prev) = sf.prev_code(k) else { break };
                    k = prev;
                }
                parts.push("()".to_string());
                j = k;
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// Does the acquisition at token `i` end its statement? The guard chain
/// may pass through `.unwrap()` / `.expect(…)` (the `std::sync` shapes)
/// and must then hit `;` — any other continuation means the guard is a
/// temporary inside a larger expression.
fn acquisition_ends_statement(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    // Token after the acquisition's `()`.
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    let Some(mut k) = sf.next_code(open + 1) else {
        return false;
    }; // at the `)` (zero-arg call, checked by is_acquire_at)
    loop {
        let Some(next) = sf.next_code(k + 1) else {
            return false;
        };
        if toks[next].is_punct(';') {
            return true;
        }
        if !toks[next].is_punct('.') {
            return false;
        }
        let Some(m) = sf.next_code(next + 1) else {
            return false;
        };
        if !matches!(toks[m].ident(), Some("unwrap") | Some("expect")) {
            return false;
        }
        // Hop the adapter's balanced argument list.
        let Some(o) = sf.next_code(m + 1) else {
            return false;
        };
        if !toks[o].is_punct('(') {
            return false;
        }
        let mut depth = 0usize;
        let mut j = o;
        loop {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
            if j >= toks.len() {
                return false;
            }
        }
        k = j;
    }
}

/// Is the statement this acquisition belongs to a `let` binding? Returns
/// `(binding_name, immediate_drop)`; `let _ = …` is an immediate drop.
fn let_binding_for(sf: &SourceFile, i: usize) -> (Option<String>, bool) {
    let toks = &sf.tokens;
    // Walk back to the statement start.
    let mut start = i;
    for j in (0..i).rev() {
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start = j;
    }
    if toks[start].ident() != Some("let") {
        return (None, false);
    }
    // `let [mut] name [: ty] = …` — find the first ident after `let`
    // (skipping `mut`); `_` lexes as an identifier.
    let mut j = start + 1;
    while j < i {
        if let Some(id) = toks[j].ident() {
            if id == "mut" {
                j += 1;
                continue;
            }
            if id == "_" {
                return (None, true);
            }
            // A pattern binding (`let Some(g) = …`, `let res::Ok(g) = …`)
            // destructures the value; the guard itself is a temporary.
            // (`let g: Ty = …` — a single `:` — is still a binding.)
            if let Some(n) = sf.next_code(j + 1) {
                let paren = toks[n].is_punct('(');
                let path = toks[n].is_punct(':')
                    && sf.next_code(n + 1).is_some_and(|n2| toks[n2].is_punct(':'));
                if paren || path {
                    return (None, false);
                }
            }
            return (Some(id.to_string()), false);
        }
        if toks[j].is_comment() {
            j += 1;
            continue;
        }
        break;
    }
    (None, false)
}

/// `drop ( ident )` → the ident and the index of the `)`.
fn single_ident_arg(sf: &SourceFile, drop_tok: usize) -> Option<(String, usize)> {
    let toks = &sf.tokens;
    let open = sf.next_code(drop_tok + 1)?;
    if !toks[open].is_punct('(') {
        return None;
    }
    let arg = sf.next_code(open + 1)?;
    let name = toks[arg].ident()?.to_string();
    let close = sf.next_code(arg + 1)?;
    if !toks[close].is_punct(')') {
        return None;
    }
    Some((name, close))
}

/// `Name :: method (` starting at the `Name` token `i`.
fn path_call_to(sf: &SourceFile, i: usize, method: &str) -> bool {
    let toks = &sf.tokens;
    let Some(c1) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[c1].is_punct(':') {
        return false;
    }
    let Some(c2) = sf.next_code(c1 + 1) else {
        return false;
    };
    if !toks[c2].is_punct(':') {
        return false;
    }
    let Some(m) = sf.next_code(c2 + 1) else {
        return false;
    };
    if toks[m].ident() != Some(method) {
        return false;
    }
    let Some(p) = sf.next_code(m + 1) else {
        return false;
    };
    toks[p].is_punct('(')
}

/// The call at token `i` has an empty argument list.
fn zero_arg_call(sf: &SourceFile, i: usize) -> bool {
    let toks = &sf.tokens;
    let Some(open) = sf.next_code(i + 1) else {
        return false;
    };
    if !toks[open].is_punct('(') {
        return false;
    }
    sf.next_code(open + 1)
        .is_some_and(|close| toks[close].is_punct(')'))
}

/// Iterative Tarjan SCC. Emits components callee-first (a component is
/// finished only after everything reachable from it), which is exactly
/// the bottom-up summary order.
fn tarjan(nodes: &[Node]) -> (Vec<Vec<NodeId>>, Vec<usize>) {
    let n = nodes.len();
    let edges: Vec<Vec<NodeId>> = nodes
        .iter()
        .map(|node| {
            node.calls
                .iter()
                .flat_map(|c| c.targets.iter().copied())
                .collect()
        })
        .collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut counter = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Explicit DFS: (node, next edge position).
        let mut work: Vec<(NodeId, usize)> = vec![(root, 0)];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei < edges[v].len() {
                let w = edges[v][*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(krate: &str, name: &str, src: &str) -> SourceFile {
        SourceFile::from_text(
            PathBuf::from(name),
            format!("crates/{krate}/src/{name}"),
            krate,
            src,
        )
    }

    fn node<'g>(g: &'g CallGraph, display: &str) -> (&'g Node, NodeId) {
        let id = g
            .nodes
            .iter()
            .position(|n| n.display == display)
            .unwrap_or_else(|| panic!("no node `{display}`"));
        (&g.nodes[id], id)
    }

    fn targets(g: &CallGraph, from: &str) -> Vec<String> {
        let (n, _) = node(g, from);
        n.calls
            .iter()
            .flat_map(|c| c.targets.iter())
            .map(|&t| g.nodes[t].display.clone())
            .collect()
    }

    #[test]
    fn bare_call_resolves_same_crate() {
        let files = [file("x", "a.rs", "fn top() { helper(); }\nfn helper() {}")];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-x::top"), vec!["dcs-x::helper"]);
    }

    #[test]
    fn ambiguous_bare_call_gets_no_edge() {
        let files = [file(
            "x",
            "a.rs",
            "fn top() { go(); }\nfn go() {}\nmod other { pub fn go() {} }",
        )];
        let g = CallGraph::build(&files, &Manifest::default());
        assert!(targets(&g, "dcs-x::top").is_empty());
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let files = [
            file("a", "a.rs", "pub fn caller() { dcs_b::helper(); }"),
            file("b", "b.rs", "pub fn helper() {}"),
        ];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-a::caller"), vec!["dcs-b::helper"]);
    }

    #[test]
    fn cross_crate_method_path_resolves() {
        let files = [
            file("a", "a.rs", "pub fn caller(x: &X) { dcs_b::Dev::go(x); }"),
            file(
                "b",
                "b.rs",
                "pub struct Dev;\nimpl Dev { pub fn go(&self) {} }",
            ),
        ];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-a::caller"), vec!["dcs-b::Dev::go"]);
    }

    #[test]
    fn unique_method_call_resolves() {
        let files = [
            file("a", "a.rs", "pub fn caller(d: &Dev) { d.wall_wait(); }"),
            file(
                "b",
                "b.rs",
                "pub struct Dev;\nimpl Dev { pub fn wall_wait(&self) {} }",
            ),
        ];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-a::caller"), vec!["dcs-b::Dev::wall_wait"]);
    }

    #[test]
    fn std_shadow_method_gets_no_edge() {
        // `.push(…)` must not resolve even when a workspace `push`
        // method is globally unique.
        let files = [
            file("a", "a.rs", "pub fn caller(v: &mut Q) { v.push(1); }"),
            file(
                "b",
                "b.rs",
                "pub struct Q;\nimpl Q { pub fn push(&mut self, x: u32) { grow(); } }\nfn grow() {}",
            ),
        ];
        let g = CallGraph::build(&files, &Manifest::default());
        assert!(targets(&g, "dcs-a::caller").is_empty());
    }

    #[test]
    fn dispatch_table_overrides_and_unions() {
        let files = [
            file("a", "a.rs", "pub fn caller(b: &dyn Kv) { b.kv_get(1); }"),
            file(
                "b",
                "b.rs",
                "pub struct S1;\nimpl Kv for S1 { fn kv_get(&self, k: u64) {} }\n\
                 pub struct S2;\nimpl Kv for S2 { fn kv_get(&self, k: u64) {} }",
            ),
        ];
        let m =
            Manifest::parse("[dispatch]\nkv_get = [\"dcs-b::S1::kv_get\", \"dcs-b::S2::kv_get\"]")
                .unwrap();
        let g = CallGraph::build(&files, &m);
        assert_eq!(
            targets(&g, "dcs-a::caller"),
            vec!["dcs-b::S1::kv_get", "dcs-b::S2::kv_get"]
        );
    }

    #[test]
    fn self_path_resolves_to_impl_method() {
        let files = [file(
            "x",
            "a.rs",
            "struct S;\nimpl S { fn a(&self) { Self::b(); } fn b() {} }",
        )];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-x::S::a"), vec!["dcs-x::S::b"]);
    }

    #[test]
    fn crate_path_stays_in_crate() {
        let files = [
            file(
                "a",
                "a.rs",
                "pub fn caller() { crate::helper(); }\npub fn helper() {}",
            ),
            file("b", "b.rs", "pub fn helper() {}"),
        ];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(targets(&g, "dcs-a::caller"), vec!["dcs-a::helper"]);
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let files = [file(
            "x",
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )];
        let g = CallGraph::build(&files, &Manifest::default());
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "live");
    }

    #[test]
    fn call_sites_record_held_locks() {
        let files = [file(
            "x",
            "a.rs",
            "fn f(s: &S) { let g = s.table.lock(); step(); }\nfn step() {}",
        )];
        let g = CallGraph::build(&files, &Manifest::default());
        let (n, _) = node(&g, "dcs-x::f");
        assert_eq!(n.calls.len(), 1);
        assert_eq!(n.calls[0].held, vec!["x:s.table"]);
    }

    #[test]
    fn scc_order_is_callee_first() {
        let files = [file("x", "a.rs", "fn top() { leaf(); }\nfn leaf() {}")];
        let g = CallGraph::build(&files, &Manifest::default());
        let (_, top) = node(&g, "dcs-x::top");
        let (_, leaf) = node(&g, "dcs-x::leaf");
        assert!(g.scc_of[leaf] < g.scc_of[top]);
    }

    #[test]
    fn crlf_files_keep_line_numbers() {
        // Lexer regression: CRLF line endings must not shift the line
        // accounting the whole engine anchors reports on.
        let src = "fn top() {\r\n    helper();\r\n}\r\nfn helper() {\r\n    let b = Box::new(1);\r\n}\r\n";
        let files = [file("x", "a.rs", src)];
        let g = CallGraph::build(&files, &Manifest::default());
        let (top, _) = node(&g, "dcs-x::top");
        assert_eq!(top.calls.len(), 1);
        assert_eq!(top.calls[0].line, 2);
        let (helper, _) = node(&g, "dcs-x::helper");
        assert_eq!(helper.intrinsics.len(), 1);
        assert_eq!(helper.intrinsics[0].line, 5);
    }
}
