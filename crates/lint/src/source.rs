//! Parsed source model: files, functions, test regions, comment maps.
//!
//! On top of the raw token stream this module runs a *lightweight*
//! item/scope parser — enough structure for the lints without a real
//! grammar. It classifies every brace pair as a function body, an
//! `impl`/`mod` block, or "other" (match arms, struct literals, plain
//! blocks), qualifies method names by their `impl` type, and marks
//! everything under `#[cfg(test)]` / `#[test]` so lints skip test code.
//! Ambiguity degrades to the "other" class, which only ever makes lints
//! more conservative (a violation is attributed to the enclosing
//! function, or to the file when there is none).

use crate::lexer::{lex, Tok, Token};
use std::path::{Path, PathBuf};

/// A function item (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Qualified name: `Type::method` for methods, bare name otherwise.
    pub name: String,
    /// The unqualified name.
    pub short: String,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function is test-only (`#[test]`, or lexically
    /// inside a `#[cfg(test)]` module).
    pub in_test: bool,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (stable across
    /// machines: the report/baseline key).
    pub rel: String,
    /// Owning crate's directory name under `crates/`.
    pub crate_name: String,
    /// True for binary targets (`src/bin/**` or `src/main.rs`).
    pub is_bin: bool,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// Functions found, in source order.
    pub fns: Vec<FnItem>,
    /// Sorted token-index ranges lying inside `#[…]` attributes.
    attr_ranges: Vec<(usize, usize)>,
    /// Sorted token-index ranges lying inside `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Raw line text, for same-line comment lookups.
    lines: Vec<String>,
}

impl SourceFile {
    /// Read and parse one file. `root` anchors the workspace-relative
    /// path; `crate_name` is the `crates/<name>` directory.
    pub fn load(root: &Path, path: &Path, crate_name: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(Self::from_text(path.to_path_buf(), rel, crate_name, &text))
    }

    /// Parse from in-memory text (fixture tests use this too).
    pub fn from_text(path: PathBuf, rel: String, crate_name: &str, text: &str) -> SourceFile {
        let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
        let tokens = lex(text);
        let mut sf = SourceFile {
            path,
            rel,
            crate_name: crate_name.to_string(),
            is_bin,
            tokens,
            fns: Vec::new(),
            attr_ranges: Vec::new(),
            test_ranges: Vec::new(),
            lines: text.lines().map(|l| l.to_string()).collect(),
        };
        sf.parse_items();
        sf
    }

    /// True when token `i` sits inside an attribute (`#[…]`).
    pub fn in_attr(&self, i: usize) -> bool {
        in_ranges(&self.attr_ranges, i)
    }

    /// True when token `i` sits inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        in_ranges(&self.test_ranges, i)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= i && i <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// Name of the enclosing function, or `(file)` at item scope.
    pub fn context_name(&self, i: usize) -> String {
        self.enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "(file)".to_string())
    }

    /// The raw text of line `line` (1-based), if it exists.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// True when `line` carries a trailing `//` comment containing
    /// `marker`, or the contiguous comment block immediately above the
    /// statement containing `line` does. `stmt_first_line` is the first
    /// line of the enclosing statement (the block above is looked up
    /// there, so one comment covers a multi-line statement).
    pub fn has_adjacent_marker(&self, line: u32, stmt_first_line: u32, marker: &str) -> bool {
        if let Some(text) = self.trailing_comment(line) {
            if text.contains(marker) {
                return true;
            }
        }
        // Walk contiguous comment-only lines above the statement.
        let mut l = stmt_first_line.saturating_sub(1);
        while l >= 1 {
            let t = self.line_text(l).trim();
            if let Some(c) = t.strip_prefix("//") {
                if c.contains(marker) {
                    return true;
                }
                l -= 1;
            } else {
                break;
            }
        }
        false
    }

    /// The trailing `//` comment on `line`, if any (from the token
    /// stream, so comment-looking text inside strings does not count).
    pub fn trailing_comment(&self, line: u32) -> Option<&str> {
        self.tokens.iter().find_map(|t| match &t.tok {
            Tok::LineComment(s) if t.line == line => Some(s.as_str()),
            _ => None,
        })
    }

    /// First line of the statement containing token `i`: the line of the
    /// first code token after the previous `;`, `{` or `}` at any depth.
    pub fn stmt_first_line(&self, i: usize) -> u32 {
        let mut start = i;
        for j in (0..i).rev() {
            let t = &self.tokens[j];
            if t.is_comment() {
                continue;
            }
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            start = j;
        }
        self.tokens[start].line
    }

    /// Next code (non-comment) token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.tokens.len() {
            if !self.tokens[i].is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Previous code (non-comment) token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_comment())
    }

    /// The item/scope pass: classify braces, find functions, mark
    /// attribute and test ranges.
    fn parse_items(&mut self) {
        #[derive(Clone)]
        enum Ctx {
            /// `impl` block for the named type.
            Impl(String),
            /// Function body (index into `self.fns`).
            Fn(usize),
            /// Anything else.
            Other,
        }
        let toks = &self.tokens;
        let n = toks.len();
        let mut stack: Vec<Ctx> = Vec::new();
        // Tokens since the last statement/brace boundary, attrs filtered.
        let mut window: Vec<usize> = Vec::new();
        // Attributes seen since the last boundary (token ranges).
        let mut pending_attrs: Vec<(usize, usize)> = Vec::new();
        let mut fns: Vec<FnItem> = Vec::new();
        let mut attr_ranges: Vec<(usize, usize)> = Vec::new();
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        // Depth at which a `#[cfg(test)]`/`#[test]` item opened; its
        // range closes when the stack shrinks back past that depth.
        let mut test_open: Vec<(usize, usize)> = Vec::new(); // (depth, start_tok)

        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            // Attribute: `#` `[` … balanced `]`.
            if t.is_punct('#') {
                let open = self.next_code(i + 1);
                if let Some(o) = open {
                    if toks[o].is_punct('[') || toks[o].is_punct('!') {
                        // #[attr] or #![attr]
                        let bracket = if toks[o].is_punct('[') {
                            Some(o)
                        } else {
                            self.next_code(o + 1).filter(|&b| toks[b].is_punct('['))
                        };
                        if let Some(b) = bracket {
                            let mut depth = 0usize;
                            let mut j = b;
                            while j < n {
                                if toks[j].is_punct('[') {
                                    depth += 1;
                                } else if toks[j].is_punct(']') {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            attr_ranges.push((i, j.min(n - 1)));
                            pending_attrs.push((i, j.min(n - 1)));
                            i = j + 1;
                            continue;
                        }
                    }
                }
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                let ctx = classify_brace(toks, &window);
                let is_test_item = pending_attrs.iter().any(|&(a, b)| attr_is_test(toks, a, b))
                    || matches!(stack.last(), Some(Ctx::Fn(fi)) if fns[*fi].in_test);
                let already_in_test = !test_open.is_empty();
                if is_test_item && !already_in_test {
                    test_open.push((stack.len(), i));
                }
                match ctx {
                    BraceKind::Fn(name) => {
                        let qualified = match stack.iter().rev().find_map(|c| match c {
                            Ctx::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        }) {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name.clone(),
                        };
                        let line = window
                            .first()
                            .map(|&w| toks[w].line)
                            .unwrap_or(toks[i].line);
                        fns.push(FnItem {
                            name: qualified,
                            short: name,
                            body: (i, i), // end patched on close
                            line,
                            in_test: is_test_item || already_in_test,
                        });
                        stack.push(Ctx::Fn(fns.len() - 1));
                    }
                    BraceKind::Impl(ty) => stack.push(Ctx::Impl(ty)),
                    BraceKind::Mod | BraceKind::Other => stack.push(Ctx::Other),
                }
                window.clear();
                pending_attrs.clear();
            } else if t.is_punct('}') {
                if let Some(Ctx::Fn(fi)) = stack.pop() {
                    fns[fi].body.1 = i;
                }
                if let Some(&(depth, start)) = test_open.last() {
                    if stack.len() <= depth {
                        test_ranges.push((start, i));
                        test_open.pop();
                    }
                }
                window.clear();
                pending_attrs.clear();
            } else if t.is_punct(';') {
                window.clear();
                pending_attrs.clear();
            } else {
                window.push(i);
            }
            i += 1;
        }
        // Unclosed scopes at EOF (shouldn't happen for valid Rust): close
        // them at the last token so ranges stay well-formed.
        for ctx in stack {
            if let Ctx::Fn(fi) = ctx {
                fns[fi].body.1 = n.saturating_sub(1);
            }
        }
        for (_, start) in test_open {
            test_ranges.push((start, n.saturating_sub(1)));
        }
        attr_ranges.sort_unstable();
        test_ranges.sort_unstable();
        self.fns = fns;
        self.attr_ranges = attr_ranges;
        self.test_ranges = test_ranges;
    }
}

enum BraceKind {
    Fn(String),
    Impl(String),
    Mod,
    Other,
}

/// Decide what a `{` opens from the statement window preceding it.
fn classify_brace(toks: &[Token], window: &[usize]) -> BraceKind {
    // A window containing `=>` or starting mid-expression is never an
    // item header; `match x {`, `if … {`, struct literals etc. all land
    // in Other, which only affects attribution granularity.
    let idents: Vec<(usize, &str)> = window
        .iter()
        .filter_map(|&i| toks[i].ident().map(|s| (i, s)))
        .collect();
    for (pos, (i, s)) in idents.iter().enumerate() {
        match *s {
            "fn" => {
                // `fn name` — the name is the next ident token.
                if let Some((_, name)) = idents.get(pos + 1) {
                    return BraceKind::Fn((*name).to_string());
                }
                let _ = i;
                return BraceKind::Other;
            }
            // Closure bodies / expressions that happen to contain these
            // keywords never reach here with `impl`/`mod`/`trait` first.
            "impl" => {
                return BraceKind::Impl(impl_type_name(toks, window, pos, &idents));
            }
            "mod" => return BraceKind::Mod,
            "trait" => return BraceKind::Other,
            "match" | "if" | "while" | "for" | "loop" | "else" | "unsafe" | "move" | "async"
            | "return" | "let" | "static" | "const" | "struct" | "enum" | "union" => {
                // `unsafe fn`/`const fn`/`async fn` keep scanning for an
                // `fn` later in the window; expression keywords and data
                // items settle the matter only if no `fn` follows.
                if idents.iter().skip(pos + 1).any(|(_, s)| *s == "fn") {
                    continue;
                }
                return match *s {
                    "struct" | "enum" | "union" | "match" | "if" | "while" | "for" | "loop"
                    | "else" | "let" | "static" | "const" | "return" | "move" | "async"
                    | "unsafe" => BraceKind::Other,
                    _ => BraceKind::Other,
                };
            }
            _ => continue,
        }
    }
    BraceKind::Other
}

/// The self type of an `impl` header: `impl Foo {` → Foo,
/// `impl<T> Trait for Bar<T> {` → Bar.
fn impl_type_name(
    _toks: &[Token],
    _window: &[usize],
    impl_pos: usize,
    idents: &[(usize, &str)],
) -> String {
    // Idents after `impl`, skipping generic parameter names is hard
    // without types; the pragmatic rule: if `for` appears, the type is
    // the first ident after `for`; otherwise the *last* path-head ident
    // before any `where` — approximated as the first ident after `impl`
    // that is not re-used as a generic (first ident works for this
    // workspace's style `impl Foo` / `impl<'a> Foo<'a>`).
    let after: Vec<&str> = idents.iter().skip(impl_pos + 1).map(|(_, s)| *s).collect();
    if let Some(fpos) = after.iter().position(|s| *s == "for") {
        if let Some(name) = after.get(fpos + 1) {
            return (*name).to_string();
        }
    }
    for s in &after {
        if *s != "where" && *s != "dyn" {
            return (*s).to_string();
        }
    }
    "impl".to_string()
}

/// Is the attribute spanning tokens `a..=b` a `#[cfg(test)]` or
/// `#[test]` (or `#[cfg(any(test, …))]`)?
fn attr_is_test(toks: &[Token], a: usize, b: usize) -> bool {
    let idents: Vec<&str> = toks[a..=b.min(toks.len() - 1)]
        .iter()
        .filter_map(|t| t.ident())
        .collect();
    match idents.first() {
        Some(&"cfg") => idents.contains(&"test"),
        Some(&"test") => idents.len() == 1,
        _ => false,
    }
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= i && i <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::from_text(
            PathBuf::from("mem.rs"),
            "crates/x/src/mem.rs".into(),
            "x",
            src,
        )
    }

    #[test]
    fn finds_free_and_method_fns() {
        let sf = parse(
            "fn alpha() { let x = 1; }\n\
             struct S;\n\
             impl S { pub fn beta(&self) -> u32 { 2 } }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        let names: Vec<&str> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "S::beta", "S::clone"]);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let sf = parse(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { let x = 1; }\n\
             }",
        );
        let live = sf.fns.iter().find(|f| f.name == "live").unwrap();
        let t = sf.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!live.in_test);
        assert!(t.in_test);
        assert!(sf.in_test(t.body.0));
        assert!(!sf.in_test(live.body.0));
    }

    #[test]
    fn test_attr_on_fn_is_marked() {
        let sf = parse("#[test]\nfn only_in_tests() { }\nfn real() { }");
        assert!(
            sf.fns
                .iter()
                .find(|f| f.name == "only_in_tests")
                .unwrap()
                .in_test
        );
        assert!(!sf.fns.iter().find(|f| f.name == "real").unwrap().in_test);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let sf = parse("fn outer() { if true { inner_call(); } }");
        let call = sf
            .tokens
            .iter()
            .position(|t| t.ident() == Some("inner_call"))
            .unwrap();
        assert_eq!(sf.enclosing_fn(call).unwrap().name, "outer");
    }

    #[test]
    fn match_and_struct_literals_are_not_fns() {
        let sf = parse(
            "fn f(x: Option<u32>) -> P { match x { Some(_) => P { a: 1 }, None => P { a: 0 } } }",
        );
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "f");
    }

    #[test]
    fn adjacent_marker_same_line_and_block_above() {
        let sf = parse(
            "fn f() {\n\
                 a.store(1, Ordering::Relaxed); // ORDERING: counter\n\
                 // ORDERING: stat only,\n\
                 // approximate is fine.\n\
                 b.store(\n\
                     2, Ordering::Relaxed);\n\
                 c.store(3, Ordering::Relaxed);\n\
             }",
        );
        assert!(sf.has_adjacent_marker(2, 2, "ORDERING:"));
        // Multi-line statement: comment block above line 5 covers line 6.
        assert!(sf.has_adjacent_marker(6, 5, "ORDERING:"));
        // Line 7 has neither a trailing comment nor a block above it.
        assert!(!sf.has_adjacent_marker(7, 7, "ORDERING:"));
    }

    #[test]
    fn attrs_are_ranged() {
        let sf = parse("#[derive(Debug)]\nstruct S { a: u32 }\nfn f() { s[0]; }");
        let derive = sf
            .tokens
            .iter()
            .position(|t| t.ident() == Some("derive"))
            .unwrap();
        assert!(sf.in_attr(derive));
        let idx = sf
            .tokens
            .iter()
            .position(|t| t.ident() == Some("s"))
            .unwrap();
        assert!(!sf.in_attr(idx));
    }

    #[test]
    fn stmt_first_line_walks_back() {
        let sf = parse("fn f() {\n    let x = foo\n        .bar(\n            1);\n}");
        let one = sf
            .tokens
            .iter()
            .position(|t| t.ident() == Some("bar"))
            .unwrap();
        assert_eq!(sf.stmt_first_line(one), 2);
    }
}
