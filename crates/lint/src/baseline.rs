//! The checked-in baseline: existing debt frozen, new violations fail.
//!
//! `lint-baseline.txt` holds one line per violation fingerprint with an
//! occurrence count. Fingerprints deliberately contain no line numbers
//! (`lint|file|symbol|detail`), so unrelated edits to a file do not
//! thaw its frozen debt — but *adding* another instance of the same
//! debt in the same function exceeds the count and fails. Shrinking is
//! one-way by policy: regenerate with `--update-baseline` after paying
//! debt down, and review the diff like code.

use crate::lints::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed baseline: fingerprint → allowed occurrence count.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Load a baseline file. A missing file is an empty baseline (the
    /// tree is expected to be clean).
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
        }
    }

    /// Parse baseline text: `count<TAB>fingerprint` lines, `#` comments.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (count, fp) = line.split_once('\t').ok_or_else(|| {
                format!("baseline line {}: expected `count<TAB>fingerprint`", ln + 1)
            })?;
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", ln + 1))?;
            counts.insert(fp.to_string(), count);
        }
        Ok(Baseline { counts })
    }

    /// Number of distinct fingerprints.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing is baselined.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Mark `baselined` on every violation the baseline absorbs: up to
    /// the recorded count per fingerprint, in report order. Returns the
    /// number of *new* (unabsorbed) violations.
    pub fn apply(&self, violations: &mut [Violation]) -> usize {
        let mut remaining = self.counts.clone();
        let mut new = 0usize;
        for v in violations.iter_mut() {
            match remaining.get_mut(&v.fingerprint) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    v.baselined = true;
                }
                _ => new += 1,
            }
        }
        new
    }

    /// Serialize the given violations as a fresh baseline.
    pub fn render(violations: &[Violation]) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for v in violations {
            *counts.entry(v.fingerprint.as_str()).or_default() += 1;
        }
        let mut out = String::from(
            "# dcs-lint baseline: frozen pre-existing violations.\n\
             # One `count<TAB>fingerprint` per line; fingerprints carry no line\n\
             # numbers, so edits elsewhere in a file do not thaw its debt.\n\
             # Regenerate with `cargo run -p dcs-lint -- --update-baseline` and\n\
             # review the diff: it should only ever shrink.\n",
        );
        for (fp, n) in counts {
            out.push_str(&format!("{n}\t{fp}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(fp: &str) -> Violation {
        Violation {
            lint: "x",
            file: "f".into(),
            line: 1,
            symbol: "s".into(),
            message: "m".into(),
            fingerprint: fp.into(),
            baselined: false,
        }
    }

    #[test]
    fn absorbs_up_to_count() {
        let b = Baseline::parse("2\ta|b|c|d\n").unwrap();
        let mut vs = vec![v("a|b|c|d"), v("a|b|c|d"), v("a|b|c|d"), v("other")];
        let new = b.apply(&mut vs);
        assert_eq!(new, 2);
        assert!(vs[0].baselined && vs[1].baselined);
        assert!(!vs[2].baselined && !vs[3].baselined);
    }

    #[test]
    fn round_trip() {
        let vs = vec![v("a|1"), v("a|1"), v("b|2")];
        let text = Baseline::render(&vs);
        let b = Baseline::parse(&text).unwrap();
        let mut vs2 = vs.clone();
        assert_eq!(b.apply(&mut vs2), 0);
        assert!(vs2.iter().all(|v| v.baselined));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n1\tx|y\n").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn bad_lines_error() {
        assert!(Baseline::parse("no-tab-here\n").is_err());
        assert!(Baseline::parse("NaN\tfp\n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.txt")).unwrap();
        assert!(b.is_empty());
    }
}
