//! `dcs-lint`: workspace-wide static invariant analyzer.
//!
//! The dynamic checkers (dcs-check's seeded interleavings, dcs-lin's
//! history search, miri/TSan) verify what a run *did*; this crate
//! verifies what the source *can* do, on every commit, in milliseconds.
//! Eight invariants the cost model and the latch-free design depend on
//! are enforced statically:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `lock-order` | the workspace lock acquisition graph is acyclic |
//! | `hot-path-alloc` | manifest-registered hot paths reach no allocation/locks |
//! | `virtual-clock` | `Instant`/`SystemTime` only at allowlisted clock boundaries |
//! | `panic-path` | wire-path modules never unwrap/panic/index (transitively) |
//! | `atomic-ordering` | every `Ordering::Relaxed` carries `// ORDERING:` |
//! | `span-cost` | every cost-ledger emission sits inside an open span |
//! | `async-shard` | nothing reachable from the async drain loop blocks |
//! | `bounded-send` | wire-path channel sends are bounded (`BUSY`, never block) |
//!
//! The reachability lints run on a shared **interprocedural effect
//! engine** ([`callgraph`] + [`effects`]): one workspace call graph,
//! per-function effect summaries inferred bottom-up over SCCs, so a
//! blocking sleep three crates below the async drain loop is found at
//! the call site that reaches it. `dcs-lint --effects <pattern>` dumps
//! any function's inferred summary with origin chains.
//!
//! Policy lives in `lint-hotpaths.toml`; pre-existing debt is frozen in
//! `lint-baseline.txt` so the gate fails only on *new* violations. Any
//! single finding can be waived in place with an adjacent
//! `// LINT: allow(<lint-name>): <reason>` comment — the reason is
//! mandatory, mirroring the SAFETY/ORDERING comment regime. Intrinsic
//! effects can additionally be waived at their *source* with
//! `// LINT: allow(effect-<name>): <reason>` (see [`effects::Effect`]),
//! which removes them from every transitive summary at once.
//!
//! Std-only by design: the analyzer hand-rolls its lexer and item
//! parser (no `syn`/rustc, consistent with the offline shimmed build),
//! trading full grammar fidelity for zero dependencies. Ambiguity is
//! resolved toward over-reporting plus explicit waivers; *call
//! resolution* is the one place ambiguity resolves toward silence,
//! because a wrong edge manufactures findings in unrelated crates.

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod report;
pub mod sarif;
pub mod source;

use baseline::Baseline;
use effects::Analysis;
use lints::{all_lints, Violation};
use manifest::Manifest;
use report::Report;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Analyzer configuration (the CLI fills this from flags).
pub struct Config {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Manifest path; `None` means `<root>/lint-hotpaths.toml`.
    pub manifest: Option<PathBuf>,
    /// Baseline path; `None` means `<root>/lint-baseline.txt`.
    pub baseline: Option<PathBuf>,
    /// When set, keep only findings in files changed vs this git ref
    /// (plus untracked files) — the fast pre-commit mode.
    pub changed_only: Option<String>,
}

impl Config {
    /// Configuration rooted at `root` with default file locations.
    pub fn at_root(root: PathBuf) -> Config {
        Config {
            root,
            manifest: None,
            baseline: None,
            changed_only: None,
        }
    }

    fn manifest_path(&self) -> PathBuf {
        self.manifest
            .clone()
            .unwrap_or_else(|| self.root.join("lint-hotpaths.toml"))
    }

    fn baseline_path(&self) -> PathBuf {
        self.baseline
            .clone()
            .unwrap_or_else(|| self.root.join("lint-baseline.txt"))
    }
}

/// Run every lint over the workspace. Violations come back sorted and
/// baseline-marked; `Report::new_count` is the CI gate.
pub fn run(config: &Config) -> Result<Report, String> {
    let manifest_path = config.manifest_path();
    let manifest = if manifest_path.exists() {
        Manifest::load(&manifest_path)?
    } else {
        Manifest::default()
    };
    let baseline = Baseline::load(&config.baseline_path())?;
    let files = collect_files(&config.root)?;
    let mut report = analyze(&files, &manifest);
    if let Some(git_ref) = &config.changed_only {
        let changed = changed_files(&config.root, git_ref)?;
        // Manifest-anchored findings (file outside `crates/`) always
        // apply: policy drift is never "out of diff".
        report
            .violations
            .retain(|v| !v.file.starts_with("crates/") || changed.contains(&v.file));
    }
    report.new_count = baseline.apply(&mut report.violations);
    Ok(report)
}

/// Workspace-relative paths changed vs `git_ref`, plus untracked files.
fn changed_files(root: &Path, git_ref: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let run = |args: &[&str]| -> Result<String, String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let mut set = std::collections::BTreeSet::new();
    for line in run(&["diff", "--name-only", git_ref])?.lines() {
        if !line.is_empty() {
            set.insert(line.to_string());
        }
    }
    for line in run(&["ls-files", "--others", "--exclude-standard"])?.lines() {
        if !line.is_empty() {
            set.insert(line.to_string());
        }
    }
    Ok(set)
}

/// Run the lints over already-collected files (fixture tests call this
/// directly; `run` adds file discovery and baseline handling).
pub fn analyze(files: &[SourceFile], manifest: &Manifest) -> Report {
    let analysis = Analysis::build(files, manifest);
    let mut lints = all_lints();
    let mut violations: Vec<Violation> = Vec::new();
    for lint in lints.iter_mut() {
        for sf in files {
            lint.check_file(sf, manifest, &mut violations);
        }
        lint.finish(&analysis, &mut violations);
    }
    // Adjacent `LINT: allow(<name>): reason` waivers, applied centrally
    // so every lint supports them uniformly. An allow with no reason
    // text does not count.
    violations.retain(|v| !waived(files, v));
    violations.sort_by(|a, b| {
        (a.lint, &a.file, a.line, &a.message).cmp(&(b.lint, &b.file, b.line, &b.message))
    });
    Report {
        new_count: violations.len(),
        violations,
        files_scanned: files.len(),
        lints: all_lints()
            .iter()
            .map(|l| (l.name(), l.description()))
            .collect(),
    }
}

/// Render the inferred effect summary of every function whose display
/// name (`dcs-<crate>::<fn>`) contains `pattern` — the
/// `dcs-lint --effects` debugging entry point.
pub fn dump_effects(config: &Config, pattern: &str) -> Result<String, String> {
    let manifest_path = config.manifest_path();
    let manifest = if manifest_path.exists() {
        Manifest::load(&manifest_path)?
    } else {
        Manifest::default()
    };
    let files = collect_files(&config.root)?;
    let analysis = Analysis::build(&files, &manifest);
    let matches = analysis.find(pattern);
    if matches.is_empty() {
        return Err(format!("no function matches `{pattern}`"));
    }
    let mut out = String::new();
    for id in matches {
        out.push_str(&analysis.describe(id));
        out.push('\n');
    }
    Ok(out)
}

/// Update the baseline file to freeze the current violation set.
pub fn update_baseline(config: &Config, report: &Report) -> Result<(), String> {
    let path = config.baseline_path();
    std::fs::write(&path, Baseline::render(&report.violations))
        .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))
}

/// Is this violation waived by an adjacent `LINT: allow(...)` comment?
///
/// The waiver may sit as a trailing comment on the violation line, or
/// anywhere in the contiguous block of comment-only lines immediately
/// above it (a multi-line waiver reads naturally as `allow` + wrapped
/// reason text).
fn waived(files: &[SourceFile], v: &Violation) -> bool {
    let Some(sf) = files.iter().find(|f| f.rel == v.file) else {
        return false;
    };
    if waiver_matches(sf.line_text(v.line), v.lint) {
        return true;
    }
    // Walk the comment block above; a trailing comment on a *code* line
    // up there waives that line's own code instead, so stop at it.
    let mut probe = v.line.saturating_sub(1);
    while probe >= 1 {
        let text = sf.line_text(probe);
        if !text.trim_start().starts_with("//") {
            break;
        }
        if waiver_matches(text, v.lint) {
            return true;
        }
        probe -= 1;
    }
    false
}

/// Does `text` carry `// LINT: allow(<lint>): <non-empty reason>`?
pub(crate) fn waiver_matches(text: &str, lint: &str) -> bool {
    let comment = match text.split_once("//") {
        Some((_, c)) => c,
        None => return false,
    };
    if let Some((name, reason)) = comment
        .trim()
        .strip_prefix("LINT: allow(")
        .and_then(|r| r.split_once(')'))
    {
        let reason = reason.trim_start_matches([':', '-', '—', ' ']).trim();
        return name.trim() == lint && !reason.is_empty();
    }
    false
}

/// Every `.rs` under `crates/*/src`, recursively. `shims/` is vendored
/// third-party API surface and stays out of scope.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        files.sort();
        for f in files {
            out.push(
                SourceFile::load(root, &f, &crate_name)
                    .map_err(|e| format!("reading {}: {e}", f.display()))?,
            );
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_requires_reason() {
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/x/src/m.rs".into(),
            "x",
            "fn f() {\n\
             let a = std::time::Instant::now(); // LINT: allow(virtual-clock): calibration boundary\n\
             let b = std::time::Instant::now(); // LINT: allow(virtual-clock)\n\
             }",
        );
        let report = analyze(&[sf], &Manifest::default());
        // Line 2 waived (has a reason); line 3's allow has none → kept.
        let clock: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.lint == "virtual-clock")
            .collect();
        assert_eq!(clock.len(), 1, "{clock:?}");
        assert_eq!(clock[0].line, 3);
    }

    #[test]
    fn waiver_on_preceding_line_works() {
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/x/src/m.rs".into(),
            "x",
            "fn f() {\n\
             // LINT: allow(virtual-clock): wall-clock boundary by design\n\
             let a = std::time::Instant::now();\n\
             }",
        );
        let report = analyze(&[sf], &Manifest::default());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn waiver_anywhere_in_comment_block_above_works() {
        // The allow line is two lines up, with a wrapped continuation
        // line in between — still part of the contiguous block.
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/x/src/m.rs".into(),
            "x",
            "fn f() {\n\
             // LINT: allow(virtual-clock): wall-clock boundary by\n\
             // design (startup calibration only).\n\
             let a = std::time::Instant::now();\n\
             }",
        );
        let report = analyze(&[sf], &Manifest::default());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn waiver_block_stops_at_code_line() {
        // A trailing comment on a code line above does not waive the
        // statement below it.
        let sf = SourceFile::from_text(
            PathBuf::from("m.rs"),
            "crates/x/src/m.rs".into(),
            "x",
            "fn f() {\n\
             let a = 1; // LINT: allow(virtual-clock): someone else's waiver\n\
             let b = std::time::Instant::now();\n\
             }",
        );
        let report = analyze(&[sf], &Manifest::default());
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].line, 3);
    }
}
