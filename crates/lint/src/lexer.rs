//! A hand-rolled Rust lexer.
//!
//! The workspace builds offline against vendored shims, so the analyzer
//! cannot lean on `syn`/`proc-macro2`/rustc — it tokenizes source text
//! itself. The lexer is deliberately small: it distinguishes exactly the
//! classes the lints care about (identifiers, punctuation, the three
//! literal families, comments, lifetimes) and never errors — unknown
//! bytes become punctuation. Comments are *kept* in the stream because
//! two lints ([`ordering`](crate::lints::ordering),
//! [`span_cost`](crate::lints::span_cost)) treat adjacent comments as
//! part of the discipline they enforce.

/// One lexical class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the parser tells them apart contextually).
    Ident(String),
    /// Single punctuation byte (`.`, `:`, `{`, …). Multi-byte operators
    /// arrive as consecutive tokens.
    Punct(char),
    /// String literal (plain, raw, byte, or C-string); text not kept.
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// `// …` comment, text without the slashes, trimmed.
    LineComment(String),
    /// `/* … */` comment (possibly nested), inner text trimmed.
    BlockComment(String),
    /// `'a` lifetime (distinguished from char literals).
    Lifetime,
}

/// A token plus where it starts.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class and payload.
    pub tok: Tok,
    /// Byte offset into the file.
    pub off: usize,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok, Tok::Punct(p) if p == c)
    }

    /// True for line or block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::LineComment(_) | Tok::BlockComment(_))
    }
}

/// Tokenize `text`. Never fails: malformed input degrades to punctuation
/// tokens, which at worst makes a lint conservative for that file.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        b: text.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.b.len() {
            let off = self.pos;
            let line = self.line;
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    let text = self.take_line_comment();
                    self.push(Tok::LineComment(text), off, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let text = self.take_block_comment();
                    self.push(Tok::BlockComment(text), off, line);
                }
                b'r' | b'b' | b'c' if self.raw_or_byte_string() => {
                    // Consumed inside the probe; classify by shape.
                    let kind = if self.b[off] == b'b' && self.b.get(off + 1) == Some(&b'\'') {
                        Tok::Char
                    } else {
                        Tok::Str
                    };
                    self.push(kind, off, line);
                }
                b'"' => {
                    self.take_string(b'"');
                    self.push(Tok::Str, off, line);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.pos += 1; // the quote
                        self.take_ident_body();
                        self.push(Tok::Lifetime, off, line);
                    } else {
                        self.take_string(b'\'');
                        self.push(Tok::Char, off, line);
                    }
                }
                _ if c.is_ascii_digit() => {
                    self.take_number();
                    self.push(Tok::Num, off, line);
                }
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    let s = self.take_ident_body();
                    self.push(Tok::Ident(s), off, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(Tok::Punct(c as char), off, line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, tok: Tok, off: usize, line: u32) {
        self.out.push(Token { tok, off, line });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn take_ident_body(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.b[start..self.pos]).into_owned()
    }

    fn take_number(&mut self) {
        // Digits plus everything that can ride inside a Rust numeric
        // literal (underscores, hex/bin digits, type suffixes, exponents,
        // a fractional dot when followed by a digit).
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            if c.is_ascii_alphanumeric()
                || c == b'_'
                || (c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn take_line_comment(&mut self) -> String {
        let start = self.pos + 2;
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.b[start..self.pos])
            .trim_start_matches(['/', '!'])
            .trim()
            .to_string()
    }

    fn take_block_comment(&mut self) -> String {
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            match self.b[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        String::from_utf8_lossy(&self.b[start..end])
            .trim_start_matches(['*', '!'])
            .trim()
            .to_string()
    }

    /// `'a` (lifetime) vs `'a'` (char literal): a lifetime is a quote
    /// followed by an identifier start *not* closed by another quote.
    fn lifetime_ahead(&self) -> bool {
        let Some(first) = self.peek(1) else {
            return false;
        };
        if !(first == b'_' || first.is_ascii_alphabetic()) {
            return false;
        }
        // Scan the identifier; a closing quote right after means char
        // literal ('a'), anything else means lifetime ('a).
        let mut i = self.pos + 2;
        while i < self.b.len() && (self.b[i] == b'_' || self.b[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        self.b.get(i) != Some(&b'\'')
    }

    /// Probe for `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"`.
    /// Consumes and returns true only when one is actually present;
    /// otherwise leaves the position alone (plain identifier).
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = self.pos;
        // Optional b/c prefix, optional r, then hashes+quote or quote.
        if matches!(self.b[i], b'b' | b'c') {
            i += 1;
        }
        let mut raw = false;
        if self.b.get(i) == Some(&b'r') {
            raw = true;
            i += 1;
        }
        let mut hashes = 0usize;
        while raw && self.b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match self.b.get(i) {
            Some(&b'"') => {}
            Some(&b'\'') if !raw && self.b[self.pos] == b'b' => {
                // b'x' byte literal: reuse the char-literal scanner.
                self.pos = i;
                self.take_string(b'\'');
                return true;
            }
            _ => return false,
        }
        if raw {
            // Raw string: runs to `"` followed by `hashes` hashes, no
            // escapes.
            i += 1;
            loop {
                match self.b.get(i) {
                    None => break,
                    Some(b'\n') => {
                        self.line += 1;
                        i += 1;
                    }
                    Some(b'"') => {
                        let mut j = i + 1;
                        let mut seen = 0usize;
                        while seen < hashes && self.b.get(j) == Some(&b'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            i = j;
                            break;
                        }
                        i += 1;
                    }
                    Some(_) => i += 1,
                }
            }
            self.pos = i;
            true
        } else {
            self.pos = i;
            self.take_string(b'"');
            true
        }
    }

    /// Consume a quoted literal starting at the opening quote, honoring
    /// backslash escapes.
    fn take_string(&mut self, quote: u8) {
        self.pos += 1;
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\\' => {
                    // An escaped newline (line continuation) still ends a
                    // source line — without this every token after a
                    // continued string reports one line too early.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c == quote => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = a.lock();");
        assert_eq!(
            t,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Ident("a".into()),
                Tok::Punct('.'),
                Tok::Ident("lock".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn strings_chars_lifetimes() {
        let t = kinds(r#"f("hi", 'c', 'a, b"x")"#);
        assert!(t.contains(&Tok::Str));
        assert!(t.contains(&Tok::Char));
        assert!(t.contains(&Tok::Lifetime));
    }

    #[test]
    fn string_contents_do_not_tokenize() {
        // `Instant` inside a string must not produce an ident token.
        let t = kinds(r#"let s = "Instant::now()";"#);
        assert!(!t
            .iter()
            .any(|k| matches!(k, Tok::Ident(s) if s == "Instant")));
    }

    #[test]
    fn comments_preserved_with_text() {
        let t = kinds("x; // ORDERING: counter only\n/* block */ y;");
        assert!(t
            .iter()
            .any(|k| matches!(k, Tok::LineComment(s) if s.contains("ORDERING:"))));
        assert!(t
            .iter()
            .any(|k| matches!(k, Tok::BlockComment(s) if s == "block")));
    }

    #[test]
    fn nested_block_comment() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert!(matches!(&t[1], Tok::Ident(s) if s == "x"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = kinds(r##"let a = br#"bytes"#; let b = b"raw"; let c = b'z';"##);
        assert_eq!(
            t.iter().filter(|k| matches!(k, Tok::Str)).count(),
            2,
            "{t:?}"
        );
        assert_eq!(t.iter().filter(|k| matches!(k, Tok::Char)).count(), 1);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn escaped_newline_in_string_still_counts() {
        // `"a \` + newline continuation: the next code line is line 2,
        // and the token after the string ends up on line 3.
        let toks = lex("let s = \"a \\\n b\";\nx");
        let x = toks.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn numbers_with_suffixes() {
        let t = kinds("1_000u64 + 0xff + 2.5e3");
        assert_eq!(t.iter().filter(|k| matches!(k, Tok::Num)).count(), 3);
    }
}
