//! `dcs-lint` CLI: run the workspace analyzer, gate on new violations.
//!
//! Exit codes: `0` clean (or all violations baselined), `1` new
//! violations found, `2` usage or I/O error. `--update-baseline`
//! rewrites `lint-baseline.txt` from the current tree and exits 0.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dcs-lint: workspace-wide static invariant analyzer

USAGE:
    dcs-lint [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root (default: walk up from cwd)
    --manifest <FILE>   policy manifest (default: <root>/lint-hotpaths.toml)
    --baseline <FILE>   baseline file (default: <root>/lint-baseline.txt)
    --json [<FILE>]     also write the JSON report (default: lint-report.json)
    --sarif <FILE>      also write a SARIF 2.1.0 report (code-scanning upload)
    --changed-only <REF> keep only findings in files changed vs this git ref
    --effects <PATTERN> print inferred effect summaries for matching functions
    --update-baseline   rewrite the baseline from the current tree, exit 0
    --list-lints        print the lint catalog and exit
    -h, --help          print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dcs-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut manifest: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut changed_only: Option<String> = None;
    let mut effects: Option<String> = None;
    let mut update = false;
    let mut list = false;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(path_arg(&mut it, "--root")?),
            "--manifest" => manifest = Some(path_arg(&mut it, "--manifest")?),
            "--baseline" => baseline = Some(path_arg(&mut it, "--baseline")?),
            "--json" => {
                // Optional value: a following non-flag token is the path.
                json = Some(match it.peek() {
                    Some(next) if !next.starts_with("--") => PathBuf::from(it.next().unwrap()),
                    _ => PathBuf::from("lint-report.json"),
                });
            }
            "--sarif" => sarif = Some(path_arg(&mut it, "--sarif")?),
            "--changed-only" => {
                changed_only = Some(
                    it.next()
                        .cloned()
                        .ok_or(format!("--changed-only needs a git ref\n{USAGE}"))?,
                );
            }
            "--effects" => {
                effects = Some(
                    it.next()
                        .cloned()
                        .ok_or(format!("--effects needs a function pattern\n{USAGE}"))?,
                );
            }
            "--update-baseline" => update = true,
            "--list-lints" => list = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if list {
        for lint in dcs_lint::lints::all_lints() {
            println!("{:<16} {}", lint.name(), lint.description());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
            dcs_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above cwd; pass --root")?
        }
    };
    let config = dcs_lint::Config {
        root,
        manifest,
        baseline,
        changed_only,
    };

    if let Some(pattern) = effects {
        print!("{}", dcs_lint::dump_effects(&config, &pattern)?);
        return Ok(ExitCode::SUCCESS);
    }

    let report = dcs_lint::run(&config)?;

    if update {
        dcs_lint::update_baseline(&config, &report)?;
        println!(
            "dcs-lint: baseline updated ({} violation(s) frozen)",
            report.violations.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(json_path) = json {
        std::fs::write(&json_path, report.render_json())
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    }
    if let Some(sarif_path) = sarif {
        std::fs::write(&sarif_path, dcs_lint::sarif::render(&report))
            .map_err(|e| format!("cannot write {}: {e}", sarif_path.display()))?;
    }
    print!("{}", report.render_text());
    Ok(if report.new_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn path_arg(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}
