//! The Wing & Gong linearizability checker, P-compositional per key.
//!
//! [`check_history`] searches for a total order of the completed operations
//! that (a) respects real-time precedence — if A returned before B was
//! invoked, A comes first — and (b) replays correctly against a sequential
//! key-value model started from the **empty** map. The search is the
//! classic Wing & Gong recursion with the Lowe memoization: a set of
//! `(linearized-ops bitmask, model state)` pairs already proven dead is
//! never revisited, which turns the factorial search into one over distinct
//! configurations.
//!
//! Scan semantics decide the model:
//!
//! * [`ScanSemantics::Snapshot`] — scans are atomic multi-key reads, so
//!   keys are *not* independent and the whole history is checked against a
//!   single ordered-map model.
//! * [`ScanSemantics::PerKey`] — scans only promise that each returned
//!   entry was live at some instant within the scan (B-link-style leaf
//!   walks). The history is then checked **per key** (linearizability is
//!   compositional: a history over independent objects is linearizable iff
//!   each per-object projection is), with each scan projected to one
//!   observation per key it could have seen.
//!
//! On failure the violating (sub)history is greedily minimized — ops whose
//! removal keeps the history non-linearizable are dropped — before being
//! returned, so the report shows only the contradiction.

use crate::history::{Completed, Op, Ret};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::ops::Bound;

/// What a store's range scans promise; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanSemantics {
    /// Scans read an atomic point-in-time view of the whole range.
    Snapshot,
    /// Scans observe each key atomically, but not the range as a whole.
    PerKey,
}

/// A non-linearizable history, minimized.
#[derive(Debug)]
pub struct Violation {
    /// The key whose projection failed, for per-key checks; `None` when the
    /// whole-history (snapshot) model failed.
    pub partition: Option<Bytes>,
    /// Minimal subhistory that is still non-linearizable, in invocation
    /// order. Scan ops in a per-key violation appear as their projected
    /// per-key observations.
    pub history: Vec<Completed>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.partition {
            Some(k) => writeln!(
                f,
                "no sequential order of these operations on key {:?} exists:",
                String::from_utf8_lossy(k)
            )?,
            None => writeln!(f, "no sequential order of these operations exists:")?,
        }
        let mut ops: Vec<&Completed> = self.history.iter().collect();
        ops.sort_by_key(|c| c.invoked);
        for c in ops {
            writeln!(f, "  {c}")?;
        }
        write!(
            f,
            "(intervals [invoked,returned] overlap ⇒ either order is allowed)"
        )
    }
}

/// Check one complete history (all operations responded) against the
/// sequential key-value model, starting from the empty map.
pub fn check_history(history: &[Completed], scans: ScanSemantics) -> Result<(), Violation> {
    match scans {
        ScanSemantics::Snapshot => {
            if linearizable_snapshot(history) {
                Ok(())
            } else {
                Err(Violation {
                    partition: None,
                    history: minimize(history.to_vec(), linearizable_snapshot),
                })
            }
        }
        ScanSemantics::PerKey => {
            for (key, ops) in partition_by_key(history) {
                if !linearizable_register(&ops) {
                    return Err(Violation {
                        partition: Some(key),
                        history: minimize(ops, linearizable_register),
                    });
                }
            }
            Ok(())
        }
    }
}

/// Whole-history model: an ordered map, scans atomic.
fn linearizable_snapshot(ops: &[Completed]) -> bool {
    wgl(ops, BTreeMap::new(), &apply_map)
}

/// Per-key model: a single register holding `Option<value>`.
fn linearizable_register(ops: &[Completed]) -> bool {
    wgl(ops, None, &apply_register)
}

fn apply_map(state: &BTreeMap<Bytes, Bytes>, op: &Op) -> (BTreeMap<Bytes, Bytes>, Ret) {
    match op {
        Op::Get { key } => (state.clone(), Ret::Value(state.get(key).cloned())),
        Op::Put { key, value } => {
            let mut next = state.clone();
            next.insert(key.clone(), value.clone());
            (next, Ret::Done)
        }
        Op::Delete { key } => {
            let mut next = state.clone();
            next.remove(key);
            (next, Ret::Done)
        }
        Op::Scan { start, end } => {
            let upper = match end {
                Some(e) => Bound::Excluded(e.clone()),
                None => Bound::Unbounded,
            };
            let entries: Vec<(Bytes, Bytes)> = state
                .range((Bound::Included(start.clone()), upper))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (state.clone(), Ret::Entries(entries))
        }
    }
}

fn apply_register(state: &Option<Bytes>, op: &Op) -> (Option<Bytes>, Ret) {
    match op {
        Op::Get { .. } => (state.clone(), Ret::Value(state.clone())),
        Op::Put { value, .. } => (Some(value.clone()), Ret::Done),
        Op::Delete { .. } => (None, Ret::Done),
        Op::Scan { .. } => unreachable!("scans are projected before per-key checking"),
    }
}

/// Split a history into per-key projections. Scans are projected to one
/// `Get`-shaped observation per key of the universe inside their range:
/// present keys observe their value, absent keys observe `None`. The
/// universe is every key named by a point operation plus every key any
/// scan returned — a key no point op ever names and no scan ever returns
/// is trivially linearizable and needs no partition.
fn partition_by_key(history: &[Completed]) -> BTreeMap<Bytes, Vec<Completed>> {
    let mut universe: BTreeSet<Bytes> = BTreeSet::new();
    for c in history {
        match &c.op {
            Op::Get { key } | Op::Put { key, .. } | Op::Delete { key } => {
                universe.insert(key.clone());
            }
            Op::Scan { .. } => {
                if let Ret::Entries(entries) = &c.ret {
                    for (k, _) in entries {
                        universe.insert(k.clone());
                    }
                }
            }
        }
    }
    let mut parts: BTreeMap<Bytes, Vec<Completed>> = BTreeMap::new();
    for c in history {
        match &c.op {
            Op::Get { key } | Op::Put { key, .. } | Op::Delete { key } => {
                parts.entry(key.clone()).or_default().push(c.clone());
            }
            Op::Scan { start, end } => {
                let Ret::Entries(entries) = &c.ret else {
                    panic!("scan completed with a non-entries response: {}", c.ret);
                };
                let found: HashMap<&Bytes, &Bytes> = entries.iter().map(|(k, v)| (k, v)).collect();
                for key in &universe {
                    let in_range = key >= start && end.as_ref().is_none_or(|e| key < e);
                    if !in_range {
                        continue;
                    }
                    parts.entry(key.clone()).or_default().push(Completed {
                        thread: c.thread,
                        op: Op::Get { key: key.clone() },
                        ret: Ret::Value(found.get(key).map(|v| (*v).clone())),
                        invoked: c.invoked,
                        returned: c.returned,
                    });
                }
            }
        }
    }
    parts
}

/// On a failed check, greedily drop operations whose removal keeps the
/// history non-linearizable, until no single removal does.
fn minimize(mut ops: Vec<Completed>, lin: impl Fn(&[Completed]) -> bool) -> Vec<Completed> {
    loop {
        let mut shrunk = false;
        for i in 0..ops.len() {
            let mut trial = ops.clone();
            trial.remove(i);
            if !lin(&trial) {
                ops = trial;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return ops;
        }
    }
}

/// Wing & Gong search with Lowe's `(mask, state)` memoization. `true` iff
/// a legal linearization of all ops exists.
fn wgl<S, F>(ops: &[Completed], init: S, apply: &F) -> bool
where
    S: Clone + Eq + Hash,
    F: Fn(&S, &Op) -> (S, Ret),
{
    let n = ops.len();
    assert!(
        n <= 64,
        "linearizability window of {n} ops exceeds 64; check shorter windows \
         (call `Recorded::check` more often)"
    );
    if n == 0 {
        return true;
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut failed: HashSet<(u64, S)> = HashSet::new();
    dfs(ops, apply, full, 0, init, &mut failed)
}

fn dfs<S, F>(
    ops: &[Completed],
    apply: &F,
    full: u64,
    mask: u64,
    state: S,
    failed: &mut HashSet<(u64, S)>,
) -> bool
where
    S: Clone + Eq + Hash,
    F: Fn(&S, &Op) -> (S, Ret),
{
    if mask == full {
        return true;
    }
    if !failed.insert((mask, state.clone())) {
        return false;
    }
    // An op may linearize next only if no *other pending* op already
    // returned before it was invoked (real-time order). Tickets are unique,
    // so `invoked > min(pending returned)` is exactly "preceded by a
    // pending op".
    let mut min_ret = u64::MAX;
    for (i, c) in ops.iter().enumerate() {
        if mask & (1 << i) == 0 {
            min_ret = min_ret.min(c.returned);
        }
    }
    for (i, c) in ops.iter().enumerate() {
        if mask & (1 << i) != 0 || c.invoked > min_ret {
            continue;
        }
        let (next, expect) = apply(&state, &c.op);
        if expect == c.ret && dfs(ops, apply, full, mask | (1 << i), next, failed) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    fn put(thread: usize, key: &str, value: &str, iv: u64, rt: u64) -> Completed {
        Completed {
            thread,
            op: Op::Put {
                key: b(key),
                value: b(value),
            },
            ret: Ret::Done,
            invoked: iv,
            returned: rt,
        }
    }

    fn get(thread: usize, key: &str, saw: Option<&str>, iv: u64, rt: u64) -> Completed {
        Completed {
            thread,
            op: Op::Get { key: b(key) },
            ret: Ret::Value(saw.map(b)),
            invoked: iv,
            returned: rt,
        }
    }

    fn scan(thread: usize, saw: &[(&str, &str)], iv: u64, rt: u64) -> Completed {
        Completed {
            thread,
            op: Op::Scan {
                start: b(""),
                end: None,
            },
            ret: Ret::Entries(saw.iter().map(|(k, v)| (b(k), b(v))).collect()),
            invoked: iv,
            returned: rt,
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = vec![put(0, "k", "1", 0, 1), get(0, "k", Some("1"), 2, 3)];
        check_history(&h, ScanSemantics::PerKey).unwrap();
        check_history(&h, ScanSemantics::Snapshot).unwrap();
    }

    #[test]
    fn stale_read_after_acknowledged_write_is_rejected() {
        // get strictly follows the put in real time yet misses its value.
        let h = vec![put(0, "k", "1", 0, 1), get(1, "k", None, 2, 3)];
        let v = check_history(&h, ScanSemantics::PerKey).unwrap_err();
        assert_eq!(v.partition, Some(b("k")));
        assert_eq!(v.history.len(), 2, "both ops are needed for the conflict");
        check_history(&h, ScanSemantics::Snapshot).unwrap_err();
    }

    #[test]
    fn overlapping_ops_linearize_in_either_order() {
        // get overlaps the put, so observing the pre-state is legal.
        let h = vec![put(0, "k", "1", 0, 2), get(1, "k", None, 1, 3)];
        check_history(&h, ScanSemantics::PerKey).unwrap();
    }

    #[test]
    fn snapshot_scan_must_be_atomic_but_per_key_projection_passes() {
        // put(a) overlaps the scan's start, put(b) overlaps its middle; the
        // scan returns b but not a. Per key each observation is fine (a
        // read before put(a), b read after put(b)); under snapshot
        // semantics no single instant contains b without a, because any
        // order placing the scan after put(b) also places it after put(a).
        let h = vec![
            put(0, "a", "1", 1, 3),
            put(0, "b", "1", 4, 5),
            scan(1, &[("b", "1")], 2, 6),
        ];
        check_history(&h, ScanSemantics::PerKey).unwrap();
        let v = check_history(&h, ScanSemantics::Snapshot).unwrap_err();
        assert_eq!(v.partition, None);
    }

    #[test]
    fn violation_is_minimized() {
        // Unrelated traffic on other keys must not appear in the report.
        let h = vec![
            get(0, "x", None, 0, 1),
            put(0, "k", "1", 4, 5),
            get(1, "k", None, 6, 7),
            put(2, "y", "3", 8, 9),
        ];
        let v = check_history(&h, ScanSemantics::Snapshot).unwrap_err();
        assert_eq!(v.history.len(), 2);
        let shown = format!("{v}");
        assert!(shown.contains("put(\"k\", \"1\")"), "{shown}");
        assert!(
            !shown.contains("\"x\""),
            "unrelated key leaked in:\n{shown}"
        );
    }

    #[test]
    fn deleted_key_reads_none() {
        let h = vec![
            put(0, "k", "1", 0, 1),
            Completed {
                thread: 0,
                op: Op::Delete { key: b("k") },
                ret: Ret::Done,
                invoked: 2,
                returned: 3,
            },
            get(1, "k", None, 4, 5),
        ];
        check_history(&h, ScanSemantics::PerKey).unwrap();
        // Seeing the value after the delete returned is a violation.
        let stale = vec![
            put(0, "k", "1", 0, 1),
            Completed {
                thread: 0,
                op: Op::Delete { key: b("k") },
                ret: Ret::Done,
                invoked: 2,
                returned: 3,
            },
            get(1, "k", Some("1"), 4, 5),
        ];
        check_history(&stale, ScanSemantics::PerKey).unwrap_err();
    }
}
