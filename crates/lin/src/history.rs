//! Concurrent-history recording.
//!
//! A [`Recorder`] stamps each operation's invocation and response with
//! tickets drawn from one global atomic counter. The tickets induce the
//! real-time partial order the checker needs: operation A *precedes* B iff
//! A's response ticket is smaller than B's invocation ticket; operations
//! whose ticket intervals overlap are concurrent and may be linearized in
//! either order.
//!
//! The invocation ticket is drawn before the store operation starts and
//! the response ticket after it finishes, so the recorded interval always
//! *contains* the operation's true duration. Widening an interval can only
//! make more histories acceptable — the recorder may miss a violation that
//! a tighter clock would catch, but it never reports a false one.

use bytes::Bytes;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A key-value operation, as invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get { key: Bytes },
    /// Blind write.
    Put { key: Bytes, value: Bytes },
    /// Blind delete.
    Delete { key: Bytes },
    /// Range scan over `[start, end)`; `end = None` is unbounded above.
    Scan { start: Bytes, end: Option<Bytes> },
}

/// An operation's observed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ret {
    /// Response of a [`Op::Get`] (or of a per-key scan observation).
    Value(Option<Bytes>),
    /// Response of a [`Op::Put`] / [`Op::Delete`] (nothing observable).
    Done,
    /// Response of a [`Op::Scan`]: entries in key order.
    Entries(Vec<(Bytes, Bytes)>),
}

/// A completed operation with its invocation/response tickets.
#[derive(Debug, Clone)]
pub struct Completed {
    /// Caller-supplied thread tag (display only).
    pub thread: usize,
    /// What was invoked.
    pub op: Op,
    /// What it returned.
    pub ret: Ret,
    /// Ticket drawn immediately before the operation started.
    pub invoked: u64,
    /// Ticket drawn immediately after the operation returned.
    pub returned: u64,
}

/// Handle returned by [`Recorder::invoke`], consumed by
/// [`Recorder::complete`].
#[derive(Debug)]
pub struct OpToken(usize);

struct Slot {
    thread: usize,
    op: Op,
    invoked: u64,
    done: Option<(Ret, u64)>,
}

/// Records a concurrent history of key-value operations.
///
/// Uses plain `std` synchronization on purpose: under the `dcs-check`
/// virtual scheduler, uninstrumented primitives execute atomically between
/// schedule points, so recording never perturbs the schedule being
/// explored.
#[derive(Default)]
pub struct Recorder {
    clock: AtomicU64,
    slots: Mutex<Vec<Slot>>,
}

impl Recorder {
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Record an invocation. Call immediately before the store operation.
    pub fn invoke(&self, thread: usize, op: Op) -> OpToken {
        let invoked = self.clock.fetch_add(1, Ordering::SeqCst);
        let mut slots = self.slots.lock().unwrap();
        slots.push(Slot {
            thread,
            op,
            invoked,
            done: None,
        });
        OpToken(slots.len() - 1)
    }

    /// Record a response. Call immediately after the store operation.
    pub fn complete(&self, token: OpToken, ret: Ret) {
        let returned = self.clock.fetch_add(1, Ordering::SeqCst);
        let mut slots = self.slots.lock().unwrap();
        let slot = &mut slots[token.0];
        assert!(slot.done.is_none(), "operation completed twice");
        slot.done = Some((ret, returned));
    }

    /// Number of operations recorded so far (completed or pending).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the history. Panics if any invoked operation never completed —
    /// the checker has no crash-tolerant mode, so callers must join all
    /// worker threads first.
    pub fn take(&self) -> Vec<Completed> {
        let slots = std::mem::take(&mut *self.slots.lock().unwrap());
        slots
            .into_iter()
            .map(|s| {
                let (ret, returned) = s
                    .done
                    .unwrap_or_else(|| panic!("pending operation in history: {}", s.op));
                Completed {
                    thread: s.thread,
                    op: s.op,
                    ret,
                    invoked: s.invoked,
                    returned,
                }
            })
            .collect()
    }
}

fn fmt_bytes(f: &mut fmt::Formatter<'_>, b: &Bytes) -> fmt::Result {
    if let Ok(s) = std::str::from_utf8(b) {
        write!(f, "{s:?}")
    } else {
        write!(f, "{:02x?}", &b[..])
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Get { key } => {
                write!(f, "get(")?;
                fmt_bytes(f, key)?;
                write!(f, ")")
            }
            Op::Put { key, value } => {
                write!(f, "put(")?;
                fmt_bytes(f, key)?;
                write!(f, ", ")?;
                fmt_bytes(f, value)?;
                write!(f, ")")
            }
            Op::Delete { key } => {
                write!(f, "delete(")?;
                fmt_bytes(f, key)?;
                write!(f, ")")
            }
            Op::Scan { start, end } => {
                write!(f, "scan([")?;
                fmt_bytes(f, start)?;
                write!(f, ", ")?;
                match end {
                    Some(e) => fmt_bytes(f, e)?,
                    None => write!(f, "∞")?,
                }
                write!(f, "))")
            }
        }
    }
}

impl fmt::Display for Ret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ret::Value(Some(v)) => {
                write!(f, "Some(")?;
                fmt_bytes(f, v)?;
                write!(f, ")")
            }
            Ret::Value(None) => write!(f, "None"),
            Ret::Done => write!(f, "ok"),
            Ret::Entries(es) => {
                write!(f, "[")?;
                for (i, (k, v)) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    fmt_bytes(f, k)?;
                    write!(f, "=")?;
                    fmt_bytes(f, v)?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Display for Completed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} [{:>4},{:>4}]  {} -> {}",
            self.thread, self.invoked, self.returned, self.op, self.ret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_bracket_operations() {
        let r = Recorder::new();
        let t = r.invoke(
            0,
            Op::Put {
                key: Bytes::from("k"),
                value: Bytes::from("v"),
            },
        );
        r.complete(t, Ret::Done);
        let t = r.invoke(
            1,
            Op::Get {
                key: Bytes::from("k"),
            },
        );
        r.complete(t, Ret::Value(Some(Bytes::from("v"))));
        let h = r.take();
        assert_eq!(h.len(), 2);
        assert!(h[0].invoked < h[0].returned);
        assert!(
            h[0].returned < h[1].invoked,
            "sequential ops must be ordered"
        );
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "pending operation")]
    fn pending_operation_rejected() {
        let r = Recorder::new();
        let _t = r.invoke(
            0,
            Op::Get {
                key: Bytes::from("k"),
            },
        );
        let _ = r.take();
    }
}
