//! Linearizability checking for the concurrent storage layers.
//!
//! The paper's data caching systems (Deuteronomy's Bw-tree/LLAMA stack,
//! the RocksDB-style LSM, Masstree) are all latch-free or fine-grained
//! concurrent structures whose correctness contract is *linearizability*:
//! every operation appears to take effect atomically at some instant
//! between its invocation and its response. `dcs-check` (the deterministic
//! interleaving checker) can explore schedules and catch crashes or shadow
//! heap violations, but it cannot by itself decide whether the *values*
//! operations returned were consistent. This crate closes that gap:
//!
//! * [`Recorder`] / [`Recorded`] — wrap a store and timestamp every
//!   operation's invocation and response with tickets from a global atomic
//!   counter, producing a concurrent history.
//! * [`check_history`] — the Wing & Gong linearizability checker: a
//!   memoized search for a sequential order of the completed operations
//!   that respects real-time precedence and a sequential key-value model.
//!   Histories without scans (and stores with per-key scan semantics) are
//!   checked **P-compositionally**: a history over a key-value map is
//!   linearizable iff its per-key projections are, which keeps the search
//!   tractable.
//! * [`ConcurrentMap`] — the adapter trait implemented for
//!   [`dcs_bwtree::BwTree`], [`dcs_masstree::MassTree`] and
//!   [`dcs_lsm::LsmTree`], declaring each store's scan semantics
//!   ([`ScanSemantics::PerKey`] for the B-link-style trees, whose range
//!   scans are only atomic per leaf; [`ScanSemantics::Snapshot`] for the
//!   LSM, whose scans read a point-in-time view).
//! * [`StaleReadMap`] — a deliberately broken wrapper (a read cache that
//!   is never invalidated by writers) used to demonstrate that the checker
//!   actually rejects non-linearizable behaviour; see
//!   `tests/deterministic.rs`.
//!
//! Histories are gathered two ways: under `dcs-check`'s virtual scheduler
//! (seeded, replayable — a violation panics with the schedule seed) and
//! from real OS threads in bounded windows (`tests/stress.rs`). Both paths
//! require the history to start from an **empty** store (or a per-window
//! fresh key space), because the sequential model starts empty.

mod adapter;
mod history;
mod wgl;

pub use adapter::{ConcurrentMap, Recorded, StaleReadMap};
pub use history::{Completed, Op, OpToken, Recorder, Ret};
pub use wgl::{check_history, ScanSemantics, Violation};
