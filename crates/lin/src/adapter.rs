//! Adapters: one trait over the three concurrent stores, a recording
//! wrapper that produces checkable histories, and a deliberately broken
//! wrapper that demonstrates the checker rejecting real bugs.

use crate::history::{Op, Recorder, Ret};
use crate::wgl::{check_history, ScanSemantics};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Mutex;

/// The common surface of the concurrent key-value stores under test.
///
/// Implementations must be usable from many threads concurrently — that is
/// the property the linearizability checker exercises.
pub trait ConcurrentMap: Send + Sync + 'static {
    fn put(&self, key: &[u8], value: &[u8]);
    fn get(&self, key: &[u8]) -> Option<Bytes>;
    fn delete(&self, key: &[u8]);
    /// Entries in `[start, end)`, in key order.
    fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)>;
    /// What this store's scans promise; decides the checking model.
    fn scan_semantics(&self) -> ScanSemantics;
    fn name(&self) -> &'static str;
}

impl ConcurrentMap for dcs_bwtree::BwTree {
    fn put(&self, key: &[u8], value: &[u8]) {
        dcs_bwtree::BwTree::put(
            self,
            Bytes::copy_from_slice(key),
            Bytes::copy_from_slice(value),
        );
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        dcs_bwtree::BwTree::get(self, key)
    }

    fn delete(&self, key: &[u8]) {
        dcs_bwtree::BwTree::delete(self, Bytes::copy_from_slice(key));
    }

    fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        self.range(start, end)
            .map(|r| r.expect("bwtree scan failed"))
            .collect()
    }

    fn scan_semantics(&self) -> ScanSemantics {
        // B-link leaf walk: each leaf is snapshotted atomically, the range
        // as a whole is not (see crates/bwtree/src/iter.rs).
        ScanSemantics::PerKey
    }

    fn name(&self) -> &'static str {
        "dcs-bwtree"
    }
}

impl ConcurrentMap for dcs_masstree::MassTree {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.insert(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value));
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        dcs_masstree::MassTree::get(self, key)
    }

    fn delete(&self, key: &[u8]) {
        self.remove(key);
    }

    fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        dcs_masstree::MassTree::scan(self, start, end)
    }

    fn scan_semantics(&self) -> ScanSemantics {
        ScanSemantics::PerKey
    }

    fn name(&self) -> &'static str {
        "dcs-masstree"
    }
}

impl ConcurrentMap for dcs_lsm::LsmTree {
    fn put(&self, key: &[u8], value: &[u8]) {
        dcs_lsm::LsmTree::put(self, key.to_vec(), value.to_vec()).expect("lsm put failed");
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        dcs_lsm::LsmTree::get(self, key).expect("lsm get failed")
    }

    fn delete(&self, key: &[u8]) {
        dcs_lsm::LsmTree::delete(self, key.to_vec()).expect("lsm delete failed");
    }

    fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        dcs_lsm::LsmTree::scan(self, start, end).expect("lsm scan failed")
    }

    fn scan_semantics(&self) -> ScanSemantics {
        // The LSM scan merges memtable and tables under the state lock —
        // a point-in-time view of the whole range.
        ScanSemantics::Snapshot
    }

    fn name(&self) -> &'static str {
        "dcs-lsm"
    }
}

/// A store plus a [`Recorder`]: every operation is timestamped, and
/// [`Recorded::check`] runs the linearizability checker over everything
/// recorded since the last check (a *window*).
///
/// Windows must be self-contained: the checker's sequential model starts
/// empty, so each window must only touch keys that were absent when the
/// window opened (fresh keys, or a store created at window start).
pub struct Recorded<M: ConcurrentMap> {
    map: M,
    recorder: Recorder,
}

impl<M: ConcurrentMap> Recorded<M> {
    pub fn new(map: M) -> Self {
        Recorded {
            map,
            recorder: Recorder::new(),
        }
    }

    /// The wrapped store, for unrecorded access (setup, audits).
    pub fn map(&self) -> &M {
        &self.map
    }

    pub fn get(&self, thread: usize, key: &[u8]) -> Option<Bytes> {
        let token = self.recorder.invoke(
            thread,
            Op::Get {
                key: Bytes::copy_from_slice(key),
            },
        );
        let value = self.map.get(key);
        self.recorder.complete(token, Ret::Value(value.clone()));
        value
    }

    pub fn put(&self, thread: usize, key: &[u8], value: &[u8]) {
        let token = self.recorder.invoke(
            thread,
            Op::Put {
                key: Bytes::copy_from_slice(key),
                value: Bytes::copy_from_slice(value),
            },
        );
        self.map.put(key, value);
        self.recorder.complete(token, Ret::Done);
    }

    pub fn delete(&self, thread: usize, key: &[u8]) {
        let token = self.recorder.invoke(
            thread,
            Op::Delete {
                key: Bytes::copy_from_slice(key),
            },
        );
        self.map.delete(key);
        self.recorder.complete(token, Ret::Done);
    }

    pub fn scan(&self, thread: usize, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        let token = self.recorder.invoke(
            thread,
            Op::Scan {
                start: Bytes::copy_from_slice(start),
                end: end.map(Bytes::copy_from_slice),
            },
        );
        let entries = self.map.scan(start, end);
        self.recorder.complete(token, Ret::Entries(entries.clone()));
        entries
    }

    /// Drain the recorded window and check it, panicking with the minimized
    /// violating history on failure. All recording threads must have been
    /// joined (a pending operation also panics). Under
    /// `dcs_check::explore_with` the panic propagates into the failure
    /// report, which carries the reproducing schedule seed.
    pub fn check(&self, context: &str) {
        let history = self.recorder.take();
        if let Err(violation) = check_history(&history, self.map.scan_semantics()) {
            panic!(
                "{context}: non-linearizable history observed on {}:\n{violation}",
                self.map.name()
            );
        }
    }
}

/// A deliberately broken wrapper: `get` results are cached per key and the
/// cache is **never invalidated by writes**, so a read that follows a
/// concurrent (or even completed) write can return the stale cached value.
/// Exists to prove the checker detects real stale-read bugs — see the
/// `should_panic` demo in `tests/deterministic.rs`. Never use outside
/// tests.
pub struct StaleReadMap<M: ConcurrentMap> {
    inner: M,
    cache: Mutex<HashMap<Vec<u8>, Option<Bytes>>>,
}

impl<M: ConcurrentMap> StaleReadMap<M> {
    pub fn new(inner: M) -> Self {
        StaleReadMap {
            inner,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl<M: ConcurrentMap> ConcurrentMap for StaleReadMap<M> {
    fn put(&self, key: &[u8], value: &[u8]) {
        // BUG (planted): the cached entry for `key` is not invalidated.
        self.inner.put(key, value);
    }

    fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(cached) = self.cache.lock().unwrap().get(key) {
            return cached.clone();
        }
        let value = self.inner.get(key);
        self.cache
            .lock()
            .unwrap()
            .insert(key.to_vec(), value.clone());
        value
    }

    fn delete(&self, key: &[u8]) {
        // BUG (planted): same as put.
        self.inner.delete(key);
    }

    fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        self.inner.scan(start, end)
    }

    fn scan_semantics(&self) -> ScanSemantics {
        self.inner.scan_semantics()
    }

    fn name(&self) -> &'static str {
        "stale-read-cache"
    }
}
