//! Seeded linearizability scenarios under the deterministic scheduler.
//!
//! Each scenario runs the store under many virtual-thread schedules
//! (`dcs_check::explore_with`); every schedule's history is checked with
//! the WGL checker. A violation panics inside the execution, and the
//! harness re-panics with the reproducing seed — `dcs_check::replay(seed,
//! policy, ..)` re-runs the exact schedule.
//!
//! The final test plants a stale-read bug ([`StaleReadMap`]) and asserts
//! the checker rejects it: the panic carries the minimized
//! non-linearizable history plus the seed.

use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_check::{explore_with, Config};
use dcs_flashsim::{DeviceConfig, FlashDevice};
use dcs_lin::{Recorded, StaleReadMap};
use dcs_lsm::{LsmConfig, LsmTree};
use dcs_masstree::MassTree;
use std::sync::Arc;

fn seeds(n: u64) -> Config {
    Config {
        seeds: 0..n,
        ..Config::default()
    }
}

/// A tiny LSM so memtable rotation / flush happen mid-scenario.
fn small_lsm() -> LsmTree {
    let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
    LsmTree::new(
        device,
        LsmConfig {
            memtable_bytes: 64,
            l0_compaction_trigger: 2,
            ..LsmConfig::default()
        },
    )
}

#[test]
fn bwtree_concurrent_put_get() {
    explore_with("lin-bwtree-put-get", seeds(30), || {
        let rec = Arc::new(Recorded::new(BwTree::in_memory(BwTreeConfig::default())));
        let r1 = rec.clone();
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"alpha", b"1");
            let _ = r1.get(1, b"beta");
            r1.put(1, b"alpha", b"2");
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            r2.put(2, b"beta", b"1");
            let _ = r2.get(2, b"alpha");
        });
        let _ = rec.get(0, b"alpha");
        w1.join().unwrap();
        w2.join().unwrap();
        let _ = rec.get(0, b"alpha");
        rec.check("bwtree put/get");
    });
}

#[test]
fn bwtree_delete_vs_scan() {
    explore_with("lin-bwtree-delete-scan", seeds(30), || {
        let rec = Arc::new(Recorded::new(BwTree::in_memory(BwTreeConfig::default())));
        let r1 = rec.clone();
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"k1", b"a");
            r1.delete(1, b"k2");
            r1.put(1, b"k3", b"c");
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            r2.put(2, b"k2", b"b");
            let _ = r2.scan(2, b"k", Some(b"l"));
        });
        let _ = rec.scan(0, b"k", None);
        w1.join().unwrap();
        w2.join().unwrap();
        rec.check("bwtree delete vs scan");
    });
}

#[test]
fn masstree_concurrent_insert_get() {
    explore_with("lin-masstree-insert-get", seeds(30), || {
        let rec = Arc::new(Recorded::new(MassTree::new()));
        let r1 = rec.clone();
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"key-one", b"1");
            let _ = r1.get(1, b"key-two");
            r1.put(1, b"key-two", b"3");
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            r2.put(2, b"key-two", b"2");
            let _ = r2.get(2, b"key-one");
        });
        let _ = rec.get(0, b"key-two");
        w1.join().unwrap();
        w2.join().unwrap();
        rec.check("masstree insert/get");
    });
}

#[test]
fn masstree_remove_vs_scan() {
    explore_with("lin-masstree-remove-scan", seeds(30), || {
        let rec = Arc::new(Recorded::new(MassTree::new()));
        let r1 = rec.clone();
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"m1", b"a");
            r1.put(1, b"m2", b"b");
            r1.delete(1, b"m1");
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            let _ = r2.scan(2, b"m", Some(b"n"));
            let _ = r2.get(2, b"m1");
        });
        w1.join().unwrap();
        w2.join().unwrap();
        rec.check("masstree remove vs scan");
    });
}

#[test]
fn lsm_put_get_across_memtable_rotation() {
    explore_with("lin-lsm-put-get", seeds(20), || {
        let rec = Arc::new(Recorded::new(small_lsm()));
        let r1 = rec.clone();
        // Values sized so two puts overflow the 64-byte memtable: the
        // rotation + flush happen while the other threads read.
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"l1", &[b'x'; 40]);
            r1.put(1, b"l2", &[b'y'; 40]);
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            let _ = r2.get(2, b"l1");
            r2.delete(2, b"l1");
            let _ = r2.get(2, b"l2");
        });
        let _ = rec.get(0, b"l1");
        w1.join().unwrap();
        w2.join().unwrap();
        rec.check("lsm put/get across rotation");
    });
}

#[test]
fn lsm_snapshot_scan_vs_writer() {
    explore_with("lin-lsm-scan-writer", seeds(20), || {
        let rec = Arc::new(Recorded::new(small_lsm()));
        let r1 = rec.clone();
        let w1 = dcs_check::thread::spawn(move || {
            r1.put(1, b"s1", &[b'a'; 40]);
            r1.put(1, b"s2", &[b'b'; 40]);
            r1.delete(1, b"s1");
        });
        let r2 = rec.clone();
        let w2 = dcs_check::thread::spawn(move || {
            let _ = r2.scan(2, b"s", Some(b"t"));
            let _ = r2.scan(2, b"s", None);
        });
        w1.join().unwrap();
        w2.join().unwrap();
        rec.check("lsm snapshot scan vs writer");
    });
}

/// The demo the whole crate exists for: a planted stale-read bug (a read
/// cache never invalidated by writes) must be caught, and the panic must
/// carry the minimized violating history and the reproducing seed.
#[test]
#[should_panic(expected = "non-linearizable")]
fn planted_stale_read_bug_is_caught_with_seed() {
    explore_with("lin-stale-read-demo", seeds(1), || {
        let rec = Arc::new(Recorded::new(StaleReadMap::new(BwTree::in_memory(
            BwTreeConfig::default(),
        ))));
        // Prime the cache with the old value...
        rec.put(0, b"k", b"old");
        let _ = rec.get(0, b"k");
        // ...then let a writer update the key. The broken wrapper never
        // invalidates, so the final read returns "old" after "new" was
        // acknowledged — non-linearizable in every schedule.
        let r1 = rec.clone();
        let w = dcs_check::thread::spawn(move || {
            r1.put(1, b"k", b"new");
        });
        w.join().unwrap();
        let _ = rec.get(0, b"k");
        rec.check("stale-read demo");
    });
}
