//! Real-thread linearizability stress: OS threads hammer each store in
//! bounded windows, and every window's history is checked with WGL.
//!
//! Windows keep histories small enough for the checker (< 64 ops) and use
//! a fresh key space per round (`w{round}-…` prefixes) so each window
//! starts from logically empty state, matching the sequential model.
//! Unlike `tests/deterministic.rs` these runs are not replayable — they
//! exercise whatever interleavings the real scheduler produces, including
//! ones the virtual scheduler's schedule-point granularity cannot reach.

use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_flashsim::{DeviceConfig, FlashDevice};
use dcs_lin::{ConcurrentMap, Recorded};
use dcs_lsm::{LsmConfig, LsmTree};
use dcs_masstree::MassTree;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 10;
const ROUNDS: usize = 12;

/// One window: `THREADS` threads × `OPS_PER_THREAD` random ops over a
/// 4-key pool private to this round, then a full history check.
fn stress_round<M: ConcurrentMap>(rec: &Arc<Recorded<M>>, round: usize, scans: bool) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rec = Arc::clone(rec);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64((round * 31 + t) as u64);
                for i in 0..OPS_PER_THREAD {
                    let key = format!("w{round}-k{}", rng.gen_range(0..4u32));
                    match rng.gen_range(0..10u32) {
                        0..=4 => {
                            let _ = rec.get(t, key.as_bytes());
                        }
                        5..=7 => {
                            let value = format!("t{t}i{i}");
                            rec.put(t, key.as_bytes(), value.as_bytes());
                        }
                        8 => rec.delete(t, key.as_bytes()),
                        _ => {
                            if scans {
                                let start = format!("w{round}-");
                                let end = format!("w{round}-z");
                                let _ = rec.scan(t, start.as_bytes(), Some(end.as_bytes()));
                            } else {
                                let _ = rec.get(t, key.as_bytes());
                            }
                        }
                    }
                }
            });
        }
    });
    rec.check(&format!("stress round {round}"));
}

#[test]
fn bwtree_stress_windows_are_linearizable() {
    let rec = Arc::new(Recorded::new(BwTree::in_memory(BwTreeConfig::default())));
    for round in 0..ROUNDS {
        stress_round(&rec, round, true);
    }
}

#[test]
fn masstree_stress_windows_are_linearizable() {
    let rec = Arc::new(Recorded::new(MassTree::new()));
    for round in 0..ROUNDS {
        stress_round(&rec, round, true);
    }
}

#[test]
fn lsm_stress_windows_are_linearizable() {
    let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
    // Small memtable so rotation, flush, and L0 compaction all happen
    // while the stress threads run.
    let rec = Arc::new(Recorded::new(LsmTree::new(
        device,
        LsmConfig {
            memtable_bytes: 256,
            l0_compaction_trigger: 2,
            ..LsmConfig::default()
        },
    )));
    for round in 0..ROUNDS {
        stress_round(&rec, round, true);
    }
}
