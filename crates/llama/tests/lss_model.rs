//! Property test: the log-structured store against a reference model,
//! under random writes (full and incremental), fetches, buffer flushes,
//! garbage collection, page retirement, sync, and crash+recover cycles.

use bytes::Bytes;
use dcs_bwtree::{DeltaOp, PageId, PageImage, PageStore};
use dcs_flashsim::{DeviceConfig, FlashDevice};
use dcs_llama::{LogStructuredStore, LssConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Write a full base image for a page.
    WriteBase(u8, Vec<(u8, u8)>),
    /// Write an incremental delta for a page (if it has a durable state).
    WriteDelta(u8, Vec<(u8, u8)>),
    /// Fetch and compare a page's newest state.
    Fetch(u8),
    /// Retire (tombstone) a page.
    Retire(u8),
    Flush,
    Gc,
    Sync,
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let kvs = proptest::collection::vec((any::<u8>(), any::<u8>()), 1..8);
    prop_oneof![
        4 => (any::<u8>(), kvs.clone()).prop_map(|(p, kv)| Op::WriteBase(p % 16, kv)),
        4 => (any::<u8>(), kvs).prop_map(|(p, kv)| Op::WriteDelta(p % 16, kv)),
        4 => any::<u8>().prop_map(|p| Op::Fetch(p % 16)),
        1 => any::<u8>().prop_map(|p| Op::Retire(p % 16)),
        2 => Just(Op::Flush),
        1 => Just(Op::Gc),
        2 => Just(Op::Sync),
        1 => Just(Op::CrashRecover),
    ]
}

fn base_image(kvs: &[(u8, u8)]) -> PageImage {
    let mut m = BTreeMap::new();
    for (k, v) in kvs {
        m.insert(Bytes::copy_from_slice(&[*k]), Bytes::copy_from_slice(&[*v]));
    }
    PageImage::base(m.into_iter().collect(), None, None)
}

fn delta_image(kvs: &[(u8, u8)]) -> PageImage {
    // PageImage delta ops are newest-first; the test treats `kvs` as
    // oldest-first (like the model's sequential application).
    PageImage::delta(
        kvs.iter()
            .rev()
            .map(|(k, v)| {
                DeltaOp::Put(Bytes::copy_from_slice(&[*k]), Bytes::copy_from_slice(&[*v]))
            })
            .collect(),
        None,
        None,
    )
}

/// The model's view of one page.
#[derive(Debug, Clone, Default)]
struct PageModel {
    /// Current logical contents (volatile view).
    entries: BTreeMap<u8, u8>,
    /// Newest token.
    token: Option<u64>,
    /// Contents as of the last sync, and the token for them.
    durable: Option<(BTreeMap<u8, u8>, u64)>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lss_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_bytes: 2 << 10,
            segment_count: 1024,
            ..DeviceConfig::small_test()
        }));
        let config = LssConfig {
            flush_buffer_bytes: 1 << 10,
            gc_live_fraction: 0.7,
            max_flush_chain: 3,
            ..LssConfig::default()
        };
        let mut store = LogStructuredStore::new(device.clone(), config.clone());
        let mut pages: HashMap<u8, PageModel> = HashMap::new();
        // Pages whose newest state was written before the last sync.
        let mut synced_through: u64 = 0;
        let mut next_token_watermark: u64 = 0;

        for op in ops {
            match op {
                Op::WriteBase(p, kvs) => {
                    let img = base_image(&kvs);
                    let token = store.write(p as PageId, &img, None).expect("write");
                    let m = pages.entry(p).or_default();
                    m.entries = kvs.iter().rev().map(|(k, v)| (*k, *v)).collect();
                    m.entries = {
                        // newest-first semantics of duplicate keys in kvs:
                        let mut bt = BTreeMap::new();
                        for (k, v) in &kvs { bt.insert(*k, *v); }
                        bt
                    };
                    m.token = Some(token);
                    next_token_watermark = token + 1;
                }
                Op::WriteDelta(p, kvs) => {
                    let Some(m) = pages.get_mut(&p) else { continue };
                    let Some(prev) = m.token else { continue };
                    let img = delta_image(&kvs);
                    let token = store.write(p as PageId, &img, Some(prev)).expect("write");
                    for (k, v) in &kvs {
                        m.entries.insert(*k, *v);
                    }
                    m.token = Some(token);
                    next_token_watermark = token + 1;
                }
                Op::Fetch(p) => {
                    let Some(m) = pages.get(&p) else { continue };
                    let Some(token) = m.token else { continue };
                    let img = store.fetch(p as PageId, token).expect("fetch");
                    let got: BTreeMap<u8, u8> = img
                        .entries
                        .iter()
                        .map(|(k, v)| (k[0], v[0]))
                        .collect();
                    prop_assert_eq!(&got, &m.entries, "page {} state", p);
                }
                Op::Retire(p) => {
                    if pages.remove(&p).is_some() {
                        store.retire_page(p as PageId).expect("retire");
                    }
                }
                Op::Flush => store.flush().expect("flush"),
                Op::Gc => {
                    store.gc_all().expect("gc");
                }
                Op::Sync => {
                    store.sync().expect("sync");
                    synced_through = next_token_watermark;
                    for m in pages.values_mut() {
                        if let Some(t) = m.token {
                            m.durable = Some((m.entries.clone(), t));
                        }
                    }
                }
                Op::CrashRecover => {
                    drop(store);
                    device.crash();
                    store = LogStructuredStore::recover_from_device(
                        device.clone(),
                        config.clone(),
                    )
                    .expect("recover");
                    let _ = synced_through;
                    // The model rolls back to the durable view.
                    pages.retain(|_, m| m.durable.is_some());
                    for m in pages.values_mut() {
                        let (entries, token) = m.durable.clone().expect("retained");
                        m.entries = entries;
                        m.token = Some(token);
                    }
                    // Recovered newest-parts must agree with the model.
                    let newest = store.newest_parts();
                    for (p, m) in &pages {
                        prop_assert_eq!(
                            newest.get(&(*p as PageId)).copied(),
                            m.token,
                            "page {} token after recovery",
                            p
                        );
                    }
                }
            }
        }
        // Final audit: every live page fetches to its model state.
        for (p, m) in &pages {
            if let Some(token) = m.token {
                let img = store.fetch(*p as PageId, token).expect("final fetch");
                let got: BTreeMap<u8, u8> =
                    img.entries.iter().map(|(k, v)| (k[0], v[0])).collect();
                prop_assert_eq!(&got, &m.entries, "final page {}", p);
            }
        }
    }
}
